#!/usr/bin/env bash
# Release gate: build, test, and static-analysis pass (DESIGN.md Sec. 7).
# Everything must be green before a change ships.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo run -p fl-lint"
cargo run -q -p fl-lint

echo "==> chaos sweep (fixed seeds)"
cargo test -q --test chaos_sweep

echo "release gate: all checks passed"
