#!/usr/bin/env bash
# Release gate: build, test, and static-analysis pass (DESIGN.md Sec. 7).
# Everything must be green before a change ships.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo run -p fl-lint"
cargo run -q -p fl-lint

echo "==> chaos sweep (fixed seeds)"
cargo test -q --test chaos_sweep

echo "==> overload sweep (fixed seeds, byte-identical replays)"
cargo test -q --test overload_sweep

echo "==> multi-selector live topology (sharded aggregation over real threads)"
cargo test -q --test live_topology

echo "==> wall-clock allowlist audit"
# Every `fl-lint: allow(wall-clock)` escape must be accounted for in
# scripts/wall_clock_allowlist.txt (count per file). A new live-clock
# site needs review — update the allowlist in the same change.
mkdir -p target
grep -rc --include='*.rs' 'fl-lint: allow(wall-clock)' crates \
  | awk -F: '$2 > 0 {print $2, $1}' | sort -k2 \
  > target/wall_clock_allows.txt
if ! diff -u scripts/wall_clock_allowlist.txt target/wall_clock_allows.txt; then
  echo "wall-clock allowlist drift: review the new live-clock sites and" >&2
  echo "update scripts/wall_clock_allowlist.txt in the same change" >&2
  exit 1
fi

echo "release gate: all checks passed"
