#!/usr/bin/env bash
# Release gate: build, test, and static-analysis pass (DESIGN.md Sec. 7).
# Every step runs even after a failure, so one run reports the full
# damage; the summary table at the bottom is the verdict.
#
# The old shell grep/diff wall-clock allowlist audit now lives inside
# fl-lint itself (rule `allowlist-drift`), so the `fl-lint` step covers
# it; scripts/wall_clock_allowlist.txt remains the data file.
set -uo pipefail
cd "$(dirname "$0")/.."

steps=()
results=()

run_step() {
  local name="$1"
  shift
  echo "==> ${name}: $*"
  if "$@"; then
    results+=("PASS")
  else
    results+=("FAIL")
  fi
  steps+=("${name}")
}

run_step "build" cargo build --release
run_step "test" cargo test -q
run_step "fl-lint" cargo run -q -p fl-lint
# Wire-protocol gate: codec round-trip/rejection tests plus the golden
# frame fixture, so accidental frame-layout changes fail loudly; the
# bench step regenerates BENCH_wire.json from the same build.
run_step "wire-codec" cargo test -q -p fl-wire
run_step "wire-bench" cargo run --release -q -p fl-bench --bin bench_wire
# Network-chaos gate: seeded faulty-transport scripts mangle report
# frames through the live sharded topology (plain + SecAgg); per seed
# the run must commit exactly once, keep write_count == 1 + committed,
# incorporate one contribution per accepted key, and render
# byte-identically across replays.
run_step "wire-chaos" cargo test -q --test wire_chaos
run_step "chaos-sweep" cargo test -q --test chaos_sweep
run_step "overload-sweep" cargo test -q --test overload_sweep
run_step "live-topology" cargo test -q --test live_topology
# Multi-tenant gate: several populations share one fleet and one
# Selector layer, live (routed actor tree) and simulated (seeded flash
# crowd); cross-population fairness, the per-device single-session
# arbitration, and per-population accounting conservation must all
# hold. The bench step regenerates BENCH_selector.json (the cost of
# PopulationName threading on the check-in path).
run_step "multi-tenant" cargo test -q --test multi_tenant
run_step "selector-bench" cargo run --release -q -p fl-bench --bin bench_selector
# Lock-graph deadlock gate: the workspace's observed lock-acquisition
# graph must stay acyclic and rank-clean (fl-race).
run_step "lock-audit" cargo test -q --test lock_audit
# Schedule exploration: K=64 seeded delivery/timing permutations of the
# live round and a chaos plan, invariants checked per seed.
run_step "schedule-explore" cargo test -q --test schedule_explore
# SecAgg through the live tree: scripted advertise/share dropouts must
# commit the exact unmasked sum (or abort a stranded shard cleanly), and
# the bench step regression-gates the per-group quadratic-cost
# mitigation, regenerating BENCH_secagg.json.
run_step "secagg-live" cargo test -q --test secagg_live
run_step "secagg-bench" cargo run --release -q -p fl-bench --bin bench_secagg

echo
echo "release gate summary"
echo "--------------------------------"
failed=0
for i in "${!steps[@]}"; do
  printf '%-18s %s\n' "${steps[$i]}" "${results[$i]}"
  if [[ "${results[$i]}" == "FAIL" ]]; then
    failed=1
  fi
done
echo "--------------------------------"

if [[ "${failed}" -ne 0 ]]; then
  echo "release gate: FAILED"
  exit 1
fi
echo "release gate: all checks passed"
