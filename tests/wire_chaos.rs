//! Network-chaos sweep at the wire boundary (Sec. 2.2, 4.2): seeded
//! `FaultyTransport` scripts drop, duplicate, reorder, byte-flip, and
//! truncate device report frames in flight through the live sharded
//! topology — plain rounds and SecAgg rounds — while the devices drive
//! the reconnect/resume protocol (same-key resends after silent ack
//! loss, fresh attempt keys after pinned rejects).
//!
//! Per seed, the run must hold:
//!
//! * no panic, no hang — every wait is deadline-bounded and every
//!   mangled frame dies as a typed error or a silent drop;
//! * `write_count == 1 + committed` — retries and duplicates never
//!   reach persistent storage;
//! * `incorporated == unique accepted contributions` — the at-most-once
//!   ledger admits each `(device, round, attempt)` key exactly once,
//!   however many times the wire replayed it;
//! * byte-identical [`WireChaosReport::render`] across two replays of
//!   the same seed — a failing seed is a self-contained repro.
//!
//! [`WireChaosReport::render`]: federated::sim::WireChaosReport::render

use federated::sim::{run_wire_chaos, run_wire_chaos_secagg, WireChaosReport};

/// Seeds swept by the plain-round scenario.
const PLAIN_SEEDS: std::ops::Range<u64> = 0..20;
/// Seeds swept by the SecAgg scenario (disjoint from the plain sweep so
/// the two tests between them cover 32 distinct fault scripts).
const SECAGG_SEEDS: std::ops::Range<u64> = 100..112;

fn audit(report: &WireChaosReport, rerun: &WireChaosReport) {
    assert!(
        report.is_clean(),
        "seed {} ({}): violations {:?}\n{}",
        report.seed,
        report.scenario,
        report.violations,
        report.render()
    );
    assert_eq!(
        report.write_count,
        1 + report.committed,
        "seed {}: retried/duplicated reports leaked into storage",
        report.seed
    );
    assert_eq!(
        report.incorporated, report.unique_accepted,
        "seed {}: committed sum incorporated {} contributions but devices hold {} accepted keys",
        report.seed, report.incorporated, report.unique_accepted
    );
    assert_eq!(
        report.render(),
        rerun.render(),
        "seed {}: same fault script, different outcome — the run is not deterministic",
        report.seed
    );
}

#[test]
fn plain_rounds_survive_mangled_report_frames() {
    let mut faulted_seeds = 0;
    for seed in PLAIN_SEEDS {
        let report = run_wire_chaos(seed);
        let rerun = run_wire_chaos(seed);
        audit(&report, &rerun);
        let f = &report.faults;
        if f.dropped + f.duplicated + f.delayed + f.corrupted + f.truncated > 0 {
            faulted_seeds += 1;
        }
    }
    assert!(
        faulted_seeds >= PLAIN_SEEDS.count() / 2,
        "the sweep barely injected anything ({faulted_seeds} faulted seeds) — raise the rate"
    );
}

#[test]
fn secagg_rounds_survive_mangled_report_frames() {
    let mut faulted_seeds = 0;
    for seed in SECAGG_SEEDS {
        let report = run_wire_chaos_secagg(seed);
        let rerun = run_wire_chaos_secagg(seed);
        audit(&report, &rerun);
        let f = &report.faults;
        if f.dropped + f.duplicated + f.delayed + f.corrupted + f.truncated > 0 {
            faulted_seeds += 1;
        }
    }
    assert!(
        faulted_seeds >= SECAGG_SEEDS.count() / 2,
        "the sweep barely injected anything ({faulted_seeds} faulted seeds) — raise the rate"
    );
}
