//! Failure-mode integration tests (Sec. 4.4): "In all failure cases the
//! system will continue to make progress, either by completing the
//! current round or restarting from the results of the previously
//! committed round."

use federated::actors::{ActorSystem, FaultAction, LockingService, ScriptedFaults};
use federated::core::plan::{CodecSpec, FlPlan, ModelSpec};
use federated::core::population::{FlTask, TaskGroup, TaskSelectionStrategy};
use federated::core::round::RoundConfig;
use federated::core::{DeviceId, RoundId};
use federated::server::coordinator::{Coordinator, CoordinatorConfig};
use federated::server::live::{
    coordinator_lease_name, watch_and_respawn, CoordMsg, CoordinatorActor, DeviceConn,
    SelectorMsg,
};
use federated::server::wire::WireMessage;
use federated::server::pace::PaceSteering;
use federated::server::storage::{
    CheckpointStore, InMemoryCheckpointStore, SharedCheckpointStore,
};
use federated::server::topology::{spawn_topology, SelectorSpec, TopologyBlueprint};
use crossbeam::channel::unbounded;
use std::sync::Arc;
use std::time::Duration;

fn spec() -> ModelSpec {
    ModelSpec::Logistic {
        dim: 4,
        classes: 2,
        seed: 0,
    }
}

fn quick_round(goal: usize) -> RoundConfig {
    RoundConfig {
        goal_count: goal,
        overselection: 1.0,
        min_goal_fraction: 1.0,
        selection_timeout_ms: 10_000,
        report_window_ms: 60_000,
        device_cap_ms: 60_000,
    }
}

fn deployed(population: &str) -> Coordinator<InMemoryCheckpointStore> {
    let task = FlTask::training("t", population).with_round(quick_round(3));
    let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
    let mut c = Coordinator::new(
        CoordinatorConfig::new(population, 1),
        InMemoryCheckpointStore::new(),
    );
    c.deploy(
        TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
        vec![plan],
        vec![0.0; spec().num_params()],
    ).unwrap();
    c
}

/// Master Aggregator failure: "the current round of the FL task it
/// manages will fail, but will then be restarted by the Coordinator" —
/// dropping an in-flight round loses nothing durable; the next round
/// restarts from the previously committed checkpoint.
#[test]
fn master_failure_restarts_from_committed_checkpoint() {
    let mut c = deployed("pop-master-fail");

    // Round 1 commits normally.
    let mut r1 = c.begin_round(0).unwrap();
    for i in 0..3u64 {
        r1.on_checkin(DeviceId(i), 10);
    }
    let update = CodecSpec::Identity.build().encode(&[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    for d in r1.state.participants() {
        r1.on_report(d, 100, &update, 10, 0.5, 0.5).unwrap();
    }
    c.complete_round(r1).unwrap();
    let committed = c.global_params("t").unwrap();
    assert_eq!(c.store().latest("t").unwrap().round, RoundId(1));

    // Round 2's master "crashes": the ActiveRound is simply dropped
    // mid-flight (ephemeral, in-memory — nothing was persisted).
    let mut r2 = c.begin_round(1_000).unwrap();
    for i in 0..3u64 {
        r2.on_checkin(DeviceId(10 + i), 1_010);
    }
    let d = r2.state.participants()[0];
    r2.on_report(d, 1_100, &update, 10, 0.5, 0.5).unwrap();
    drop(r2); // crash: partial aggregate vanishes

    // Storage is untouched; the restarted round reads round 1's result.
    assert_eq!(c.store().latest("t").unwrap().round, RoundId(1));
    assert_eq!(c.global_params("t").unwrap(), committed);

    // Round 3 (the restart) proceeds to commit from that checkpoint.
    let mut r3 = c.begin_round(2_000).unwrap();
    assert_eq!(r3.checkpoint.params(), committed.as_slice());
    for i in 0..3u64 {
        r3.on_checkin(DeviceId(20 + i), 2_010);
    }
    for d in r3.state.participants() {
        r3.on_report(d, 2_100, &update, 10, 0.5, 0.5).unwrap();
    }
    let outcome = c.complete_round(r3).unwrap();
    assert!(outcome.is_committed());
    assert_eq!(c.store().latest("t").unwrap().round, RoundId(2));
}

/// Coordinator death: the Selector layer detects it (via the obituary
/// channel) and respawns it; the locking service guarantees exactly one
/// respawn even when multiple selectors race.
#[test]
fn coordinator_death_triggers_exactly_one_respawn() {
    let system = ActorSystem::new();
    let locks: LockingService<String> = LockingService::new();
    let task = FlTask::training("t", "pop-respawn").with_round(quick_round(2));
    let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);

    let make_actor = |locks: LockingService<String>| {
        CoordinatorActor::new(
            CoordinatorConfig::new("pop-respawn", 9),
            TaskGroup::new(vec![task.clone()], TaskSelectionStrategy::Single),
            vec![plan.clone()],
            vec![0.0; spec().num_params()],
            locks,
        )
    };

    let coord = system.spawn("coordinator", make_actor(locks.clone()));
    assert!(locks.lookup("coordinator/pop-respawn").is_some());

    // Kill it.
    coord.send(CoordMsg::Shutdown).unwrap();
    let deaths = system.deaths();
    let obit = deaths.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(obit.name, "coordinator");

    // The lease must be gone (released in on_stop) so a successor can own
    // the population.
    assert!(locks.lookup("coordinator/pop-respawn").is_none());

    // Multiple selectors race to respawn; the locking service admits one.
    let results: Vec<bool> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                let locks = locks.clone();
                scope.spawn(move || locks.acquire("coordinator/pop-respawn", "new".into()).is_some())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(results.iter().filter(|&&w| w).count(), 1);

    // The winner actually spawns the replacement (it must not re-acquire).
    locks.evict("coordinator/pop-respawn");
    let replacement = system.spawn("coordinator-2", make_actor(locks.clone()));
    let (tx, rx) = unbounded();
    replacement
        .send(CoordMsg::TryCompleteRound { reply: tx })
        .unwrap();
    // It answers (None — no active round yet), proving it is live.
    assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), None);

    replacement.send(CoordMsg::Shutdown).unwrap();
    system.join();
}

/// End-to-end injected coordinator crash over real threads: a scripted
/// fault kills the live coordinator on its Nth message, several
/// concurrent watchers race through the locking service, exactly one
/// respawns it over the *surviving* shared store, and the respawned
/// incarnation resumes the trained model without an extra checkpoint
/// write (Sec. 4.2/4.4).
#[test]
fn injected_coordinator_crash_respawns_once_with_surviving_model() {
    let population = "pop-chaos-live";
    let lease_name = coordinator_lease_name(&population.into());
    let task = FlTask::training("t", population).with_round(quick_round(3));
    let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
    let group = || TaskGroup::new(vec![task.clone()], TaskSelectionStrategy::Single);
    let init = vec![0.0f32; spec().num_params()];

    // Persistent storage outlives any coordinator incarnation: train one
    // round into it directly so there is a committed model to lose.
    let store = SharedCheckpointStore::new(InMemoryCheckpointStore::new());
    let mut seedc = Coordinator::new(CoordinatorConfig::new(population, 1), store.clone());
    seedc.deploy(group(), vec![plan.clone()], init.clone()).unwrap();
    let mut r1 = seedc.begin_round(0).unwrap();
    for i in 0..3u64 {
        r1.on_checkin(DeviceId(i), 10);
    }
    let update = CodecSpec::Identity
        .build()
        .encode(&[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    for d in r1.state.participants() {
        r1.on_report(d, 100, &update, 10, 0.5, 0.5).unwrap();
    }
    seedc.complete_round(r1).unwrap();
    let trained = seedc.global_params("t").unwrap();
    drop(seedc); // the incarnation dies; the shared store survives
    let writes_before = store.with(|s| s.write_count());
    assert_eq!(writes_before, 2); // deploy + one committed round

    // The live coordinator: scripted to crash on its 2nd message.
    let system = ActorSystem::new();
    system.install_fault_injector(Arc::new(
        ScriptedFaults::new().with("coordinator", 2, FaultAction::Crash),
    ));
    let locks: LockingService<String> = LockingService::new();
    let lease = locks
        .acquire(lease_name.clone(), lease_name.clone())
        .unwrap();
    let doomed_epoch = lease.epoch;
    let coord = system.spawn(
        "coordinator",
        CoordinatorActor::with_store(
            CoordinatorConfig::new(population, 1),
            group(),
            vec![plan.clone()],
            init.clone(),
            locks.clone(),
            lease,
            store.clone(),
        ),
    );
    // Resume-aware deployment must not have clobbered the trained model.
    assert_eq!(store.with(|s| s.write_count()), writes_before);

    // Three watchers race to respawn whatever dies under this name.
    let (found_tx, found_rx) = unbounded();
    let reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let system = system.clone();
                let locks = locks.clone();
                let store = store.clone();
                let plan = plan.clone();
                let init = init.clone();
                let lease_name = lease_name.clone();
                let found_tx = found_tx.clone();
                let group = &group;
                scope.spawn(move || {
                    watch_and_respawn(
                        &system,
                        &locks,
                        "coordinator",
                        &lease_name,
                        doomed_epoch,
                        1,
                        |lease| {
                            CoordinatorActor::with_store(
                                CoordinatorConfig::new(population, 1),
                                group(),
                                vec![plan.clone()],
                                init.clone(),
                                locks.clone(),
                                lease,
                                store.clone(),
                            )
                        },
                        |replacement| {
                            let _ = found_tx.send(replacement);
                        },
                        Duration::from_secs(10),
                    )
                })
            })
            .collect();

        // Message 1 survives; message 2 trips the injected crash.
        coord.send(CoordMsg::Tick).unwrap();
        coord.send(CoordMsg::Tick).unwrap();

        // Exactly one watcher wins and hands us the replacement. The
        // scripted fault is keyed by actor *name*, so lift it now —
        // otherwise the replacement's own 2nd message would crash too.
        let replacement = found_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        system.clear_fault_injector();
        let (tx, rx) = unbounded();
        replacement
            .send(CoordMsg::TryCompleteRound { reply: tx })
            .unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), None);
        // Clean shutdown of the replacement unblocks every watcher.
        replacement.send(CoordMsg::Shutdown).unwrap();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        reports.iter().map(|r| r.respawns).sum::<usize>(),
        1,
        "exactly one watcher may respawn (Sec. 4.4)"
    );
    // Every watcher saw the same crash obituary for the doomed actor.
    for report in &reports {
        assert!(report
            .deaths
            .iter()
            .all(|obit| obit.name == "coordinator"));
    }
    // The respawned incarnation resumed — not re-initialized — the
    // model: no extra checkpoint write, trained parameters intact.
    assert_eq!(store.with(|s| s.write_count()), writes_before);
    assert_eq!(
        store.with(|s| s.latest("t").unwrap().into_params()),
        trained
    );
    // The clean shutdown released the successor's lease.
    assert!(locks.lookup(&lease_name).is_none());
    system.join();
}

/// A panicking actor produces an obituary instead of tearing the process
/// down, and unrelated actors keep running (Sec. 4.4: "the loss of an
/// actor will not prevent the round from succeeding").
#[test]
fn actor_panic_is_isolated() {
    use federated::actors::{Actor, Context, Flow};

    struct Healthy;
    impl Actor for Healthy {
        type Msg = u32;
        fn handle(&mut self, msg: u32, _ctx: &mut Context<u32>) -> Flow {
            if msg == 0 {
                Flow::Stop
            } else {
                Flow::Continue
            }
        }
    }
    struct Faulty;
    impl Actor for Faulty {
        type Msg = ();
        fn handle(&mut self, _msg: (), _ctx: &mut Context<()>) -> Flow {
            panic!("aggregator shard crashed");
        }
    }

    let system = ActorSystem::new();
    let healthy = system.spawn("healthy", Healthy);
    let faulty = system.spawn("faulty", Faulty);
    faulty.send(()).unwrap();
    // The healthy actor continues to process messages after the crash.
    for i in 1..=100 {
        healthy.send(i).unwrap();
    }
    healthy.send(0).unwrap();
    system.join();
    let mut names: Vec<String> = system.deaths().try_iter().map(|o| o.name).collect();
    names.sort();
    assert_eq!(names, vec!["faulty", "healthy"]);
}

/// Regression (post-respawn rewiring): `SelectorMsg::Rewire` used to hand
/// over only the replacement coordinator's `ActorRef`, so a selector kept
/// the quota and population estimate of the *dead* incarnation — a
/// selector at quota 0 stayed wedged rejecting forever, and its reconnect
/// suggestions were sized from a stale population. The struct variant now
/// re-delivers both alongside the new ref.
#[test]
fn rewire_redelivers_quota_and_population_estimate() {
    let system = ActorSystem::new();
    let locks: LockingService<String> = LockingService::new();
    let task = FlTask::training("t", "pop-rewire").with_round(quick_round(1));
    let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
    let coordinator = CoordinatorActor::new(
        CoordinatorConfig::new("pop-rewire", 13),
        TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
        vec![plan],
        vec![0.0; spec().num_params()],
        locks,
    );
    // Quota 0: everything is rejected until a Rewire raises it.
    let blueprint = TopologyBlueprint::new(vec![SelectorSpec::new(
        PaceSteering::new(1_000, 10),
        100,
        3,
        0,
    )]);
    let topology = spawn_topology(&system, coordinator, &blueprint);
    let (selector, coord_ref) = (topology.selectors[0].clone(), topology.coordinator);

    let checkin = |device: u64| {
        let conn = DeviceConn::connect(
            DeviceId(device),
            "pop-rewire",
            selector.clone(),
            coord_ref.clone(),
        );
        conn.check_in().unwrap();
        conn.recv(Duration::from_secs(5)).unwrap()
    };

    // Baseline: quota 0 rejects, with a reconnect sized for a population
    // of 100 against a target of 10 — a horizon of ~10 pace periods.
    let retry_small = match checkin(0) {
        WireMessage::ComeBackLater { retry_at_ms, .. } => retry_at_ms,
        other => panic!("quota 0 must reject, got {other:?}"),
    };

    // Rewire with a huge population estimate (quota still 0): the next
    // reject must be pace-steered across a vastly longer horizon.
    selector
        .send(SelectorMsg::Rewire {
            coordinator: coord_ref.clone(),
            quota: 0,
            population_estimate: 100_000_000,
        })
        .unwrap();
    let retry_large = match checkin(1) {
        WireMessage::ComeBackLater { retry_at_ms, .. } => retry_at_ms,
        other => panic!("quota 0 must still reject, got {other:?}"),
    };
    assert!(
        retry_large > retry_small + 60_000,
        "population estimate was not re-delivered: {retry_small} vs {retry_large}"
    );

    // Rewire with quota 1: the selector must start accepting (and the
    // goal-1 round configures the device immediately).
    selector
        .send(SelectorMsg::Rewire {
            coordinator: coord_ref.clone(),
            quota: 1,
            population_estimate: 100,
        })
        .unwrap();
    assert!(
        matches!(checkin(2), WireMessage::PlanAndCheckpoint { .. }),
        "quota was not re-delivered"
    );

    selector.send(SelectorMsg::Shutdown).unwrap();
    coord_ref.send(CoordMsg::Shutdown).unwrap();
    system.join();
}
