//! End-to-end integration: a complete FL round across every crate —
//! coordinator, selector, pace steering, device runtime, example stores,
//! aggregation (plain and secure), checkpoint storage, session analytics.

use federated::analytics::SessionShapeTable;
use federated::core::events::DeviceEvent;
use federated::core::plan::{CodecSpec, FlPlan, ModelSpec};
use federated::core::population::{FlTask, TaskGroup, TaskSelectionStrategy};
use federated::core::round::RoundConfig;
use federated::core::{DeviceId, SessionLog};
use federated::data::store::{InMemoryStore, StoreConfig};
use federated::data::synth::classification::{generate, ClassificationConfig};
use federated::device::runtime::{ExecutionOutcome, FlRuntime, Interruption};
use federated::server::coordinator::{Coordinator, CoordinatorConfig};
use federated::server::pace::PaceSteering;
use federated::server::selector::{CheckinDecision, Selector};
use federated::server::storage::{CheckpointStore, InMemoryCheckpointStore};

fn spec() -> ModelSpec {
    ModelSpec::Logistic {
        dim: 16,
        classes: 4,
        seed: 1,
    }
}

fn round_config(goal: usize) -> RoundConfig {
    RoundConfig {
        goal_count: goal,
        overselection: 1.3,
        min_goal_fraction: 0.7,
        selection_timeout_ms: 60_000,
        report_window_ms: 300_000,
        device_cap_ms: 250_000,
    }
}

/// Drives one full round "by hand", as the simulator does internally, but
/// asserting every intermediate property along the way.
#[test]
fn manual_round_with_selector_devices_and_analytics() {
    let data = generate(&ClassificationConfig {
        users: 30,
        examples_per_user: 40,
        ..Default::default()
    });
    let stores: Vec<InMemoryStore> = data
        .users
        .iter()
        .map(|d| InMemoryStore::with_examples(StoreConfig::default(), d.clone(), 0))
        .collect();

    // Deploy.
    let task = FlTask::training("it/train", "it-pop").with_round(round_config(10));
    let plan = FlPlan::standard_training(spec(), 2, 16, 0.2, CodecSpec::Quantize { block: 64 });
    let mut coordinator = Coordinator::new(
        CoordinatorConfig::new("it-pop", 5),
        InMemoryCheckpointStore::new(),
    );
    coordinator.deploy(
        TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
        vec![plan],
        spec().instantiate().params().to_vec(),
    ).unwrap();
    let writes_before = coordinator.store().write_count();

    // Selector layer: 30 devices check in, quota 13 (1.3 × 10).
    let mut selector = Selector::new(PaceSteering::new(60_000, 13), 30, 2);
    selector.set_quota(13);
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for i in 0..30u64 {
        match selector.on_checkin(DeviceId(i), 1_000, 1.0) {
            CheckinDecision::Accept => accepted.push(DeviceId(i)),
            CheckinDecision::Reject { retry_at_ms } => {
                assert!(retry_at_ms > 1_000, "pace steering must defer");
                rejected += 1;
            }
        }
    }
    assert_eq!(accepted.len(), 13);
    assert_eq!(rejected, 17);

    // Forward to the round.
    let mut round = coordinator.begin_round(1_000).unwrap();
    let forwarded = selector.forward_devices(13);
    for d in &forwarded {
        round.on_checkin(*d, 1_500);
    }
    assert_eq!(round.state.participants().len(), 13);

    // Devices execute the plan; one is interrupted, one drops out.
    let runtime = FlRuntime::new(3);
    let mut sessions = SessionShapeTable::new();
    let mut now = 2_000u64;
    for (idx, d) in forwarded.iter().enumerate() {
        let mut log = SessionLog::new();
        log.record(1_000, DeviceEvent::CheckIn);
        log.record(1_500, DeviceEvent::PlanDownloaded);
        let interruption = (idx == 0).then_some(Interruption::BeforeOp(3));
        if idx == 1 {
            // Network drop-out before reporting.
            round.on_dropout(*d, now);
            log.record(now, DeviceEvent::TrainingStarted);
            log.record(now, DeviceEvent::Error);
            sessions.record(&log);
            continue;
        }
        let outcome = runtime
            .execute(
                &round.plan.device,
                &round.checkpoint,
                &stores[d.0 as usize],
                interruption,
            )
            .unwrap();
        match outcome {
            ExecutionOutcome::Completed {
                update_bytes,
                weight,
                loss,
                accuracy,
                events,
                ..
            } => {
                for e in events {
                    log.record(now, e);
                }
                log.record(now, DeviceEvent::UploadStarted);
                let response = round
                    .on_report(*d, now, &update_bytes.unwrap(), weight, loss, accuracy)
                    .unwrap();
                use federated::server::round::ReportResponse;
                match response {
                    ReportResponse::Accepted => log.record(now, DeviceEvent::UploadCompleted),
                    _ => log.record(now, DeviceEvent::UploadRejected),
                }
            }
            ExecutionOutcome::Interrupted { events, .. } => {
                for e in events {
                    log.record(now, e);
                }
                round.on_dropout(*d, now);
            }
        }
        sessions.record(&log);
        now += 1_000;
    }

    // Close and commit.
    round.on_tick(1_000 + 300_000);
    round.record_participation_metrics();
    let outcome = coordinator.complete_round(round).unwrap();
    assert!(outcome.is_committed(), "outcome: {outcome:?}");

    // Exactly one storage write for the round (no per-device persistence).
    assert_eq!(coordinator.store().write_count(), writes_before + 1);

    // The global model moved.
    let params = coordinator.global_params("it/train").unwrap();
    let init = spec().instantiate().params().to_vec();
    let moved = params
        .iter()
        .zip(&init)
        .any(|(a, b)| (a - b).abs() > 1e-6);
    assert!(moved, "global model must change after a committed round");

    // Session analytics: successful sessions dominate; Table 1 shapes
    // appear.
    assert!(sessions.fraction("-v[]+^") > 0.5);
    assert_eq!(sessions.count("-v[!"), 1); // the interrupted device
    assert_eq!(sessions.count("-v[*"), 1); // the failed device

    // Traffic accounting: download dominates (plan ≈ model + checkpoint
    // down; compressed updates up).
    assert!(coordinator.traffic().asymmetry() > 2.0);

    // Metrics materialized for the committed round.
    let metrics = coordinator.materialized_metrics();
    assert_eq!(metrics.len(), 1);
    assert!(metrics[0].2.iter().any(|s| s.name == "loss"));
}

/// The same round flow with Secure Aggregation enabled end-to-end: the
/// final parameters must match the plain-aggregation run up to
/// fixed-point error.
#[test]
fn secagg_round_matches_plain_round() {
    let data = generate(&ClassificationConfig {
        users: 16,
        examples_per_user: 30,
        ..Default::default()
    });
    let stores: Vec<InMemoryStore> = data
        .users
        .iter()
        .map(|d| InMemoryStore::with_examples(StoreConfig::default(), d.clone(), 0))
        .collect();

    let run = |secagg: Option<usize>| -> Vec<f32> {
        let mut task = FlTask::training("sa/train", "sa-pop").with_round(round_config(8));
        if let Some(k) = secagg {
            task = task.with_secagg(k);
        }
        let plan = FlPlan::standard_training(spec(), 1, 16, 0.2, CodecSpec::Identity);
        let mut coordinator = Coordinator::new(
            CoordinatorConfig::new("sa-pop", 5),
            InMemoryCheckpointStore::new(),
        );
        coordinator.deploy(
            TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
            vec![plan],
            spec().instantiate().params().to_vec(),
        ).unwrap();
        let mut round = coordinator.begin_round(0).unwrap();
        for i in 0..11u64 {
            round.on_checkin(DeviceId(i), 10);
        }
        let runtime = FlRuntime::new(3);
        let mut now = 100;
        for d in round.state.participants() {
            let outcome = runtime
                .execute(
                    &round.plan.device,
                    &round.checkpoint,
                    &stores[d.0 as usize],
                    None,
                )
                .unwrap();
            if let ExecutionOutcome::Completed {
                update_bytes,
                weight,
                loss,
                accuracy,
                ..
            } = outcome
            {
                round
                    .on_report(d, now, &update_bytes.unwrap(), weight, loss, accuracy)
                    .unwrap();
            }
            now += 10;
        }
        round.on_tick(400_000);
        coordinator.complete_round(round).unwrap();
        coordinator.global_params("sa/train").unwrap()
    };

    let plain = run(None);
    let secure = run(Some(4));
    for (a, b) in plain.iter().zip(&secure) {
        assert!(
            (a - b).abs() < 1e-3,
            "secagg diverged from plain: {a} vs {b}"
        );
    }
}
