//! Cross-crate property-based tests: the invariants the system's
//! correctness rests on, checked over randomized inputs.

use federated::core::aggregation::FedAvgAccumulator;
use federated::core::plan::{CodecSpec, FlPlan, ModelSpec};
use federated::core::{FlCheckpoint, RoundId};
use federated::ml::fixedpoint::FixedPointEncoder;
use federated::ml::optim::WeightedUpdate;
use federated::secagg::field;
use federated::secagg::protocol::{run_instance, SecAggConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SecAgg's defining property: for any input vectors and any drop-out
    /// pattern that leaves at least the threshold alive, the unmasked sum
    /// equals the plaintext sum of the committed devices' inputs.
    #[test]
    fn secagg_sum_equals_plaintext_under_any_dropout(
        n in 4usize..9,
        dim in 1usize..12,
        seed in 0u64..500,
        drop_mask in proptest::collection::vec(any::<bool>(), 9),
        values in proptest::collection::vec(0u64..1_000_000, 9 * 12),
    ) {
        let threshold = (2 * n).div_ceil(3).max(2);
        let config = SecAggConfig::new(threshold, dim);
        let inputs: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..dim).map(|d| values[i * 12 + d]).collect())
            .collect();
        // Cap drop-outs so the threshold survives.
        let max_drops = n - threshold;
        let dropped: Vec<u32> = (0..n as u32)
            .filter(|&i| drop_mask[i as usize])
            .take(max_drops)
            .collect();
        let sum = run_instance(config, &inputs, &[], &dropped, seed).unwrap();
        let mut expected = vec![0u64; dim];
        for (i, input) in inputs.iter().enumerate() {
            if dropped.contains(&(i as u32)) {
                continue;
            }
            for (e, &v) in expected.iter_mut().zip(input) {
                *e = field::add(*e, field::reduce(v));
            }
        }
        prop_assert_eq!(sum, expected);
    }

    /// Streaming aggregation is associative: splitting a stream of updates
    /// across any number of shards and merging yields the same result as
    /// one accumulator, bit-for-bit on the counters and within float
    /// tolerance on the sums.
    #[test]
    fn fedavg_sharding_is_associative(
        dim in 1usize..8,
        weights in proptest::collection::vec(1u64..50, 2..20),
        split in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let mut r = federated::ml::rng::seeded(seed);
        use rand::RngExt;
        let updates: Vec<WeightedUpdate> = weights
            .iter()
            .map(|&w| WeightedUpdate {
                delta: (0..dim).map(|_| r.random::<f32>() - 0.5).collect(),
                weight: w,
            })
            .collect();
        let mut reference = FedAvgAccumulator::new(dim);
        for u in &updates {
            reference.accumulate(u.clone()).unwrap();
        }
        let mut shards: Vec<FedAvgAccumulator> =
            (0..split).map(|_| FedAvgAccumulator::new(dim)).collect();
        for (i, u) in updates.iter().enumerate() {
            shards[i % split].accumulate(u.clone()).unwrap();
        }
        let mut merged = FedAvgAccumulator::new(dim);
        for s in &shards {
            merged.merge(s).unwrap();
        }
        prop_assert_eq!(merged.contributors(), reference.contributors());
        prop_assert_eq!(merged.total_weight(), reference.total_weight());
        let a = merged.average_delta().unwrap();
        let b = reference.average_delta().unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Codec round-trips: identity is exact; the quantizer's relative
    /// error is bounded; the pipeline never panics and preserves length.
    #[test]
    fn codecs_round_trip_with_bounded_error(
        values in proptest::collection::vec(-10.0f32..10.0, 1..300),
        keep in 1u32..4,
        seed in 0u64..100,
    ) {
        use federated::ml::compress::{IdentityCodec, QuantizeCodec, UpdateCodec};
        let id = IdentityCodec;
        prop_assert_eq!(
            id.decode(&id.encode(&values), values.len()).unwrap(),
            values.clone()
        );
        let q = QuantizeCodec::new(64);
        let decoded = q.decode(&q.encode(&values), values.len()).unwrap();
        for chunk in values.chunks(64).zip(decoded.chunks(64)) {
            let scale = chunk.0.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            for (a, b) in chunk.0.iter().zip(chunk.1) {
                prop_assert!((a - b).abs() <= scale / 127.0 + 1e-6);
            }
        }
        let spec = CodecSpec::Pipeline {
            keep: f64::from(keep) * 0.25,
            seed,
            block: 32,
        };
        let codec = spec.build();
        let decoded = codec.decode(&codec.encode(&values), values.len()).unwrap();
        prop_assert_eq!(decoded.len(), values.len());
    }

    /// Fixed-point encoding: summing any K ≤ max_summands encoded values in
    /// the field and decoding recovers the clipped-sum within K grid steps.
    #[test]
    fn fixedpoint_sums_are_exact_to_grid(
        values in proptest::collection::vec(-7.9f32..7.9, 1..40),
    ) {
        let enc = FixedPointEncoder::new(8.0, 16, 64).unwrap();
        let encoded: Vec<u64> = values
            .iter()
            .map(|&v| enc.encode_value(v).unwrap())
            .collect();
        let mut sum = 0u64;
        for &e in &encoded {
            sum = field::add(sum, e % field::PRIME);
        }
        let decoded = enc.decode_sum_value(sum, values.len() as u64);
        let expected: f64 = values.iter().map(|&v| f64::from(v)).sum();
        let tolerance = enc.per_summand_error() * 2.0 * values.len() as f64 + 1e-6;
        prop_assert!(
            (f64::from(decoded) - expected).abs() <= tolerance,
            "decoded {} expected {} tol {}",
            decoded, expected, tolerance
        );
    }

    /// Checkpoints survive arbitrary parameter contents and task names.
    #[test]
    fn checkpoints_round_trip(
        name in "[a-z]{1,20}(/[a-z]{1,10})?",
        round in 0u64..10_000,
        params in proptest::collection::vec(any::<f32>(), 0..200),
    ) {
        // NaN != NaN breaks equality; compare bit patterns instead.
        let ck = FlCheckpoint::new(name.clone(), RoundId(round), params.clone());
        let back = FlCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        prop_assert_eq!(back.task_name.clone(), name);
        prop_assert_eq!(back.round, RoundId(round));
        let a: Vec<u32> = params.iter().map(|p| p.to_bits()).collect();
        let b: Vec<u32> = back.params().iter().map(|p| p.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    /// Plan lowering: for every hyperparameter combination, lowering to
    /// any supported version yields a plan whose required version fits and
    /// that contains no op newer than the target.
    #[test]
    fn plan_lowering_respects_target_version(
        epochs in 1usize..6,
        batch in 1usize..64,
        version in 1u32..4,
    ) {
        let plan = FlPlan::standard_training(
            ModelSpec::Logistic { dim: 4, classes: 2, seed: 0 },
            epochs,
            batch,
            0.1,
            CodecSpec::Identity,
        );
        let lowered = plan.device.lower_to_version(version).unwrap();
        prop_assert!(lowered.required_version() <= version);
        for op in &lowered.ops {
            prop_assert!(op.min_version() <= version);
        }
    }

    /// Field arithmetic: the laws SecAgg depends on, over random elements.
    #[test]
    fn field_laws(a in 0u64..field::PRIME, b in 0u64..field::PRIME) {
        prop_assert_eq!(field::add(a, field::neg(a)), 0);
        prop_assert_eq!(field::sub(field::add(a, b), b), a);
        if a != 0 {
            prop_assert_eq!(field::mul(a, field::inv(a)), 1);
        }
        prop_assert_eq!(field::mul(a, b), field::mul(b, a));
    }
}
