//! Tier-1 schedule-exploration gate: the standing invariants (never
//! hang, exactly one commit, `write_count == 1 + committed`, obituaries
//! exactly once) must hold across K = 64 seeded delivery schedules of
//! the live round and 64 timing schedules of a chaos fault plan — and
//! every report must replay byte-identically per seed, so a failing
//! seed is a self-contained repro.
//!
//! Also re-finds the obituary-stealing bug the supervision layer fixed:
//! two supervisors sharing one `deaths()` receiver steal notices from
//! each other under a scripted, deterministic schedule, while the fixed
//! private-subscription pattern sees every death exactly once.

use fl_actors::{
    audit_exactly_once, Actor, ActorSystem, Context, FaultAction, Flow, ScriptedFaults,
};
use fl_sim::chaos::secagg_config;
use fl_sim::{
    explore_live_round, explore_secagg_live_round, run_chaos_with_schedule, ChaosConfig, FaultPlan,
};
use std::sync::Arc;

/// How many seeded schedules each scenario is explored under.
const K: u64 = 64;

#[test]
fn live_round_invariants_hold_across_k_schedules() {
    for seed in 0..K {
        let report = explore_live_round(seed);
        assert!(
            report.is_clean(),
            "schedule seed {seed} violations: {:?}",
            report.violations
        );
        assert_eq!(report.committed, 1, "schedule seed {seed}");
        assert_eq!(report.write_count, 2, "schedule seed {seed}");
    }
}

#[test]
fn live_round_reports_replay_byte_identically() {
    for seed in [0u64, 7, 31, 63] {
        assert_eq!(
            explore_live_round(seed).render(),
            explore_live_round(seed).render(),
            "schedule seed {seed} replay diverged"
        );
    }
}

/// The SecAgg live round — masked reports, a post-staging share dropout,
/// Shamir mask reconstruction at finalize — under the same K mailbox
/// schedules: never hangs, commits exactly once, and the reconstruction
/// path is schedule-invariant.
#[test]
fn secagg_live_round_invariants_hold_across_k_schedules() {
    for seed in 0..K {
        let report = explore_secagg_live_round(seed);
        assert!(
            report.is_clean(),
            "secagg schedule seed {seed} violations: {:?}",
            report.violations
        );
        assert_eq!(report.committed, 1, "secagg schedule seed {seed}");
        assert_eq!(report.write_count, 2, "secagg schedule seed {seed}");
    }
}

#[test]
fn secagg_live_round_reports_replay_byte_identically() {
    for seed in [0u64, 31] {
        assert_eq!(
            explore_secagg_live_round(seed).render(),
            explore_secagg_live_round(seed).render(),
            "secagg schedule seed {seed} replay diverged"
        );
    }
}

/// A SecAgg chaos plan under permuted virtual-clock timing schedules:
/// the masked rounds' recovery guarantees are timing-invariant too.
#[test]
fn secagg_chaos_recovery_holds_across_timing_schedules() {
    let config = secagg_config(2);
    let plan = FaultPlan::generate(11, config.horizon_ms);
    for schedule in 0..16 {
        let report = run_chaos_with_schedule(&plan, &config, schedule);
        assert!(
            report.is_clean(),
            "secagg schedule seed {schedule} violations: {:?}",
            report.violations
        );
        assert_eq!(report.final_write_count, 1 + report.committed);
    }
}

#[test]
fn chaos_recovery_holds_across_k_timing_schedules() {
    let config = ChaosConfig::default();
    let plan = FaultPlan::generate(11, config.horizon_ms);
    for schedule in 0..K {
        let report = run_chaos_with_schedule(&plan, &config, schedule);
        assert!(
            report.is_clean(),
            "schedule seed {schedule} violations: {:?}",
            report.violations
        );
        assert_eq!(report.final_write_count, 1 + report.committed);
    }
}

#[test]
fn chaos_schedule_reports_replay_byte_identically() {
    let config = ChaosConfig::default();
    for (plan_seed, schedule) in [(11u64, 3u64), (23, 17), (47, 40)] {
        let plan = FaultPlan::generate(plan_seed, config.horizon_ms);
        assert_eq!(
            run_chaos_with_schedule(&plan, &config, schedule).render(),
            run_chaos_with_schedule(&plan, &config, schedule).render(),
            "plan {plan_seed} schedule {schedule} replay diverged"
        );
    }
}

/// A do-nothing actor the scripted crashes target.
#[derive(Debug)]
struct Noop;

impl Actor for Noop {
    type Msg = u64;

    fn handle(&mut self, _msg: u64, _ctx: &mut Context<u64>) -> Flow {
        Flow::Continue
    }
}

#[test]
fn shared_receiver_obituary_stealing_is_refound() {
    // Scripted schedule: each worker's first message crashes it through
    // the real panic-recovery path, producing two obituaries.
    let system = ActorSystem::new();
    system.install_fault_injector(Arc::new(
        ScriptedFaults::new()
            .with("worker-a", 1, FaultAction::Crash)
            .with("worker-b", 1, FaultAction::Crash),
    ));
    let a = system.spawn("worker-a", Noop);
    let b = system.spawn("worker-b", Noop);
    a.send(1).unwrap();
    b.send(1).unwrap();
    system.join();

    // The legacy pattern this workspace once had: two supervisors
    // draining ONE shared subscription. The scripted alternating
    // consumption below deterministically reproduces the stealing
    // interleaving — each supervisor sees only half the deaths.
    let shared = system.deaths();
    let mut view_one = Vec::new();
    let mut view_two = Vec::new();
    for (i, obit) in shared.try_iter().enumerate() {
        if i % 2 == 0 {
            view_one.push(obit);
        } else {
            view_two.push(obit);
        }
    }
    let expected = ["worker-a", "worker-b"];
    let stolen = audit_exactly_once(&[view_one, view_two], &expected);
    assert_eq!(
        stolen.len(),
        2,
        "each shared-receiver view must be missing exactly one obituary: {stolen:?}"
    );

    // The fixed pattern: every subscriber owns a private replayed
    // channel, so concurrent consumers cannot steal notices.
    let views: Vec<Vec<_>> = (0..2)
        .map(|_| system.deaths().try_iter().collect())
        .collect();
    assert!(
        audit_exactly_once(&views, &expected).is_empty(),
        "private subscriptions must see every death exactly once"
    );
}
