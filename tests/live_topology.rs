//! Live actor topology with multiple Selectors (Fig. 3 shows Selectors as
//! a globally-distributed layer in front of one Coordinator), built
//! through the shared `fl-server::topology` blueprint: per-Selector
//! admission, a fleet-wide admission budget, and the ephemeral
//! Master Aggregator subtree that dies with each round.

use federated::actors::{ActorSystem, DeathReason, FaultAction, LockingService, ScriptedFaults};
use federated::core::plan::{CodecSpec, FlPlan, ModelSpec};
use federated::core::population::{FlTask, TaskGroup, TaskSelectionStrategy};
use federated::core::round::RoundConfig;
use federated::core::DeviceId;
use federated::server::live::{CoordMsg, CoordinatorActor, DeviceConn, SelectorMsg};
use federated::server::wire::WireMessage;
use federated::server::pace::PaceSteering;
use federated::server::topology::{spawn_topology, SelectorSpec, TopologyBlueprint};
use federated::server::{AdmissionConfig, CoordinatorConfig, GlobalAdmissionConfig};
use crossbeam::channel::unbounded;
use std::sync::Arc;
use std::time::Duration;

fn spec() -> ModelSpec {
    ModelSpec::Logistic {
        dim: 4,
        classes: 2,
        seed: 0,
    }
}

fn coordinator_for(
    population: &str,
    round: RoundConfig,
    config: CoordinatorConfig,
    locks: LockingService<String>,
) -> CoordinatorActor<federated::server::storage::InMemoryCheckpointStore> {
    let task = FlTask::training("t", population).with_round(round);
    let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
    CoordinatorActor::new(
        config,
        TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
        vec![plan],
        vec![0.0; spec().num_params()],
        locks,
    )
}

#[test]
fn round_commits_across_three_selectors() {
    let system = ActorSystem::new();
    let locks: LockingService<String> = LockingService::new();
    let round = RoundConfig {
        goal_count: 6,
        overselection: 1.0,
        min_goal_fraction: 1.0,
        selection_timeout_ms: 5_000,
        report_window_ms: 30_000,
        device_cap_ms: 30_000,
    };
    let coordinator = coordinator_for(
        "multi-sel",
        round,
        CoordinatorConfig::new("multi-sel", 3),
        locks.clone(),
    );
    // Three selectors, each with its own quota — as if serving three
    // geographic regions.
    let blueprint = TopologyBlueprint::new(
        (0..3)
            .map(|i| SelectorSpec::new(PaceSteering::new(1_000, 2), 100, i, 2))
            .collect(),
    );
    let topology = spawn_topology(&system, coordinator, &blueprint);
    let (selector_refs, coord_ref) = (topology.selectors.clone(), topology.coordinator.clone());
    assert_eq!(selector_refs.len(), 3);

    // Six devices, two per selector, each on its own thread.
    let handles: Vec<_> = (0..6u64)
        .map(|i| {
            let sel = selector_refs[(i % 3) as usize].clone();
            let coord = coord_ref.clone();
            std::thread::spawn(move || {
                let conn = DeviceConn::connect(DeviceId(i), "multi-sel", sel, coord);
                conn.check_in().unwrap();
                loop {
                    match conn.recv(Duration::from_secs(10)).unwrap() {
                        WireMessage::PlanAndCheckpoint {
                            plan, checkpoint, ..
                        } => {
                            let dim = plan.server.expected_dim;
                            let bytes =
                                CodecSpec::Identity.build().encode(&vec![0.5f32; dim]);
                            conn.report(checkpoint.round, 1, bytes, 3, 0.4, 0.9).unwrap();
                        }
                        WireMessage::ReportAck { accepted, .. } => return accepted,
                        _ => return false,
                    }
                }
            })
        })
        .collect();
    let accepted = handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|&ok| ok)
        .count();
    assert_eq!(accepted, 6, "all six devices contribute through their selectors");

    let outcome = loop {
        let (tx, rx) = unbounded();
        coord_ref
            .send(CoordMsg::TryCompleteRound { reply: tx })
            .unwrap();
        if let Some(outcome) = rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            break outcome;
        }
        coord_ref.send(CoordMsg::Tick).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(outcome.is_committed());

    // Idempotent teardown: a second shutdown of the whole tree — and one
    // racing the actors' own exits — must be a no-op, not a panic.
    topology.shutdown();
    topology.shutdown();
    system.join();
    topology.shutdown();
    assert!(locks.lookup("coordinator/multi-sel").is_none());

    // The training round aggregated through an ephemeral master subtree
    // that died, normally, with the round.
    let names: Vec<String> = system.deaths().try_iter().map(|o| o.name).collect();
    assert!(
        names.iter().any(|n| n == "coordinator/master-r1"),
        "{names:?}"
    );
}

/// A selector at quota pace-steers the excess devices away rather than
/// forwarding them (the "come back later" path over real threads).
#[test]
fn over_quota_devices_are_pace_steered() {
    let system = ActorSystem::new();
    let locks: LockingService<String> = LockingService::new();
    let round = RoundConfig {
        goal_count: 2,
        overselection: 1.0,
        min_goal_fraction: 1.0,
        selection_timeout_ms: 5_000,
        report_window_ms: 10_000,
        device_cap_ms: 10_000,
    };
    let coordinator = coordinator_for(
        "quota-pop",
        round,
        CoordinatorConfig::new("quota-pop", 1),
        locks,
    );
    let blueprint = TopologyBlueprint::new(vec![SelectorSpec::new(
        PaceSteering::new(1_000, 2),
        1_000_000,
        9,
        2,
    )]);
    let topology = spawn_topology(&system, coordinator, &blueprint);
    let (selector_refs, coord_ref) = (topology.selectors, topology.coordinator);

    // Send all check-ins first (the round only configures — and replies —
    // once its selection target of 2 is met), then collect replies.
    let conns: Vec<_> = (0..5u64)
        .map(|i| {
            let conn = DeviceConn::connect(
                DeviceId(i),
                "quota-pop",
                selector_refs[0].clone(),
                coord_ref.clone(),
            );
            conn.check_in().unwrap();
            conn
        })
        .collect();
    let mut rejected = 0;
    let mut accepted = 0;
    for conn in &conns {
        match conn.recv(Duration::from_secs(5)).unwrap() {
            WireMessage::ComeBackLater { retry_at_ms, .. } => {
                assert!(retry_at_ms > 0);
                rejected += 1;
            }
            WireMessage::PlanAndCheckpoint { .. } => accepted += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(accepted, 2);
    assert_eq!(rejected, 3);

    selector_refs[0].send(SelectorMsg::Shutdown).unwrap();
    coord_ref.send(CoordMsg::Shutdown).unwrap();
    system.join();
}

/// Three Selectors, each with a two-token admission burst, share one
/// fleet-wide budget of four admits: every selector sheds its third
/// device locally, the budget sheds two of the six that passed local
/// admission, and the four devices that made it through both layers
/// carry the round to a commit.
#[test]
fn global_budget_caps_admits_across_selectors() {
    let system = ActorSystem::new();
    let locks: LockingService<String> = LockingService::new();
    let round = RoundConfig {
        goal_count: 4,
        overselection: 1.0,
        min_goal_fraction: 1.0,
        selection_timeout_ms: 5_000,
        report_window_ms: 30_000,
        device_cap_ms: 30_000,
    };
    let coordinator = coordinator_for(
        "global-budget",
        round,
        CoordinatorConfig::new("global-budget", 11),
        locks,
    );
    // Token refill is negligible over the test's lifetime, so each
    // selector's admission controller passes exactly its burst of 2.
    let admission = AdmissionConfig {
        accepts_per_sec: 0.0001,
        burst: 2,
        max_inflight: 10,
    };
    let blueprint = TopologyBlueprint::new(
        (0..3)
            .map(|i| {
                SelectorSpec::new(PaceSteering::new(1_000, 4), 100, i, 10)
                    .with_admission(admission)
            })
            .collect(),
    )
    .with_global_admission(GlobalAdmissionConfig {
        window_ms: 600_000,
        max_admits_per_window: 4,
    });
    let topology = spawn_topology(&system, coordinator, &blueprint);
    let budget = topology.global_budget.clone().expect("budget configured");
    let (selector_refs, coord_ref) = (topology.selectors, topology.coordinator);

    // Nine devices, three per selector. Which four of the six
    // local-admission survivors win the shared budget depends on thread
    // interleaving; the totals do not.
    let conns: Vec<_> = (0..9u64)
        .map(|i| {
            let conn = DeviceConn::connect(
                DeviceId(i),
                "global-budget",
                selector_refs[(i % 3) as usize].clone(),
                coord_ref.clone(),
            );
            conn.check_in().unwrap();
            conn
        })
        .collect();
    let mut configured = Vec::new();
    let mut shed = 0;
    for (i, conn) in conns.iter().enumerate() {
        match conn.recv(Duration::from_secs(10)).unwrap() {
            WireMessage::PlanAndCheckpoint {
                plan, checkpoint, ..
            } => configured.push((i, plan, checkpoint.round)),
            // Admission-control rejections arrive as explicit `Shed`
            // frames, distinct from routine `ComeBackLater` pacing.
            WireMessage::Shed { .. } => shed += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(configured.len(), 4, "the global budget admits exactly 4");
    assert_eq!(shed, 5, "3 local sheds + 2 global sheds");
    assert_eq!(budget.admitted_total(), 4);
    assert_eq!(budget.shed_total(), 2);

    // The four admitted devices report; the round commits on them.
    for (i, plan, round) in &configured {
        let dim = plan.server.expected_dim;
        let bytes = CodecSpec::Identity.build().encode(&vec![0.25f32; dim]);
        conns[*i].report(*round, 1, bytes, 1, 0.3, 0.9).unwrap();
    }
    for (i, _, _) in &configured {
        assert!(matches!(
            conns[*i].recv(Duration::from_secs(5)).unwrap(),
            WireMessage::ReportAck { accepted: true, .. }
        ));
    }
    let outcome = loop {
        let (tx, rx) = unbounded();
        coord_ref
            .send(CoordMsg::TryCompleteRound { reply: tx })
            .unwrap();
        if let Some(outcome) = rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            break outcome;
        }
        coord_ref.send(CoordMsg::Tick).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(outcome.is_committed());

    for s in &selector_refs {
        s.send(SelectorMsg::Shutdown).unwrap();
    }
    coord_ref.send(CoordMsg::Shutdown).unwrap();
    system.join();
}

/// Aggregator-shard loss mid-round (Sec. 4.2): with `max_per_shard = 2`
/// and a goal of 4 the master spawns two shards; a scripted crash kills
/// `agg-1` on its first contribution. The crashed shard's devices are
/// lost from the aggregate, but the round still commits on the surviving
/// shard — and the whole subtree's obituaries tell the story.
#[test]
fn aggregator_shard_crash_still_commits_the_round() {
    let system = ActorSystem::new();
    system.install_fault_injector(Arc::new(ScriptedFaults::new().with(
        "coordinator/master-r1/agg-1",
        1,
        FaultAction::Crash,
    )));
    let locks: LockingService<String> = LockingService::new();
    let round = RoundConfig {
        goal_count: 4,
        overselection: 1.0,
        min_goal_fraction: 1.0,
        selection_timeout_ms: 5_000,
        report_window_ms: 30_000,
        device_cap_ms: 30_000,
    };
    let mut config = CoordinatorConfig::new("shard-crash", 5);
    config.max_per_shard = 2;
    let coordinator = coordinator_for("shard-crash", round, config, locks);
    let blueprint = TopologyBlueprint::new(vec![SelectorSpec::new(
        PaceSteering::new(1_000, 4),
        100,
        1,
        10,
    )]);
    let topology = spawn_topology(&system, coordinator, &blueprint);
    let (selector_refs, coord_ref) = (topology.selectors, topology.coordinator);

    let conns: Vec<_> = (0..4u64)
        .map(|i| {
            let conn = DeviceConn::connect(
                DeviceId(i),
                "shard-crash",
                selector_refs[0].clone(),
                coord_ref.clone(),
            );
            conn.check_in().unwrap();
            conn
        })
        .collect();
    for conn in &conns {
        match conn.recv(Duration::from_secs(10)).unwrap() {
            WireMessage::PlanAndCheckpoint {
                plan, checkpoint, ..
            } => {
                let dim = plan.server.expected_dim;
                let bytes = CodecSpec::Identity.build().encode(&vec![1.0f32; dim]);
                conn.report(checkpoint.round, 1, bytes, 1, 0.3, 0.9).unwrap();
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    // All four reports are accepted at the protocol level even though
    // devices 1 and 3 route to the crashed shard.
    for conn in &conns {
        assert!(matches!(
            conn.recv(Duration::from_secs(5)).unwrap(),
            WireMessage::ReportAck { accepted: true, .. }
        ));
    }

    let outcome = loop {
        let (tx, rx) = unbounded();
        coord_ref
            .send(CoordMsg::TryCompleteRound { reply: tx })
            .unwrap();
        if let Some(outcome) = rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            break outcome;
        }
        coord_ref.send(CoordMsg::Tick).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        outcome.is_committed(),
        "the round must commit on the surviving shard"
    );

    selector_refs[0].send(SelectorMsg::Shutdown).unwrap();
    coord_ref.send(CoordMsg::Shutdown).unwrap();
    system.join();

    let obits: Vec<_> = system.deaths().try_iter().collect();
    let reason_of = |name: &str| {
        obits
            .iter()
            .find(|o| o.name == name)
            .unwrap_or_else(|| panic!("no obituary for {name}: {obits:?}"))
            .reason
            .clone()
    };
    assert!(matches!(
        reason_of("coordinator/master-r1/agg-1"),
        DeathReason::Panicked(_)
    ));
    assert_eq!(reason_of("coordinator/master-r1/agg-0"), DeathReason::Normal);
    assert_eq!(reason_of("coordinator/master-r1"), DeathReason::Normal);
}
