//! Live actor topology with multiple Selectors (Fig. 3 shows Selectors as
//! a globally-distributed layer in front of one Coordinator).

use federated::actors::{ActorSystem, LockingService};
use federated::core::plan::{CodecSpec, FlPlan, ModelSpec};
use federated::core::population::{FlTask, TaskGroup, TaskSelectionStrategy};
use federated::core::round::RoundConfig;
use federated::core::DeviceId;
use federated::server::live::{spawn_topology, CoordMsg, CoordinatorActor, DeviceReply, SelectorMsg};
use federated::server::pace::PaceSteering;
use federated::server::selector::Selector;
use federated::server::CoordinatorConfig;
use crossbeam::channel::unbounded;
use std::time::Duration;

fn spec() -> ModelSpec {
    ModelSpec::Logistic {
        dim: 4,
        classes: 2,
        seed: 0,
    }
}

#[test]
fn round_commits_across_three_selectors() {
    let system = ActorSystem::new();
    let locks: LockingService<String> = LockingService::new();
    let round = RoundConfig {
        goal_count: 6,
        overselection: 1.0,
        min_goal_fraction: 1.0,
        selection_timeout_ms: 5_000,
        report_window_ms: 30_000,
        device_cap_ms: 30_000,
    };
    let task = FlTask::training("t", "multi-sel").with_round(round);
    let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
    let coordinator = CoordinatorActor::new(
        CoordinatorConfig::new("multi-sel", 3),
        TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
        vec![plan],
        vec![0.0; spec().num_params()],
        locks.clone(),
    );
    // Three selectors, each with its own quota — as if serving three
    // geographic regions.
    let selectors: Vec<Selector> = (0..3)
        .map(|i| {
            let mut s = Selector::new(PaceSteering::new(1_000, 2), 100, i);
            s.set_quota(2);
            s
        })
        .collect();
    let (selector_refs, coord_ref) = spawn_topology(&system, coordinator, selectors);
    assert_eq!(selector_refs.len(), 3);

    // Six devices, two per selector, each on its own thread.
    let handles: Vec<_> = (0..6u64)
        .map(|i| {
            let sel = selector_refs[(i % 3) as usize].clone();
            let coord = coord_ref.clone();
            std::thread::spawn(move || {
                let (tx, rx) = unbounded();
                sel.send(SelectorMsg::Checkin {
                    device: DeviceId(i),
                    reply: tx.clone(),
                })
                .unwrap();
                loop {
                    match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
                        DeviceReply::Configured { plan, .. } => {
                            let dim = plan.server.expected_dim;
                            let bytes =
                                CodecSpec::Identity.build().encode(&vec![0.5f32; dim]);
                            coord
                                .send(CoordMsg::DeviceReport {
                                    device: DeviceId(i),
                                    update_bytes: bytes,
                                    weight: 3,
                                    loss: 0.4,
                                    accuracy: 0.9,
                                    reply: tx.clone(),
                                })
                                .unwrap();
                        }
                        DeviceReply::ReportAccepted => return true,
                        _ => return false,
                    }
                }
            })
        })
        .collect();
    let accepted = handles
        .into_iter()
        .filter(|_| true)
        .map(|h| h.join().unwrap())
        .filter(|&ok| ok)
        .count();
    assert_eq!(accepted, 6, "all six devices contribute through their selectors");

    let outcome = loop {
        let (tx, rx) = unbounded();
        coord_ref
            .send(CoordMsg::TryCompleteRound { reply: tx })
            .unwrap();
        if let Some(outcome) = rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            break outcome;
        }
        coord_ref.send(CoordMsg::Tick).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(outcome.is_committed());

    for s in &selector_refs {
        s.send(SelectorMsg::Shutdown).unwrap();
    }
    coord_ref.send(CoordMsg::Shutdown).unwrap();
    system.join();
    assert!(locks.lookup("coordinator/multi-sel").is_none());
}

/// A selector at quota pace-steers the excess devices away rather than
/// forwarding them (the "come back later" path over real threads).
#[test]
fn over_quota_devices_are_pace_steered() {
    let system = ActorSystem::new();
    let locks: LockingService<String> = LockingService::new();
    let round = RoundConfig {
        goal_count: 2,
        overselection: 1.0,
        min_goal_fraction: 1.0,
        selection_timeout_ms: 5_000,
        report_window_ms: 10_000,
        device_cap_ms: 10_000,
    };
    let task = FlTask::training("t", "quota-pop").with_round(round);
    let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
    let coordinator = CoordinatorActor::new(
        CoordinatorConfig::new("quota-pop", 1),
        TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
        vec![plan],
        vec![0.0; spec().num_params()],
        locks,
    );
    let mut selector = Selector::new(PaceSteering::new(1_000, 2), 1_000_000, 9);
    selector.set_quota(2);
    let (selector_refs, coord_ref) = spawn_topology(&system, coordinator, vec![selector]);

    // Send all check-ins first (the round only configures — and replies —
    // once its selection target of 2 is met), then collect replies.
    let receivers: Vec<_> = (0..5u64)
        .map(|i| {
            let (tx, rx) = unbounded();
            selector_refs[0]
                .send(SelectorMsg::Checkin {
                    device: DeviceId(i),
                    reply: tx,
                })
                .unwrap();
            rx
        })
        .collect();
    let mut rejected = 0;
    let mut accepted = 0;
    for rx in &receivers {
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            DeviceReply::ComeBackLater { retry_at_ms } => {
                assert!(retry_at_ms > 0);
                rejected += 1;
            }
            DeviceReply::Configured { .. } => accepted += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(accepted, 2);
    assert_eq!(rejected, 3);

    selector_refs[0].send(SelectorMsg::Shutdown).unwrap();
    coord_ref.send(CoordMsg::Shutdown).unwrap();
    system.join();
}
