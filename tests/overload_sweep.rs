//! Overload sweep (the tentpole of the overload-robustness PR): seeded,
//! replayable flash-crowd / thundering-herd / diurnal-ramp scenarios
//! driven against the real Selector stack (admission control + closed-loop
//! pace steering) and real device retry budgets, asserting the Sec. 2.3
//! flow-control guarantees: bounded queues, shed-rate convergence, and
//! rounds that still commit under overload.

use federated::sim::overload::{
    default_seeds, run_overload, sweep, OverloadConfig,
};

/// The fixed-seed thundering-herd sweep `scripts/check.sh` runs as a
/// release gate: a synchronized reconnect of the entire idle fleet must
/// keep the Selector queue under its configured bound, converge the shed
/// rate within the configured window budget, and drive every started
/// round to a terminal state with at least one commit.
#[test]
fn fixed_seed_herd_sweep_is_clean() {
    let reports = sweep(&default_seeds(), OverloadConfig::thundering_herd);
    assert_eq!(reports.len(), default_seeds().len());
    for report in &reports {
        assert!(
            report.is_clean(),
            "seed {} violated overload invariants:\n{}",
            report.seed,
            report.render()
        );
        assert!(
            report.max_queue_depth <= report.queue_bound,
            "seed {} queue overflowed:\n{}",
            report.seed,
            report.render()
        );
        assert!(
            report.committed >= 1,
            "seed {} never committed a round:\n{}",
            report.seed,
            report.render()
        );
        assert_eq!(
            report.rounds_started, report.rounds_terminal,
            "seed {} left a round non-terminal:\n{}",
            report.seed,
            report.render()
        );
    }
    // The sweep must actually exercise the admission layer, not coast.
    let shed: u64 = reports.iter().map(|r| r.shed).sum();
    assert!(shed >= 100, "sweep shed only {shed} check-ins");
}

/// Flash crowds (a sustained 10× population step) and diurnal ramps must
/// also hold the invariants on every gate seed — sustained overload is
/// absorbed by steady shedding plus pace-steered deferral, never by
/// queue growth or wedged rounds.
#[test]
fn fixed_seed_flash_and_ramp_sweeps_are_clean() {
    for make in [
        OverloadConfig::flash_crowd as fn(u64) -> OverloadConfig,
        OverloadConfig::diurnal_ramp as fn(u64) -> OverloadConfig,
    ] {
        for report in sweep(&default_seeds(), make) {
            assert!(
                report.is_clean(),
                "seed {} ({}) violated overload invariants:\n{}",
                report.seed,
                report.scenario,
                report.render()
            );
            assert!(
                report.committed >= 1,
                "seed {} ({}) never committed:\n{}",
                report.seed,
                report.scenario,
                report.render()
            );
        }
    }
}

/// Determinism is the whole point: the same seed must reproduce the same
/// run byte-for-byte, so a failing seed is a replayable bug report.
#[test]
fn replay_of_a_seed_is_byte_identical() {
    for seed in default_seeds() {
        for make in [
            OverloadConfig::thundering_herd as fn(u64) -> OverloadConfig,
            OverloadConfig::flash_crowd as fn(u64) -> OverloadConfig,
        ] {
            let first = run_overload(&make(seed)).render();
            let second = run_overload(&make(seed)).render();
            assert_eq!(first, second, "seed {seed} diverged between replays");
        }
    }
}
