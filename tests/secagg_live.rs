//! Secure Aggregation through the live sharded topology (Sec. 6 run on
//! the Sec. 4 actor tree): devices report fixed-point field vectors over
//! `SecAggReport` frames, each `AggregatorActor` shard runs the
//! four-round protocol over its own group at finalize, and the Master
//! Aggregator merges the unmasked shard sums "without Secure
//! Aggregation". Scripted advertise/share dropouts exercise both
//! recovery paths; sticky `device % shards` routing stranding a group
//! below the task minimum `k` must surface as a clean per-shard abort —
//! the round commits from the surviving groups only.

use crossbeam::channel::unbounded;
use federated::actors::{ActorSystem, LockingService};
use federated::analytics::overload::OverloadMonitorConfig;
use federated::core::plan::{CodecSpec, FlPlan, ModelSpec};
use federated::core::population::{FlTask, TaskGroup, TaskSelectionStrategy};
use federated::core::round::RoundConfig;
use federated::core::DeviceId;
use federated::ml::fixedpoint::FixedPointEncoder;
use federated::server::aggregator::DropStage;
use federated::server::live::{CoordMsg, CoordinatorActor, DeviceConn, SelectorMsg};
use federated::server::pace::PaceSteering;
use federated::server::topology::{spawn_topology, SelectorSpec, TopologyBlueprint};
use federated::server::wire::WireMessage;
use federated::server::CoordinatorConfig;
use std::time::Duration;

fn spec() -> ModelSpec {
    ModelSpec::Logistic {
        dim: 4,
        classes: 2,
        seed: 0,
    }
}

/// Runs one live SecAgg round over 8 devices split across 2 shards
/// (`max_per_shard = 4`, evens → shard 0, odds → shard 1), scripting the
/// given post-report dropouts, then reads back the committed checkpoint
/// through a second round's Configuration download.
///
/// Every device reports a delta of `0.5` per coordinate with equal
/// weight, so any surviving mixture of contributors averages to `0.5`.
/// Returns `(params, secagg_abort_count)`.
fn run_secagg_round(population: &str, dropouts: &[(u64, DropStage)]) -> (Vec<f32>, f64) {
    let system = ActorSystem::new();
    let locks: LockingService<String> = LockingService::new();
    let round = RoundConfig {
        goal_count: 8,
        overselection: 1.0,
        min_goal_fraction: 1.0,
        selection_timeout_ms: 5_000,
        report_window_ms: 30_000,
        device_cap_ms: 30_000,
    };
    let task = FlTask::training("t", population)
        .with_round(round)
        .with_secagg(2);
    let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
    let mut config = CoordinatorConfig::new(population, 7);
    config.max_per_shard = 4;
    let coordinator = CoordinatorActor::new(
        config,
        TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
        vec![plan],
        vec![0.0; spec().num_params()],
        locks,
    );
    let blueprint = TopologyBlueprint::new(vec![SelectorSpec::new(
        PaceSteering::new(1_000, 8),
        100,
        1,
        10,
    )])
    .with_telemetry(OverloadMonitorConfig::default());
    let topology = spawn_topology(&system, coordinator, &blueprint);
    let telemetry = topology.telemetry.clone().expect("telemetry configured");
    let (selector_refs, coord_ref) = (topology.selectors.clone(), topology.coordinator.clone());

    let conns: Vec<_> = (0..8u64)
        .map(|i| {
            let conn = DeviceConn::connect(
                DeviceId(i),
                population,
                selector_refs[0].clone(),
                coord_ref.clone(),
            );
            conn.check_in().expect("check-in frame sends");
            conn
        })
        .collect();
    let encoder = FixedPointEncoder::default_for_updates();
    for conn in &conns {
        match conn.recv(Duration::from_secs(10)).expect("configuration arrives") {
            WireMessage::PlanAndCheckpoint {
                plan, checkpoint, ..
            } => {
                let dim = plan.server.expected_dim;
                let field = encoder
                    .encode(&vec![0.5f32; dim])
                    .expect("delta fits the fixed-point range");
                // Weight 1 each: the committed average is sum(delta) /
                // sum(weight) = 0.5 for any surviving cohort.
                conn.report_secagg(checkpoint.round, 1, field, 1, 0.4, 0.9)
                    .expect("secagg report frame sends");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    // All masked contributions are staged before any device vanishes:
    // the dropouts below happen *after* MaskedInputCollection, which is
    // exactly when SecAgg has to work for the round to stay correct.
    for conn in &conns {
        assert!(matches!(
            conn.recv(Duration::from_secs(5)).expect("ack arrives"),
            WireMessage::ReportAck { accepted: true, .. }
        ));
    }
    for &(device, stage) in dropouts {
        coord_ref
            .send(CoordMsg::DeviceDropped {
                device: DeviceId(device),
                stage,
            })
            .expect("coordinator alive");
    }

    let outcome = loop {
        let (tx, rx) = unbounded();
        coord_ref
            .send(CoordMsg::TryCompleteRound { reply: tx })
            .expect("coordinator alive");
        if let Some(outcome) = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("completion reply")
        {
            break outcome;
        }
        coord_ref.send(CoordMsg::Tick).expect("coordinator alive");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        outcome.is_committed(),
        "the round commits from the surviving groups"
    );

    // Round 2's Configuration download carries the checkpoint that round
    // 1 committed — read the merged parameters off the wire, the same
    // way a device would.
    let probes: Vec<_> = (10..18u64)
        .map(|i| {
            let conn = DeviceConn::connect(
                DeviceId(i),
                population,
                selector_refs[0].clone(),
                coord_ref.clone(),
            );
            conn.check_in().expect("check-in frame sends");
            conn
        })
        .collect();
    let params = match probes[0]
        .recv(Duration::from_secs(10))
        .expect("round-2 configuration arrives")
    {
        WireMessage::PlanAndCheckpoint { checkpoint, .. } => checkpoint.params().to_vec(),
        other => panic!("unexpected reply {other:?}"),
    };

    let aborts: f64 = telemetry.lock().secagg_aborts().sums().iter().sum();
    selector_refs[0].send(SelectorMsg::Shutdown).expect("selector alive");
    coord_ref.send(CoordMsg::Shutdown).expect("coordinator alive");
    system.join();
    (params, aborts)
}

/// Share-stage dropout with mask reconstruction: device 7 vanishes after
/// sharing keys, its shard reconstructs the pairwise masks from the
/// survivors' Shamir shares, both groups stay at or above threshold, and
/// the committed average is exact — no abort, no mis-sum.
#[test]
fn share_dropout_recovers_masks_and_commits_exact_sum() {
    let (params, aborts) = run_secagg_round("secagg-share-drop", &[(7, DropStage::Share)]);
    assert_eq!(aborts, 0.0, "no group fell below threshold");
    for p in &params {
        assert!(
            (p - 0.5).abs() < 1e-3,
            "committed params must be the exact unmasked average, got {params:?}"
        );
    }
}

/// Sticky `device % shards` routing strands shard 1 below `k` when three
/// of its four devices vanish (one at advertise, two at share): that
/// shard aborts cleanly — observable in the overload telemetry — while
/// shard 0's group commits the round with the correct unmasked sum.
#[test]
fn stranded_shard_aborts_cleanly_and_survivors_commit() {
    let (params, aborts) = run_secagg_round(
        "secagg-stranded-shard",
        &[
            (1, DropStage::Advertise),
            (3, DropStage::Share),
            (5, DropStage::Share),
        ],
    );
    assert_eq!(aborts, 1.0, "exactly the stranded shard aborts");
    for p in &params {
        assert!(
            (p - 0.5).abs() < 1e-3,
            "surviving shard's average must be untouched by the abort, got {params:?}"
        );
    }
}
