//! Device-level integration: multi-tenancy, eligibility gating, pace
//! steering deferral, attestation at check-in, and storage hygiene —
//! the Sec. 3 behaviours working together.

use federated::core::plan::{CodecSpec, FlPlan, ModelSpec};
use federated::core::PopulationName;
use federated::data::store::{ExampleStore, InMemoryStore, StoreConfig};
use federated::device::attestation;
use federated::device::conditions::DeviceConditions;
use federated::device::runtime::{ExecutionOutcome, FlRuntime};
use federated::device::scheduler::{JobScheduler, TrainingQueue};
use federated::ml::Example;

const FLEET_ROOT: u64 = 0x0123_4567_89AB_CDEF;

fn classification_examples(n: usize) -> Vec<Example> {
    (0..n)
        .map(|i| {
            Example::classification(
                vec![if i % 2 == 0 { 1.0 } else { -1.0 }, 0.5],
                i % 2,
            )
        })
        .collect()
}

/// Two apps on one device train two populations strictly one at a time,
/// each against its own example store, with jobs gated on eligibility.
#[test]
fn multitenant_device_trains_two_populations_sequentially() {
    let mut queue = TrainingQueue::new();
    queue.register(PopulationName::new("keyboard/nwp"));
    queue.register(PopulationName::new("settings/ranking"));

    let mut scheduler = JobScheduler::new(60_000);
    let runtime = FlRuntime::new(3);
    let spec = ModelSpec::Logistic {
        dim: 2,
        classes: 2,
        seed: 0,
    };
    let plan = FlPlan::standard_training(spec, 1, 8, 0.1, CodecSpec::Identity);
    let checkpoint = federated::core::FlCheckpoint::new(
        "t",
        federated::core::RoundId(0),
        vec![0.0; spec.num_params()],
    );
    let store_a = InMemoryStore::with_examples(
        StoreConfig::default(),
        classification_examples(20),
        0,
    );
    let store_b = InMemoryStore::with_examples(
        StoreConfig::default(),
        classification_examples(30),
        0,
    );

    let mut trained = Vec::new();
    let mut now = 0u64;
    // Device is in use: nothing runs.
    assert!(!scheduler.poll(now, DeviceConditions::in_use()));
    // Overnight: eligible; two job invocations run the two populations.
    for _ in 0..2 {
        now += 60_000;
        assert!(scheduler.poll(now, DeviceConditions::eligible()));
        let population = queue.start_next().expect("work queued");
        let store = if population.as_str() == "keyboard/nwp" {
            &store_a
        } else {
            &store_b
        };
        // No parallel sessions: starting another must fail while active.
        assert!(queue.start_next().is_none());
        let outcome = runtime
            .execute(&plan.device, &checkpoint, store, None)
            .unwrap();
        assert!(matches!(outcome, ExecutionOutcome::Completed { .. }));
        trained.push(population.as_str().to_string());
        queue.finish_active();
    }
    assert_eq!(trained, vec!["keyboard/nwp", "settings/ranking"]);
}

/// Pace steering's "come back later" defers the device's next job, and the
/// deferral wins over the periodic schedule.
#[test]
fn pace_steering_defers_job_invocations() {
    let mut scheduler = JobScheduler::new(60_000);
    assert!(scheduler.poll(0, DeviceConditions::eligible()));
    // Server rejects the check-in and suggests t = 500_000.
    scheduler.defer_until(500_000);
    assert!(!scheduler.poll(60_000, DeviceConditions::eligible()));
    assert!(!scheduler.poll(499_999, DeviceConditions::eligible()));
    assert!(scheduler.poll(500_000, DeviceConditions::eligible()));
}

/// Attestation: genuine devices pass anonymously; tampered tokens and
/// replays fail (Sec. 3's data-poisoning defence).
#[test]
fn attestation_gates_checkins() {
    let hw = 42_4242;
    let key = attestation::factory_key(FLEET_ROOT, hw);
    // Fresh nonce per check-in.
    for nonce in [1u64, 2, 3] {
        let token = attestation::attest(key, hw, nonce);
        assert!(attestation::verify(FLEET_ROOT, &token, nonce));
    }
    // A compromised device with a guessed key is rejected.
    let fake = attestation::attest(0xBAD, hw, 7);
    assert!(!attestation::verify(FLEET_ROOT, &fake, 7));
    // Replay of an old token against a new nonce is rejected.
    let old = attestation::attest(key, hw, 10);
    assert!(!attestation::verify(FLEET_ROOT, &old, 11));
}

/// Example-store hygiene: expiration and footprint limits hold even while
/// the runtime is querying.
#[test]
fn store_expiration_and_footprint_interact_with_training() {
    let config = StoreConfig {
        max_bytes: 2_000,
        expiration_ms: 10_000,
    };
    let mut store = InMemoryStore::new(config);
    for i in 0..200u64 {
        store.append(
            Example::classification(vec![1.0, -1.0], (i % 2) as usize),
            i * 100,
        );
    }
    assert!(store.footprint_bytes() <= 2_000);
    let before = store.len();
    // Prune at t=25s: everything older than 15s is gone.
    let evicted = store.prune(25_000);
    assert!(evicted > 0);
    assert!(store.len() < before);
    // Training still works on what remains.
    let spec = ModelSpec::Logistic {
        dim: 2,
        classes: 2,
        seed: 0,
    };
    let plan = FlPlan::standard_training(spec, 1, 8, 0.1, CodecSpec::Identity);
    let checkpoint = federated::core::FlCheckpoint::new(
        "t",
        federated::core::RoundId(0),
        vec![0.0; spec.num_params()],
    );
    let outcome = FlRuntime::new(3)
        .execute(&plan.device, &checkpoint, &store, None)
        .unwrap();
    match outcome {
        ExecutionOutcome::Completed { weight, .. } => {
            assert!(weight > 0, "training used the surviving examples")
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}

/// Deployment bar (Sec. 11): devices under 2 GB never see FL code.
#[test]
fn deployment_bar_excludes_small_devices() {
    use federated::device::conditions::DeviceCapabilities;
    let eligible = DeviceCapabilities {
        runtime_version: 3,
        memory_mb: 4096,
    };
    let too_small = DeviceCapabilities {
        runtime_version: 3,
        memory_mb: 1536,
    };
    assert!(eligible.meets_deployment_bar());
    assert!(!too_small.meets_deployment_bar());
}
