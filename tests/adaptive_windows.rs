//! Ablation for the Sec. 11 future-work item implemented in
//! `fl-server::adaptive`: dynamically tuned round windows vs a padded
//! static configuration, evaluated on the fleet simulator.

use federated::core::round::RoundConfig;
use federated::server::adaptive::{TunerConfig, WindowTuner};
use federated::sim::fleet::{run, FleetConfig, FleetReport};

fn config(report_window_ms: u64, device_cap_ms: u64) -> FleetConfig {
    FleetConfig {
        devices: 1_200,
        days: 1,
        round: RoundConfig {
            goal_count: 25,
            overselection: 1.3,
            min_goal_fraction: 0.7,
            selection_timeout_ms: 20 * 60_000,
            report_window_ms,
            device_cap_ms,
        },
        plan_bytes: 100_000,
        checkpoint_bytes: 100_000,
        update_bytes: 25_000,
        work_units: 30_000,
        checkin_period_ms: 60_000,
        failure_probability: 0.04,
        seed: 7,
    }
}

fn run_ablation() -> (FleetReport, FleetReport) {
    // Static: a padded 25-minute window — the conservative default a
    // population might ship with when reporting times are unknown.
    let static_report = run(&config(25 * 60_000, 20 * 60_000));
    // Feed the static run's observed participation times into the tuner,
    // as a deployed coordinator would after each round.
    let mut tuner = WindowTuner::new(TunerConfig::default());
    for chunk in static_report.participation_completed_ms.chunks(50) {
        tuner.observe_round(chunk.iter().copied());
    }
    let tuned = tuner.tuned(&static_report.config.round);
    assert!(
        tuned.report_window_ms < 25 * 60_000,
        "tuner should shrink the padded window, got {} ms",
        tuned.report_window_ms
    );
    let tuned_report = run(&config(tuned.report_window_ms, tuned.device_cap_ms));
    (static_report, tuned_report)
}

/// The tuned window increases round frequency (the Sec. 11 goal) without
/// collapsing the per-round success counts.
#[test]
fn tuned_windows_increase_round_frequency() {
    let (static_report, tuned_report) = run_ablation();
    let static_rounds = static_report.committed_rounds();
    let tuned_rounds = tuned_report.committed_rounds();
    // Most rounds close at goal-reached regardless of the window, so the
    // window only buys time on straggler-limited rounds; the gain is
    // real but modest (~4% here).
    assert!(
        tuned_rounds > static_rounds,
        "tuned {tuned_rounds} committed rounds vs static {static_rounds}"
    );
    // Round run times shrink accordingly.
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
    assert!(
        mean(&tuned_report.round_run_times_ms) <= mean(&static_report.round_run_times_ms),
        "tuned rounds should not be slower"
    );
}

/// Drop-out/rejection hygiene: the tuned window must not reject a
/// dramatically larger share of uploads than the static one.
#[test]
fn tuned_windows_do_not_explode_rejections() {
    let (static_report, tuned_report) = run_ablation();
    let reject_share = |r: &FleetReport| {
        let rejected = r.sessions.fraction("-v[]+#");
        let ok = r.sessions.fraction("-v[]+^");
        rejected / (rejected + ok).max(1e-9)
    };
    let static_share = reject_share(&static_report);
    let tuned_share = reject_share(&tuned_report);
    assert!(
        tuned_share < static_share + 0.15,
        "tuned rejection share {tuned_share:.3} vs static {static_share:.3}"
    );
}
