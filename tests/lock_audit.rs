//! Tier-1 lock audit: run representative workloads from every crate
//! that holds locks — the live actor tree, the registry, the timer
//! wheel, schedule-explored rounds — inside one process, then assert
//! the global fl-race [`LockGraph`] stayed acyclic and rank-clean.
//! Unlike a deadlocking run, a *potential* deadlock (both orders of a
//! lock pair, each observed on some thread, even if never
//! concurrently) is visible here as a graph cycle.
//!
//! The inverted-order fixture builds the bug the gate exists to catch
//! on a *private* graph (`Mutex::new_in`), so the deliberate cycle
//! never pollutes the global gate the first tests assert over.

use fl_race::{LockGraph, Mutex, Site};

/// Exercise the real stack: two explored live rounds (different
/// delivery schedules) plus direct timer/registry traffic, all feeding
/// the global lock graph, which must stay acyclic with zero rank
/// violations.
#[test]
fn workspace_lock_graph_is_acyclic() {
    // Live topology under two delivery schedules: Selector actor,
    // Coordinator actor, Master Aggregator subtree, shared checkpoint
    // store, locking-service registry, global admission budget, and
    // overload telemetry all take their locks here.
    for seed in [0u64, 42] {
        let report = fl_sim::explore_live_round(seed);
        assert!(
            report.is_clean(),
            "seed {seed} violations: {:?}",
            report.violations
        );
    }
    // Timer wheel: schedule/cancel traffic takes the seq + handle locks.
    let wheel = fl_actors::timer::TimerWheel::new();
    let (tx, rx) = crossbeam::channel::unbounded::<()>();
    wheel.schedule(std::time::Duration::from_millis(1), move || {
        let _ = tx.send(());
    });
    let _ = rx.recv_timeout(std::time::Duration::from_secs(5));
    wheel.shutdown();

    let graph = LockGraph::global();
    assert!(
        graph.site_count() >= 6,
        "expected the workloads to register most rank-table sites, saw {}:\n{}",
        graph.site_count(),
        graph.render()
    );
    // The one intentional nesting in the workspace (obituary publish /
    // replay) must be present — proof the audit watched real traffic.
    assert!(
        graph.has_edge("actors/system.obituary_log", "actors/system.subscribers"),
        "expected the obituary-log -> subscribers edge:\n{}",
        graph.render()
    );
    let violations = graph.rank_violations();
    assert!(
        violations.is_empty(),
        "rank violations:\n{violations:#?}\n{}",
        graph.render()
    );
    assert!(
        graph.is_acyclic(),
        "potential deadlock cycles:\n{}",
        graph.render()
    );
}

/// The gate must *detect* the bug class it guards against: a lock pair
/// taken in both orders — on one thread, never deadlocking — shows up
/// as a cycle and two rank violations on its (private) graph.
#[test]
fn inverted_lock_order_fixture_is_flagged() {
    const LEFT: Site = Site::new("fixture/inverted.left", 100);
    const RIGHT: Site = Site::new("fixture/inverted.right", 101);
    let graph = LockGraph::new();
    let left = Mutex::new_in(LEFT, &graph, 0u64);
    let right = Mutex::new_in(RIGHT, &graph, 0u64);

    // Order 1 (rank-correct): left (100) then right (101).
    {
        let a = left.lock();
        let b = right.lock();
        drop(b);
        drop(a);
    }
    // Order 2 (inverted): right then left — the classic AB/BA hazard.
    // No deadlock happens (same thread, sequential), but the graph now
    // holds both edges.
    {
        let b = right.lock();
        let a = left.lock();
        drop(a);
        drop(b);
    }

    assert!(!graph.is_acyclic(), "AB/BA pair must form a cycle");
    let cycles = graph.cycles();
    assert_eq!(cycles.len(), 1, "{cycles:#?}");
    assert_eq!(
        cycles[0].sites,
        vec!["fixture/inverted.left", "fixture/inverted.right"]
    );
    // The inverted acquisition also breaks the static rank order.
    let violations = graph.rank_violations();
    assert_eq!(violations.len(), 1, "{violations:#?}");
    assert_eq!(violations[0].held, "fixture/inverted.right");
    assert_eq!(violations[0].acquired, "fixture/inverted.left");
    // The report names the hazard even though nothing ever deadlocked.
    let rendered = graph.render();
    assert!(rendered.contains("potential deadlock"), "{rendered}");
    assert!(rendered.contains("fixture/inverted.left"), "{rendered}");
}

/// Identical lock histories must render byte-identically — a failing
/// audit is a reproducible artifact, not a flaky snapshot.
#[test]
fn identical_histories_render_byte_identically() {
    const A: Site = Site::new("fixture/render.a", 110);
    const B: Site = Site::new("fixture/render.b", 111);
    let build = || {
        let graph = LockGraph::new();
        let a = Mutex::new_in(A, &graph, ());
        let b = Mutex::new_in(B, &graph, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        graph.render()
    };
    assert_eq!(build(), build());
}
