//! Multi-tenant populations end to end (the tentpole of the
//! multi-tenancy PR): one Coordinator per population over a shared
//! Selector layer (Sec. 2.1/4.2 — "The Coordinators are the top-level
//! actors, one per population"), check-ins demultiplexed by the
//! [`PopulationName`] every v3 frame carries, per-population quotas and
//! telemetry, and the shared admission budget's per-population
//! fair-share reservations — plus the seeded multi-population DES sweep
//! (`fl-sim::multi`) that audits cross-population fairness under a
//! flash crowd.

use crossbeam::channel::unbounded;
use federated::actors::{ActorSystem, LockingService};
use federated::analytics::overload::OverloadMonitorConfig;
use federated::core::plan::{CodecSpec, FlPlan, ModelSpec};
use federated::core::population::{FlTask, TaskGroup, TaskSelectionStrategy};
use federated::core::round::RoundConfig;
use federated::core::{DeviceId, PopulationName};
use federated::server::live::{CoordMsg, CoordinatorActor, DeviceConn};
use federated::server::pace::PaceSteering;
use federated::server::topology::{spawn_multi_topology, SelectorSpec, TopologyBlueprint};
use federated::server::wire::WireMessage;
use federated::server::{CoordinatorConfig, GlobalAdmissionConfig};
use federated::sim::multi::{default_seeds, run_multi_tenant, sweep, MultiTenantConfig};
use std::time::Duration;

fn spec() -> ModelSpec {
    ModelSpec::Logistic {
        dim: 4,
        classes: 2,
        seed: 0,
    }
}

fn coordinator_for(
    population: &str,
    round: RoundConfig,
    locks: LockingService<String>,
) -> CoordinatorActor<federated::server::storage::InMemoryCheckpointStore> {
    let task = FlTask::training("t", population).with_round(round);
    let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
    CoordinatorActor::new(
        CoordinatorConfig::new(population, 7),
        TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
        vec![plan],
        vec![0.0; spec().num_params()],
        locks,
    )
}

fn round_with_goal(goal: usize) -> RoundConfig {
    RoundConfig {
        goal_count: goal,
        overselection: 1.0,
        min_goal_fraction: 1.0,
        selection_timeout_ms: 5_000,
        report_window_ms: 30_000,
        device_cap_ms: 30_000,
    }
}

fn drive_to_commit(coord: &federated::actors::ActorRef<CoordMsg>) -> bool {
    loop {
        let (tx, rx) = unbounded();
        coord.send(CoordMsg::TryCompleteRound { reply: tx }).unwrap();
        if let Some(outcome) = rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            return outcome.is_committed();
        }
        coord.send(CoordMsg::Tick).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Three populations, three Coordinators, one shared two-Selector layer:
/// every tenant's devices check in under their own population name,
/// route to their own Coordinator, and every tenant commits its round
/// concurrently. The shared telemetry splits accept series per
/// population, and the shared budget ledgers every admit to the right
/// tenant.
#[test]
fn three_populations_commit_concurrently_through_one_selector_layer() {
    let system = ActorSystem::new();
    let locks: LockingService<String> = LockingService::new();
    let populations = ["tenant/a", "tenant/b", "tenant/c"];
    let coordinators = populations
        .iter()
        .map(|p| (coordinator_for(p, round_with_goal(4), locks.clone()), 8))
        .collect();
    let blueprint = TopologyBlueprint::new(
        (0..2)
            .map(|i| SelectorSpec::new(PaceSteering::new(1_000, 12), 100, i, 24))
            .collect(),
    )
    .with_global_admission(GlobalAdmissionConfig {
        window_ms: 600_000,
        max_admits_per_window: 120,
    })
    .with_telemetry(OverloadMonitorConfig::default());
    let multi = spawn_multi_topology(&system, coordinators, &blueprint);
    assert_eq!(multi.selectors.len(), 2);
    assert_eq!(multi.coordinators.len(), 3);

    // Four devices per population, fanned across both selectors, all on
    // their own threads — twelve concurrent check-ins, three concurrent
    // rounds.
    let handles: Vec<_> = populations
        .iter()
        .enumerate()
        .flat_map(|(p, population)| {
            (0..4u64).map(move |i| (p, *population, p as u64 * 100 + i))
        })
        .map(|(p, population, id)| {
            let sel = multi.selectors[(id % 2) as usize].clone();
            let coord = multi
                .coordinator(&PopulationName::new(population))
                .unwrap()
                .clone();
            std::thread::spawn(move || {
                let conn = DeviceConn::connect(DeviceId(id), population, sel, coord);
                conn.check_in().unwrap();
                loop {
                    match conn.recv(Duration::from_secs(10)).unwrap() {
                        WireMessage::PlanAndCheckpoint {
                            plan,
                            checkpoint,
                            population: wired,
                        } => {
                            // The Configuration is stamped with the
                            // tenant's own population: no cross-tenant
                            // plan ever reaches a device.
                            assert_eq!(wired.as_str(), population);
                            let dim = plan.server.expected_dim;
                            let bytes =
                                CodecSpec::Identity.build().encode(&vec![0.5f32; dim]);
                            conn.report(checkpoint.round, 1, bytes, 3, 0.4, 0.9).unwrap();
                        }
                        WireMessage::ReportAck { accepted, .. } => return (p, accepted),
                        other => panic!("unexpected reply {other:?}"),
                    }
                }
            })
        })
        .collect();
    let mut accepted_per_pop = [0usize; 3];
    for h in handles {
        let (p, ok) = h.join().unwrap();
        if ok {
            accepted_per_pop[p] += 1;
        }
    }
    assert_eq!(accepted_per_pop, [4, 4, 4], "every tenant's devices contribute");

    for population in &populations {
        let coord = multi.coordinator(&PopulationName::new(*population)).unwrap();
        assert!(
            drive_to_commit(coord),
            "population {population} failed to commit its round"
        );
    }

    // The shared budget ledgered every admit to the owning tenant.
    let budget = multi.global_budget.clone().expect("budget configured");
    for population in &populations {
        assert_eq!(
            budget.admitted_total_for(&PopulationName::new(*population)),
            4,
            "budget ledger for {population}"
        );
    }
    // The shared telemetry split the accept series per population.
    let telemetry = multi.telemetry.clone().expect("telemetry configured");
    let metrics = telemetry.lock();
    for population in &populations {
        let series = metrics
            .population_series(&PopulationName::new(*population))
            .unwrap_or_else(|| panic!("no series for {population}"));
        assert_eq!(
            series.accepts.sums().iter().sum::<f64>(),
            4.0,
            "accept series for {population}"
        );
    }
    drop(metrics);

    multi.shutdown();
    system.join();
    for population in &populations {
        assert!(locks.lookup(&format!("coordinator/{population}")).is_none());
    }
}

/// A storm of check-ins on one tenant runs into the shared budget's
/// fair-share reservations while the quiet tenant's devices all admit
/// and its round commits — live-threaded, the same guarantee the DES
/// sweep audits at scale.
#[test]
fn fair_share_budget_shields_the_quiet_population_live() {
    let system = ActorSystem::new();
    let locks: LockingService<String> = LockingService::new();
    let coordinators = vec![
        (coordinator_for("fair/quiet", round_with_goal(3), locks.clone()), 16),
        (coordinator_for("fair/storm", round_with_goal(3), locks.clone()), 16),
    ];
    // Budget of 6 per window over 2 tenants: fair share 3 each. The
    // storm's 10 devices cannot take the quiet tenant's 3 reserved
    // admits, however the threads interleave.
    let blueprint = TopologyBlueprint::new(vec![SelectorSpec::new(
        PaceSteering::new(1_000, 6),
        100,
        5,
        32,
    )])
    .with_global_admission(GlobalAdmissionConfig {
        window_ms: 600_000,
        max_admits_per_window: 6,
    });
    let multi = spawn_multi_topology(&system, coordinators, &blueprint);
    let quiet = PopulationName::new("fair/quiet");
    let storm = PopulationName::new("fair/storm");

    // The storm checks in first — all ten devices — then the quiet
    // tenant's three. Even with the storm fully ahead in line, the
    // quiet tenant must get its full fair share.
    let storm_conns: Vec<_> = (0..10u64)
        .map(|i| {
            let conn = DeviceConn::connect(
                DeviceId(100 + i),
                "fair/storm",
                multi.selectors[0].clone(),
                multi.coordinator(&storm).unwrap().clone(),
            );
            conn.check_in().unwrap();
            conn
        })
        .collect();
    let quiet_conns: Vec<_> = (0..3u64)
        .map(|i| {
            let conn = DeviceConn::connect(
                DeviceId(i),
                "fair/quiet",
                multi.selectors[0].clone(),
                multi.coordinator(&quiet).unwrap().clone(),
            );
            conn.check_in().unwrap();
            conn
        })
        .collect();

    // Every quiet device is configured (none shed) and carries the
    // round to a commit.
    for conn in &quiet_conns {
        match conn.recv(Duration::from_secs(10)).unwrap() {
            WireMessage::PlanAndCheckpoint {
                plan, checkpoint, ..
            } => {
                let dim = plan.server.expected_dim;
                let bytes = CodecSpec::Identity.build().encode(&vec![0.25f32; dim]);
                conn.report(checkpoint.round, 1, bytes, 1, 0.3, 0.9).unwrap();
            }
            other => panic!("quiet tenant was turned away: {other:?}"),
        }
    }
    for conn in &quiet_conns {
        assert!(matches!(
            conn.recv(Duration::from_secs(5)).unwrap(),
            WireMessage::ReportAck { accepted: true, .. }
        ));
    }
    assert!(drive_to_commit(multi.coordinator(&quiet).unwrap()));

    // The storm's overflow was shed by the budget, charged to the
    // storm's own ledger — never the quiet tenant's.
    let mut storm_shed = 0;
    let mut storm_configured = 0;
    for conn in &storm_conns {
        match conn.recv(Duration::from_secs(10)).unwrap() {
            WireMessage::Shed { population, .. } => {
                assert_eq!(population, storm);
                storm_shed += 1;
            }
            WireMessage::PlanAndCheckpoint { .. } => storm_configured += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(storm_configured, 3, "the storm keeps its own fair share");
    assert_eq!(storm_shed, 7, "the overflow is shed");
    let budget = multi.global_budget.clone().expect("budget configured");
    assert_eq!(budget.admitted_total_for(&quiet), 3);
    assert_eq!(budget.admitted_total_for(&storm), 3);
    assert_eq!(budget.shed_total_for(&quiet), 0);
    assert_eq!(budget.shed_total_for(&storm), 7);

    multi.shutdown();
    system.join();
}

/// The fixed-seed multi-population DES sweep `scripts/check.sh` runs as
/// a release gate: three tenants on one fleet, a 12 000-device flash
/// crowd against one of them, and every fairness invariant — no starved
/// tenant, conserved per-population ledgers, bounded queues, no wedged
/// rounds — holding on every seed.
#[test]
fn fixed_seed_fairness_sweep_is_clean() {
    let reports = sweep(&default_seeds(), MultiTenantConfig::flash_vs_steady);
    assert_eq!(reports.len(), default_seeds().len());
    for report in &reports {
        assert!(
            report.is_clean(),
            "seed {} violated multi-tenant invariants:\n{}",
            report.seed,
            report.render()
        );
        let steady = report.outcome("multi/steady").unwrap();
        let flash = report.outcome("multi/flash").unwrap();
        assert!(
            steady.committed >= 3,
            "seed {}: steady tenant starved:\n{}",
            report.seed,
            report.render()
        );
        assert!(
            flash.budget_sheds > 1_000,
            "seed {}: the storm never hit the fair-share budget:\n{}",
            report.seed,
            report.render()
        );
        assert!(
            steady.budget_sheds < flash.budget_sheds / 100,
            "seed {}: fair-share cost leaked onto the steady tenant:\n{}",
            report.seed,
            report.render()
        );
        // The on-device half of multi-tenancy: single-session
        // arbitration really arbitrated.
        assert!(
            report.arbitration_losses > 0,
            "seed {}: no device arbitration:\n{}",
            report.seed,
            report.render()
        );
    }
}

/// Replaying a sweep seed renders byte-identically — a failing seed is
/// a replayable bug report, same contract as the chaos harnesses.
#[test]
fn sweep_seed_replays_byte_identically() {
    let seed = default_seeds()[0];
    let a = run_multi_tenant(&MultiTenantConfig::flash_vs_steady(seed)).render();
    let b = run_multi_tenant(&MultiTenantConfig::flash_vs_steady(seed)).render();
    assert_eq!(a, b);
}
