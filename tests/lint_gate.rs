//! The static-analysis release gate as a tier-1 test: the workspace
//! must be clean under every `fl-lint` rule. The paper (Sec. 7) gates
//! plan releases behind automated predicates before they may touch
//! real devices; this is the code-side predicate. A failure here means
//! a determinism, panic-safety, or concurrency invariant regressed —
//! fix the site or, where the behaviour is deliberate, annotate it
//! with `// fl-lint: allow(<rule>): <justification>`.

#[test]
fn workspace_is_lint_clean() {
    let root = fl_lint::workspace_root();
    let (findings, scanned) = fl_lint::lint_workspace(&root);
    assert!(
        scanned > 50,
        "walked only {scanned} files from {} — wrong workspace root?",
        root.display()
    );
    assert!(
        findings.is_empty(),
        "fl-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
