//! Chaos sweep (the tentpole of the fault-injection PR): seeded,
//! replayable fault schedules driven against the real Coordinator /
//! storage / locking stack, asserting the paper's recovery guarantees
//! (Sec. 4.2, 4.4) per failure mode and as properties over random plans.

use federated::sim::chaos::{
    default_secagg_seeds, default_seeds, run_chaos, secagg_config, sweep, ChaosConfig, Fault,
    FaultPlan,
};
use proptest::prelude::*;

/// The fixed-seed sweep `scripts/check.sh` runs as a release gate: every
/// seed must hold every recovery guarantee.
#[test]
fn fixed_seed_sweep_is_clean() {
    let config = ChaosConfig::default();
    let reports = sweep(&default_seeds(), &config);
    assert_eq!(reports.len(), default_seeds().len());
    for report in &reports {
        assert!(
            report.is_clean(),
            "seed {} violated recovery guarantees:\n{}",
            report.seed,
            report.render()
        );
        // "The system will continue to make progress" (Sec. 4.4).
        assert!(
            report.committed >= 1,
            "seed {} never committed a round:\n{}",
            report.seed,
            report.render()
        );
    }
    // The sweep must actually exercise faults, not coast fault-free.
    let injected: usize = reports
        .iter()
        .map(|r| r.log.with_prefix("inject.").count())
        .sum();
    assert!(injected >= 10, "sweep injected only {injected} faults");
}

/// The SecAgg leg of the sweep (Sec. 6 through the same fault
/// schedules): masked rounds must hold every recovery guarantee, never
/// hang, and keep the storage audit — a shard whose group is stranded
/// below `k` aborts without poisoning the commit, and a round whose
/// every group aborts restarts cleanly with nothing persisted.
#[test]
fn secagg_fixed_seed_sweep_is_clean() {
    let config = secagg_config(2);
    let reports = sweep(&default_secagg_seeds(), &config);
    assert_eq!(reports.len(), default_secagg_seeds().len());
    for report in &reports {
        assert!(
            report.is_clean(),
            "secagg seed {} violated recovery guarantees:\n{}",
            report.seed,
            report.render()
        );
        assert!(
            report.committed >= 1,
            "secagg seed {} never committed a round:\n{}",
            report.seed,
            report.render()
        );
        assert_eq!(report.final_write_count, 1 + report.committed);
    }
}

/// A SecAgg Aggregator crash loses its whole group's masked
/// contributions, not just some updates — the round still commits on the
/// surviving groups and the storage audit holds (Sec. 4.2 × Sec. 6).
#[test]
fn secagg_aggregator_loss_costs_only_its_group() {
    let config = secagg_config(2);
    let plan = FaultPlan {
        seed: 1,
        faults: vec![Fault::AggregatorCrash {
            at_ms: 12_000,
            shard: 0,
        }],
    };
    let report = run_chaos(&plan, &config);
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.committed >= 1, "{}", report.render());
    assert_eq!(report.final_write_count, 1 + report.committed);
}

/// Determinism is the whole point: the same seed must reproduce the same
/// run byte-for-byte, so a failing seed is a replayable bug report.
#[test]
fn replay_of_a_seed_is_byte_identical() {
    let config = ChaosConfig::default();
    for seed in default_seeds() {
        let first = run_chaos(&FaultPlan::generate(seed, config.horizon_ms), &config).render();
        let second = run_chaos(&FaultPlan::generate(seed, config.horizon_ms), &config).render();
        assert_eq!(first, second, "seed {seed} diverged between replays");
    }
}

fn one_fault_run(fault: Fault) -> federated::sim::chaos::ChaosReport {
    let config = ChaosConfig::default();
    let plan = FaultPlan {
        seed: 1,
        faults: vec![fault],
    };
    run_chaos(&plan, &config)
}

/// Aggregator loss: "If an Aggregator […] fails, only the round […] will
/// fail" at worst — here the round loses that shard's devices and still
/// commits on the survivors (Sec. 4.2).
#[test]
fn aggregator_loss_costs_only_its_shard() {
    let report = one_fault_run(Fault::AggregatorCrash {
        at_ms: 12_000,
        shard: 0,
    });
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.committed >= 1, "{}", report.render());
    assert_eq!(report.log.with_prefix("inject.aggregator-crash").count(), 1);
    assert_eq!(report.final_write_count, 1 + report.committed);
}

/// Selector loss: its devices vanish for a few check-in periods, then
/// re-route; training continues.
#[test]
fn selector_loss_reroutes_devices() {
    let report = one_fault_run(Fault::SelectorCrash {
        at_ms: 12_000,
        selector: 0,
    });
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.committed >= 1, "{}", report.render());
    assert_eq!(report.log.with_prefix("inject.selector-crash").count(), 1);
}

/// Master Aggregator loss: "the current round of the FL task it manages
/// will fail, but will then be restarted by the Coordinator" — and
/// nothing from the dead round reaches storage (Sec. 4.2).
#[test]
fn master_loss_fails_round_then_restarts() {
    let report = one_fault_run(Fault::MasterCrash { at_ms: 12_000 });
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.master_restarts, 1, "{}", report.render());
    assert!(report.committed >= 1, "{}", report.render());
    assert_eq!(report.final_write_count, 1 + report.committed);
    assert_eq!(report.log.with_prefix("recover.round-restart").count(), 1);
}

/// Coordinator loss: the locking-service race admits exactly one
/// respawn, and the respawned incarnation resumes the committed model
/// without an extra checkpoint write (Sec. 4.2: "this will happen
/// exactly once").
#[test]
fn coordinator_loss_respawns_exactly_once() {
    let report = one_fault_run(Fault::CoordinatorCrash { at_ms: 15_000 });
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.respawns, 1, "{}", report.render());
    assert!(report.committed >= 1, "{}", report.render());
    assert_eq!(report.log.with_prefix("recover.respawn").count(), 1);
    // The respawn audit (no extra write, model intact) is part of the
    // harness's violation checks; clean report == guarantees held.
    assert_eq!(report.final_write_count, 1 + report.committed);
}

/// Lease loss: the coordinator re-registers at the next tick and keeps
/// training.
#[test]
fn lease_loss_is_reacquired() {
    let report = one_fault_run(Fault::LeaseLoss { at_ms: 10_000 });
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.lease_reacquisitions, 1, "{}", report.render());
    assert!(report.committed >= 1, "{}", report.render());
}

/// Storage write failure: the round's aggregate is lost, the previously
/// committed checkpoint stays authoritative, and the next round retries
/// from it ("no information for a round is written to persistent storage
/// until it is fully aggregated").
#[test]
fn storage_failure_loses_round_but_not_state() {
    let report = one_fault_run(Fault::StorageWriteFailure { attempt: 2 });
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.lost_to_storage, 1, "{}", report.render());
    assert!(report.committed >= 1, "{}", report.render());
    assert_eq!(report.final_write_count, 1 + report.committed);
}

/// Device drop-out burst: over-selection absorbs it, or the round is
/// abandoned cleanly — either way no hang and no stray writes.
#[test]
fn dropout_burst_never_wedges_a_round() {
    let report = one_fault_run(Fault::DropoutBurst {
        at_ms: 12_000,
        per_mille: 400,
    });
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.log.with_prefix("inject.dropout-burst").count(), 1);
    assert_eq!(report.final_write_count, 1 + report.committed);
}

/// Compound schedule: every failure mode in one run, in a deliberately
/// nasty order (coordinator dies while a storage failure is pending and
/// devices are dropping). The system must still make progress.
#[test]
fn compound_fault_schedule_still_makes_progress() {
    let config = ChaosConfig::default();
    let plan = FaultPlan {
        seed: 2,
        faults: vec![
            Fault::DropoutBurst {
                at_ms: 8_000,
                per_mille: 250,
            },
            Fault::MasterCrash { at_ms: 40_000 },
            Fault::CoordinatorCrash { at_ms: 70_000 },
            Fault::LeaseLoss { at_ms: 100_000 },
            Fault::SelectorCrash {
                at_ms: 120_000,
                selector: 1,
            },
            Fault::AggregatorCrash {
                at_ms: 140_000,
                shard: 2,
            },
            Fault::StorageWriteFailure { attempt: 3 },
        ],
    };
    let report = run_chaos(&plan, &config);
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.committed >= 1, "{}", report.render());
    assert_eq!(report.respawns, 1);
    assert_eq!(report.master_restarts, 1);
    assert_eq!(report.lost_to_storage, 1);
    assert_eq!(report.final_write_count, 1 + report.committed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property over *random* fault schedules (satellite 4): whatever the
    /// plan, the system never hangs (every round reaches a terminal
    /// phase — hangs surface as violations), never double-commits
    /// (`write_count == 1 + committed`), and always reaches terminal
    /// round outcomes.
    #[test]
    fn random_fault_schedules_never_hang_or_double_commit(seed in 0u64..10_000) {
        let config = ChaosConfig::default();
        let plan = FaultPlan::generate(seed, config.horizon_ms);
        let report = run_chaos(&plan, &config);
        prop_assert!(
            report.is_clean(),
            "seed {} violated guarantees:\n{}",
            seed,
            report.render()
        );
        prop_assert_eq!(report.final_write_count, 1 + report.committed);
        prop_assert!(
            report.committed + report.abandoned + report.lost_to_storage + report.master_restarts
                >= 1
        );
    }
}
