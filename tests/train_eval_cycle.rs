//! Alternating training/evaluation deployment (Sec. 7.1): "a dynamic
//! strategy that allows alternating between training and evaluation of a
//! single model", driven end-to-end through the Coordinator with real
//! device-runtime execution for both task kinds.

use federated::core::plan::CodecSpec;
use federated::core::population::TaskKind;
use federated::core::round::RoundConfig;
use federated::core::plan::ModelSpec;
use federated::core::{DeviceId, RoundId};
use federated::data::store::{InMemoryStore, StoreConfig};
use federated::data::synth::classification::{generate, ClassificationConfig};
use federated::device::runtime::{ExecutionOutcome, FlRuntime};
use federated::server::coordinator::{Coordinator, CoordinatorConfig};
use federated::server::storage::{CheckpointStore, InMemoryCheckpointStore};
use federated::tools::TaskBuilder;

#[test]
fn train_eval_alternation_trains_then_measures() {
    let spec = ModelSpec::Logistic {
        dim: 16,
        classes: 4,
        seed: 1,
    };
    let data = generate(&ClassificationConfig {
        users: 20,
        examples_per_user: 60,
        separation: 3.0,
        noise: 0.7,
        ..Default::default()
    });
    let stores: Vec<InMemoryStore> = data
        .users
        .iter()
        .map(|d| InMemoryStore::with_examples(StoreConfig::default(), d.clone(), 0))
        .collect();

    let round = RoundConfig {
        goal_count: 6,
        overselection: 1.34,
        min_goal_fraction: 0.67,
        selection_timeout_ms: 60_000,
        report_window_ms: 300_000,
        device_cap_ms: 250_000,
    };
    // Two training rounds, then one evaluation round, repeating.
    let (group, plans) = TaskBuilder::training("cycle/train", "cycle-pop", spec)
        .learning_rate(0.3)
        .local_epochs(2)
        .round(round)
        .with_evaluation(2);
    let mut coordinator = Coordinator::new(
        CoordinatorConfig::new("cycle-pop", 11),
        InMemoryCheckpointStore::new(),
    );
    coordinator.deploy(group, plans, spec.instantiate().params().to_vec()).unwrap();

    let runtime = FlRuntime::new(3);
    let mut eval_accuracies: Vec<f64> = Vec::new();
    let mut kinds: Vec<TaskKind> = Vec::new();
    for cycle in 0..9u64 {
        let mut round = coordinator.begin_round(cycle * 1_000_000).unwrap();
        kinds.push(round.task.kind);
        let target = round.task.round.selection_target();
        for i in 0..target {
            round.on_checkin(DeviceId((cycle as usize * target + i) as u64 % 20), cycle * 1_000_000 + 10);
        }
        let mut now = cycle * 1_000_000 + 100;
        for d in round.state.participants() {
            let outcome = runtime
                .execute(
                    &round.plan.device,
                    &round.checkpoint,
                    &stores[d.0 as usize],
                    None,
                )
                .unwrap();
            if let ExecutionOutcome::Completed {
                update_bytes,
                weight,
                loss,
                accuracy,
                ..
            } = outcome
            {
                // Evaluation plans produce no update bytes; training plans do.
                match round.task.kind {
                    TaskKind::Training => assert!(update_bytes.is_some()),
                    TaskKind::Evaluation => assert!(update_bytes.is_none()),
                }
                round
                    .on_report(
                        d,
                        now,
                        &update_bytes.unwrap_or_default(),
                        weight.max(1),
                        if loss.is_nan() { 0.0 } else { loss },
                        if accuracy.is_nan() { 0.0 } else { accuracy },
                    )
                    .unwrap();
            }
            now += 10;
        }
        round.on_tick(cycle * 1_000_000 + 900_000);
        let kind = round.task.kind;
        let outcome = coordinator.complete_round(round).unwrap();
        assert!(outcome.is_committed(), "cycle {cycle}: {outcome:?}");
        if kind == TaskKind::Evaluation {
            // The materialized metrics carry the held-out accuracy.
            let (_, _, summaries) = coordinator.materialized_metrics().last().unwrap();
            let acc = summaries.iter().find(|s| s.name == "accuracy").unwrap();
            eval_accuracies.push(acc.moments.mean());
        }
    }

    // The strategy ran T,T,E,T,T,E,T,T,E.
    assert_eq!(
        kinds,
        vec![
            TaskKind::Training,
            TaskKind::Training,
            TaskKind::Evaluation,
            TaskKind::Training,
            TaskKind::Training,
            TaskKind::Evaluation,
            TaskKind::Training,
            TaskKind::Training,
            TaskKind::Evaluation,
        ]
    );
    // Evaluation rounds never advanced the model checkpoint: 6 training
    // commits → round id 6.
    assert_eq!(
        coordinator.store().latest("cycle/train").unwrap().round,
        RoundId(6)
    );
    // Held-out accuracy improves across evaluation rounds (training works).
    assert_eq!(eval_accuracies.len(), 3);
    assert!(
        eval_accuracies[2] > 0.7,
        "final eval accuracy {eval_accuracies:?}"
    );
    assert!(
        eval_accuracies[2] >= eval_accuracies[0] - 0.05,
        "accuracy trajectory {eval_accuracies:?}"
    );
}
