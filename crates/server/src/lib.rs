//! `fl-server` — the Federated Learning server (Sec. 2 and Sec. 4).
//!
//! The server side of the protocol, structured exactly as the paper's
//! actor architecture (Fig. 3), but with the *protocol logic* factored
//! into deterministic, explicitly-clocked state machines so it can be
//! driven both by the discrete-event simulator (`fl-sim`) and by the live
//! threaded actor runtime (`fl-actors`):
//!
//! * [`pace`] — pace steering (Sec. 2.3): stateless reconnect-window
//!   suggestion, rendezvous concentration for small populations,
//!   thundering-herd avoidance for large ones, diurnal awareness;
//! * [`selector`] — Selectors (Sec. 4.2): accept/reject device check-ins
//!   against coordinator-assigned quotas, forward devices by reservoir
//!   sampling;
//! * [`shedding`] — overload protection for the Selector layer: a
//!   token-bucket + bounded-queue admission controller with deterministic
//!   shed decisions, and closed-loop pace steering that folds observed
//!   check-in arrival rates back into reconnect-window sizing;
//! * [`round`] — the Selection → Configuration → Reporting state machine
//!   of one round (Sec. 2.2), with goal counts, timeouts, over-selection,
//!   straggler discard, and per-device session logs;
//! * [`aggregator`] — Aggregators and the Master Aggregator (Sec. 4.2,
//!   Sec. 6): streaming in-memory FedAvg shards, optional per-shard Secure
//!   Aggregation over groups of size ≥ k, hierarchical merge;
//! * [`coordinator`] — Coordinators (Sec. 4.2): per-population round
//!   advancement in lockstep, task selection, global model custody,
//!   checkpoint commits, locking-service registration;
//! * [`storage`] — the persistent checkpoint store ("no information for a
//!   round is written to persistent storage until it is fully aggregated");
//! * [`pipeline`] — Selection of round *i+1* overlapped with
//!   Configuration/Reporting of round *i* (Sec. 4.3);
//! * [`topology`] — the shared blueprint for the Selector → Coordinator →
//!   Master Aggregator tree, built identically by the live topology and
//!   both simulation harnesses;
//! * [`live`] — the threaded actor wiring for all of the above;
//! * [`adaptive`] — dynamic round-window tuning (the Sec. 11 future-work
//!   item, built on the P² reporting-time sketches).

#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

/// Dynamic round-window tuning from P² reporting-time sketches.
pub mod adaptive;
/// Aggregators and the Master Aggregator: streaming FedAvg shards,
/// optional per-shard Secure Aggregation, hierarchical merge.
pub mod aggregator;
/// Coordinators: round advancement, task selection, model custody.
pub mod coordinator;
/// Threaded actor wiring for the live (wall-clock) server topology.
pub mod live;
/// Pace steering: reconnect windows, rendezvous, herd avoidance.
pub mod pace;
/// Round-overlap pipelining: Selection of round *i+1* during round *i*.
pub mod pipeline;
/// The Selection → Configuration → Reporting round state machine.
pub mod round;
/// Selectors: check-in admission against coordinator quotas.
pub mod selector;
/// Overload protection: admission control and closed-loop pace steering.
pub mod shedding;
/// Persistent checkpoint storage with aggregate-before-write semantics.
pub mod storage;
/// Shared blueprint types for building the Selector → Coordinator →
/// Master Aggregator tree across the live and simulated harnesses.
pub mod topology;

/// The versioned framed wire protocol spoken at the device↔Selector and
/// Selector↔Aggregator boundaries, re-exported so server consumers get
/// the exact protocol revision this server was built against.
pub use fl_wire as wire;

pub use aggregator::{AggregationPlan, MasterAggregator};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use pace::PaceSteering;
pub use round::{RoundEvent, RoundState};
pub use selector::{CheckinDecision, Selector};
pub use shedding::{
    AdmissionConfig, AdmissionController, AdmissionDecision, GlobalAdmissionBudget,
    GlobalAdmissionConfig, PaceController, PaceControllerConfig, ShedReason,
};
pub use topology::{
    spawn_topology, DeploymentSpec, LiveTopology, SelectorSpec, TopologyBlueprint,
};
pub use storage::{
    CheckpointStore, FaultyCheckpointStore, InMemoryCheckpointStore, SharedCheckpointStore,
};
