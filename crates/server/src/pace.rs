//! Pace steering (Sec. 2.3).
//!
//! "Pace steering is a flow control mechanism regulating the pattern of
//! device connections. […] based on the simple mechanism of the server
//! suggesting to the device the optimum time window to reconnect."
//!
//! Two regimes:
//!
//! * **Small populations** — "pace steering is used to ensure that a
//!   sufficient number of devices connect to the server simultaneously",
//!   using "a stateless probabilistic algorithm requiring no additional
//!   device/server communication to suggest reconnection times to rejected
//!   devices so that subsequent checkins are likely to arrive
//!   contemporaneously": we align suggestions to the next *rendezvous
//!   tick*, a global period boundary computable from wall time alone.
//!
//! * **Large populations** — "pace steering is used to randomize device
//!   check-in times, avoiding the 'thundering herd' problem": suggestions
//!   are spread uniformly over a window sized so expected arrivals match
//!   what the scheduled tasks need.
//!
//! Diurnal awareness (the paper's third property) scales the window by the
//! expected active-device factor so peak hours are not over-solicited.


/// Population-size regime boundary: below this, concentrate; above, spread.
pub const SMALL_POPULATION: u64 = 1_000;

/// Stateless pace-steering policy. All methods are pure functions of their
/// arguments plus the caller's RNG — the server keeps no per-device state,
/// matching the paper's "stateless probabilistic algorithm".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaceSteering {
    /// Period between rendezvous ticks for small populations (ms). Also
    /// the base reconnect horizon for large ones.
    pub rendezvous_period_ms: u64,
    /// Devices the server wants checked in per rendezvous (the round's
    /// selection target, typically `1.3 × goal`).
    pub target_checkins: u64,
}

impl PaceSteering {
    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(rendezvous_period_ms: u64, target_checkins: u64) -> Self {
        assert!(rendezvous_period_ms > 0, "period must be positive");
        assert!(target_checkins > 0, "target must be positive");
        PaceSteering {
            rendezvous_period_ms,
            target_checkins,
        }
    }

    /// Suggests an absolute reconnect time for a device rejected at
    /// `now_ms`, given the current population-size estimate and a diurnal
    /// activity factor (1.0 = average; >1 = peak hours, scaled back).
    ///
    /// # Panics
    ///
    /// Panics if `activity_factor` is not positive and finite.
    pub fn suggest_reconnect<R: rand::Rng>(
        &self,
        now_ms: u64,
        population_estimate: u64,
        activity_factor: f64,
        rng: &mut R,
    ) -> u64 {
        assert!(
            activity_factor.is_finite() && activity_factor > 0.0,
            "activity factor must be positive"
        );
        if population_estimate <= SMALL_POPULATION {
            // Small population: aim at the next rendezvous tick so that
            // rejected devices come back together. Jitter within a small
            // fraction of the period avoids exact synchronization spikes
            // at the transport level while keeping arrivals contemporaneous.
            let next_tick =
                (now_ms / self.rendezvous_period_ms + 1) * self.rendezvous_period_ms;
            let jitter = rng.random_range(0..self.rendezvous_period_ms / 20 + 1);
            next_tick + jitter
        } else {
            // Large population: devices should return "as frequently as
            // needed to run all scheduled FL tasks, but not more". With N
            // devices and a need for `target` check-ins per period, the
            // average device should return about every N/target periods.
            // Spreading uniformly over that horizon yields the desired
            // arrival rate with no thundering herd. Peak-hours activity
            // (factor > 1) stretches the horizon proportionally.
            let periods_needed =
                (population_estimate as f64 / self.target_checkins as f64).max(1.0);
            let horizon =
                (periods_needed * self.rendezvous_period_ms as f64 * activity_factor) as u64;
            now_ms + 1 + rng.random_range(0..horizon.max(1))
        }
    }

    /// Expected number of check-ins per period for a given population under
    /// this policy (used by tests and capacity planning).
    pub fn expected_checkins_per_period(&self, population_estimate: u64) -> f64 {
        if population_estimate <= SMALL_POPULATION {
            population_estimate as f64
        } else {
            self.target_checkins as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_ml::rng::seeded;

    #[test]
    fn small_population_concentrates_on_ticks() {
        let pace = PaceSteering::new(60_000, 100);
        let mut rng = seeded(1);
        // Devices rejected at scattered times within one period...
        let suggestions: Vec<u64> = (0..200)
            .map(|i| pace.suggest_reconnect(10_000 + i * 37, 500, 1.0, &mut rng))
            .collect();
        // ...should all land in a narrow band after the next tick.
        let min = *suggestions.iter().min().unwrap();
        let max = *suggestions.iter().max().unwrap();
        assert!(min >= 60_000, "suggestion before the tick: {min}");
        assert!(
            max - min <= 60_000 / 20 + 60_000 / 100,
            "spread too wide: {}",
            max - min
        );
    }

    #[test]
    fn large_population_spreads_uniformly() {
        let pace = PaceSteering::new(60_000, 1_000);
        let mut rng = seeded(2);
        let population = 1_000_000u64;
        let horizon = 60_000 * (population / 1_000);
        let n = 10_000;
        let suggestions: Vec<u64> = (0..n)
            .map(|_| pace.suggest_reconnect(0, population, 1.0, &mut rng))
            .collect();
        // Thundering-herd check: no 1% bucket of the horizon holds more
        // than 3% of suggestions.
        let mut buckets = vec![0usize; 100];
        for &s in &suggestions {
            let b = ((s as f64 / horizon as f64) * 100.0).min(99.0) as usize;
            buckets[b] += 1;
        }
        let max_bucket = *buckets.iter().max().unwrap();
        assert!(
            max_bucket < n * 3 / 100,
            "thundering herd: {max_bucket} of {n} in one bucket"
        );
    }

    #[test]
    fn large_population_rate_matches_target() {
        // With horizon H = periods_needed * period, the expected number of
        // devices landing in any one period is ≈ target.
        let pace = PaceSteering::new(60_000, 500);
        let mut rng = seeded(3);
        let population = 100_000u64;
        let mut in_first_period = 0u64;
        for _ in 0..population {
            let s = pace.suggest_reconnect(0, population, 1.0, &mut rng);
            if s < 60_000 {
                in_first_period += 1;
            }
        }
        let expected = 500.0;
        assert!(
            (in_first_period as f64 - expected).abs() < expected * 0.25,
            "got {in_first_period}, expected ≈{expected}"
        );
    }

    #[test]
    fn peak_hours_stretch_the_horizon() {
        let pace = PaceSteering::new(60_000, 100);
        let mut rng = seeded(4);
        let offpeak: Vec<u64> = (0..2000)
            .map(|_| pace.suggest_reconnect(0, 50_000, 0.5, &mut rng))
            .collect();
        let peak: Vec<u64> = (0..2000)
            .map(|_| pace.suggest_reconnect(0, 50_000, 2.0, &mut rng))
            .collect();
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        // At peak, devices are told to come back later on average.
        assert!(mean(&peak) > mean(&offpeak) * 2.0);
    }

    #[test]
    fn suggestions_are_always_in_the_future() {
        let pace = PaceSteering::new(1_000, 10);
        let mut rng = seeded(5);
        for pop in [10u64, 1_000, 10_000, 10_000_000] {
            for now in [0u64, 999, 123_456_789] {
                let s = pace.suggest_reconnect(now, pop, 1.0, &mut rng);
                assert!(s > now, "pop {pop} now {now} suggested {s}");
            }
        }
    }

    #[test]
    fn expected_rate_regimes() {
        let pace = PaceSteering::new(60_000, 300);
        assert_eq!(pace.expected_checkins_per_period(500), 500.0);
        assert_eq!(pace.expected_checkins_per_period(1_000_000), 300.0);
    }

    #[test]
    #[should_panic(expected = "activity factor")]
    fn rejects_bad_activity_factor() {
        let pace = PaceSteering::new(1000, 10);
        let mut rng = seeded(6);
        let _ = pace.suggest_reconnect(0, 10, 0.0, &mut rng);
    }
}
