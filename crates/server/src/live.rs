//! Live mode: the protocol state machines wired onto the `fl-actors`
//! runtime (Fig. 3's actor topology on real threads).
//!
//! Topology: device clients talk to a [`SelectorActor`] (accept/reject +
//! pace steering + optional admission control and shared global budget);
//! accepted devices are forwarded to the [`CoordinatorActor`], which owns
//! the [`crate::coordinator::Coordinator`] state machine and drives
//! rounds. Each training round detaches its aggregation pipeline into an
//! ephemeral [`MasterAggregatorActor`] child ("scale[s] with rounds",
//! Sec. 4.1), which shards reporting devices across `AggregatorActor`
//! children of its own and dies with the round. The Coordinator registers
//! itself in the shared [`fl_actors::LockingService`]; if it dies, the
//! Selector layer detects the obituary and respawns it exactly once.
//!
//! Construction of the tree — Selector specs, the shared
//! [`crate::shedding::GlobalAdmissionBudget`], telemetry — lives in
//! [`crate::topology`], shared with the `fl-sim` chaos and overload
//! harnesses.
//!
//! This module is deliberately thin: all protocol decisions live in the
//! deterministic state machines; actors only move messages and time.

use crate::aggregator::{MasterAggregatorActor, MasterMsg};
use crate::coordinator::{ActiveRound, Coordinator, CoordinatorConfig};
use crate::round::{CheckinResponse, ReportResponse};
use crate::selector::{CheckinDecision, Selector};
use crate::storage::{CheckpointStore, InMemoryCheckpointStore};
use fl_actors::{Actor, ActorRef, ActorSystem, Context, Flow, Lease, LockingService};
use fl_analytics::overload::OverloadMetrics;
use fl_core::plan::FlPlan;
use fl_core::population::{TaskGroup, TaskKind};
use fl_core::{CoreError, DeviceId, PopulationName, RoundId, RoundOutcome};
use std::collections::BTreeMap;
use fl_wire::{ChannelTransport, Transport, WireError, WireMessage, WireSink, WireStats};
use crossbeam::channel::{unbounded, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Overload telemetry shared between the live Selector actors and
/// whatever reads it (dashboards, tests): accepts, sheds, evictions, and
/// retries recorded straight from the `Checkin` path.
pub type SharedOverloadMetrics = Arc<fl_race::Mutex<OverloadMetrics>>;

/// Telemetry is recorded after each admission decision completes, with
/// no other site held — a leaf lock (rank table in DESIGN.md §7).
pub(crate) const OVERLOAD_METRICS: fl_race::Site =
    fl_race::Site::new("server/live.overload_metrics", 60);

/// Messages understood by the [`CoordinatorActor`].
///
/// Device-facing replies are no longer an ad-hoc enum: the server
/// answers through the connection's [`WireSink`] with framed
/// [`WireMessage`]s ([`WireMessage::PlanAndCheckpoint`],
/// [`WireMessage::ReportAck`], [`WireMessage::ComeBackLater`]) — the
/// single protocol surface defined by `fl-wire`.
#[derive(Debug)]
pub enum CoordMsg {
    /// A selector forwards an accepted device together with its
    /// connection, already stripped of the check-in frame.
    DeviceForwarded {
        /// The device.
        device: DeviceId,
        /// The device's connection, for configuration/ack replies.
        conn: WireSink,
    },
    /// A framed [`WireMessage::UpdateReport`] (clear bytes) or
    /// [`WireMessage::SecAggReport`] (fixed-point masked contribution)
    /// arrived on a device connection.
    Report {
        /// The encoded frame.
        frame: Vec<u8>,
        /// The device's connection, for the [`WireMessage::ReportAck`].
        conn: WireSink,
    },
    /// A selected device's connection died mid-round at the given SecAgg
    /// protocol stage (Sec. 6). In production the Selector's connection
    /// watchdog reports this; tests script it. The round records the
    /// dropout stage so finalize can exclude (advertise) or
    /// mask-reconstruct (share) the device per shard.
    DeviceDropped {
        /// The vanished device.
        device: DeviceId,
        /// How far through the SecAgg protocol it got.
        stage: crate::aggregator::DropStage,
    },
    /// Periodic clock tick.
    Tick,
    /// Census update: how many devices the population is believed to
    /// have. Sizes the pace-steering horizon for `NotSelecting` rejects.
    SetPopulationEstimate(u64),
    /// Finish the current round if it is done; reply with the outcome.
    TryCompleteRound {
        /// Outcome reply channel (None = round still running).
        reply: Sender<Option<RoundOutcome>>,
    },
    /// Stop the actor.
    Shutdown,
}

/// The Coordinator as an actor: wraps the deterministic state machine,
/// stamping messages with elapsed wall time. Generic over the checkpoint
/// store so a respawned incarnation can reattach to the storage layer
/// that survived its predecessor (see
/// [`crate::storage::SharedCheckpointStore`]).
pub struct CoordinatorActor<S: CheckpointStore + Send + 'static = InMemoryCheckpointStore> {
    coordinator: Coordinator<S>,
    active: Option<ActiveRound>,
    /// The in-flight round's detached aggregation tree: a
    /// [`MasterAggregatorActor`] child (named `master-r<N>`) whose own
    /// `AggregatorActor` children hold the shard sums. `None` between
    /// rounds and for evaluation tasks.
    master: Option<ActorRef<MasterMsg>>,
    /// Shared overload telemetry; SecAgg per-shard aborts observed at
    /// finalize are recorded here alongside the Selector layer's
    /// accept/shed counters.
    telemetry: Option<SharedOverloadMetrics>,
    device_replies: std::collections::HashMap<DeviceId, WireSink>,
    /// At-most-once report ledger: the final ack decision for every
    /// `(device, round, attempt)` key seen this round. A retried upload
    /// whose key is already here (its first ack was lost on the wire)
    /// gets the *original* decision replayed and never reaches the
    /// round's accounting — so a report is summed at most once no
    /// matter how often the device re-sends it. Cleared at round
    /// completion.
    report_acks: std::collections::HashMap<(DeviceId, RoundId, u32), bool>,
    epoch: Instant,
    lease: Lease,
    locks: LockingService<String>,
    /// Pace steering for devices that arrive while no round is selecting:
    /// a `NotSelecting` reject must carry a real reconnect suggestion
    /// (aimed at the next selection-period tick), not a magic constant
    /// that defeats Sec. 2.3's flow control.
    pace: crate::pace::PaceSteering,
    pace_rng: rand::rngs::StdRng,
    population_estimate: u64,
}

impl<S: CheckpointStore + Send + 'static> std::fmt::Debug for CoordinatorActor<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordinatorActor")
            .field("coordinator", &self.coordinator)
            .field("lease", &self.lease)
            .finish_non_exhaustive()
    }
}

/// The locking-service name under which a population's coordinator
/// registers (Sec. 4.2).
pub fn coordinator_lease_name(population: &PopulationName) -> String {
    format!("coordinator/{population}")
}

impl CoordinatorActor<InMemoryCheckpointStore> {
    /// Creates the actor, deploying the task group, and registers it in
    /// the locking service.
    ///
    /// # Panics
    ///
    /// Panics if the population is already registered (exactly-once
    /// ownership violated) or the initial checkpoint write fails.
    pub fn new(
        config: CoordinatorConfig,
        group: TaskGroup,
        plans: Vec<FlPlan>,
        initial_params: Vec<f32>,
        locks: LockingService<String>,
    ) -> Self {
        let lease_name = coordinator_lease_name(&config.population);
        let lease = locks
            .acquire(lease_name.clone(), lease_name)
            // fl-lint: allow(unwrap): documented `# Panics` contract —
            // double ownership of a population breaks the exactly-once
            // guarantee (Sec. 4.2) and must fail loudly at wiring time,
            // before any device traffic exists.
            .expect("population already owned by another coordinator");
        Self::with_store(
            config,
            group,
            plans,
            initial_params,
            locks,
            lease,
            InMemoryCheckpointStore::new(),
        )
    }
}

impl<S: CheckpointStore + Send + 'static> CoordinatorActor<S> {
    /// Creates the actor over an explicit store and an *already-acquired*
    /// lease — the respawn path: the watcher that won re-acquisition
    /// passes the new lease plus the storage handle that survived the
    /// previous incarnation, and `deploy`'s resume-awareness picks up the
    /// committed model.
    ///
    /// # Panics
    ///
    /// Panics if the initial checkpoint write fails at wiring time.
    pub fn with_store(
        config: CoordinatorConfig,
        group: TaskGroup,
        plans: Vec<FlPlan>,
        initial_params: Vec<f32>,
        locks: LockingService<String>,
        lease: Lease,
        store: S,
    ) -> Self {
        // NotSelecting rejects rendezvous on the selection-period tick:
        // rejected devices should return together just as the next round
        // opens (small-population concentration, Sec. 2.3).
        let round = group.tasks().first().map(|t| t.round).unwrap_or_default();
        let pace = crate::pace::PaceSteering::new(
            round.selection_timeout_ms.max(1),
            (round.selection_target() as u64).max(1),
        );
        let pace_rng = fl_ml::rng::seeded(config.seed ^ 0x9ACE);
        let mut coordinator = Coordinator::new(config, store);
        coordinator
            .deploy(group, plans, initial_params)
            // fl-lint: allow(unwrap): documented `# Panics` contract — a
            // storage failure during wiring (before any device traffic)
            // leaves nothing to recover; fail loudly.
            .expect("initial deployment failed");
        CoordinatorActor {
            coordinator,
            active: None,
            master: None,
            telemetry: None,
            device_replies: std::collections::HashMap::new(),
            report_acks: std::collections::HashMap::new(),
            // fl-lint: allow(wall-clock): the live topology stamps protocol
            // events with real elapsed time; the deterministic state
            // machines only ever see the derived `now_ms` offsets.
            epoch: Instant::now(),
            lease,
            locks,
            pace,
            pace_rng,
            population_estimate: 0,
        }
    }

    /// The fenced lease this incarnation holds.
    pub fn lease(&self) -> &Lease {
        &self.lease
    }

    /// The population this coordinator owns (Sec. 4.2: one Coordinator
    /// per population). Every device-facing reply it frames carries this
    /// name, and reports claiming any other population are refused.
    pub fn population(&self) -> PopulationName {
        self.coordinator.population().clone()
    }

    /// Attaches shared overload telemetry: SecAgg shard aborts observed
    /// when a round finalizes are recorded next to the Selector layer's
    /// accept/shed/evict counters.
    pub fn with_telemetry(mut self, telemetry: SharedOverloadMetrics) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// The at-most-once gate every decoded report passes through: a key
    /// already in the ledger replays its original ack (the duplicate is
    /// telemetry, never accounting input); a fresh key runs `evaluate`
    /// once and pins the outcome for any retry that follows.
    fn admit_report(
        &mut self,
        now: u64,
        key: (DeviceId, RoundId, u32),
        evaluate: impl FnOnce(&mut Self) -> bool,
    ) -> WireMessage {
        let (_, round, attempt) = key;
        let population = self.population();
        if let Some(&prior) = self.report_acks.get(&key) {
            if let Some(telemetry) = &self.telemetry {
                telemetry.lock().record_duplicate_report(now);
            }
            return WireMessage::ReportAck {
                accepted: prior,
                round,
                attempt,
                population,
            };
        }
        let accepted = evaluate(self);
        if !accepted {
            if let Some(telemetry) = &self.telemetry {
                telemetry.lock().record_rejected_report(now);
            }
        }
        self.report_acks.insert(key, accepted);
        WireMessage::ReportAck {
            accepted,
            round,
            attempt,
            population,
        }
    }

    /// Multi-tenancy boundary check: a report claiming a population this
    /// coordinator does not own is refused with a rejecting ack echoing
    /// the *claimed* population (so the device's per-population retry
    /// discipline sees the refusal), and never reaches the at-most-once
    /// ledger or the round's accounting. Cross-tenant contributions must
    /// not leak between models even if a gateway misroutes a frame.
    fn refuse_foreign_report(
        &mut self,
        now: u64,
        round: RoundId,
        attempt: u32,
        claimed: PopulationName,
    ) -> WireMessage {
        if let Some(telemetry) = &self.telemetry {
            telemetry.lock().record_rejected_report(now);
        }
        WireMessage::ReportAck {
            accepted: false,
            round,
            attempt,
            population: claimed,
        }
    }

    fn ensure_round(&mut self, ctx: &Context<CoordMsg>) {
        if self.active.is_none() {
            let now = self.now_ms();
            if let Ok(mut round) = self.coordinator.begin_round(now) {
                // Detach the training round's aggregation pipeline and
                // spawn it as the per-round Master Aggregator subtree
                // (Sec. 4.1: aggregation actors "scale with rounds" and
                // die with them). Evaluation rounds have no aggregate.
                if round.task.kind == TaskKind::Training {
                    if let Some(master) = round.detach_master() {
                        let tag = format!("master-r{}", round.state.round.0);
                        self.master =
                            Some(ctx.spawn_child(tag, MasterAggregatorActor::new(master)));
                    }
                }
                self.active = Some(round);
            }
        }
    }

    /// Closes the round's Master Aggregator subtree and collects its
    /// merged aggregate — a framed `ShardFinalize`/`ShardMerged`
    /// exchange (SecAgg rounds use `SecAggFinalize` with stage-tagged
    /// dropout lists) over the Selector↔Aggregator wire boundary. The
    /// reply stream carries one framed `ShardAbort` per SecAgg shard
    /// whose group fell below threshold before the final `ShardMerged`;
    /// the abort count is returned for telemetry. A master that died
    /// mid-round (its mailbox or reply channel is gone) surfaces as an
    /// error: the round is lost, nothing reaches storage, and the next
    /// round restarts from the committed checkpoint — Sec. 4.2's Master
    /// Aggregator loss semantics.
    fn finalize_external(
        master: &ActorRef<MasterMsg>,
        round: &ActiveRound,
    ) -> Result<(Vec<f32>, usize, usize), CoreError> {
        let dead =
            || CoreError::InvariantViolated("master aggregator died mid-round".into());
        let frame = if round.task.secagg_group_size.is_some() {
            fl_wire::encode(&WireMessage::SecAggFinalize {
                current_params: round.checkpoint.params().to_vec(),
                // One SecAggUpdate frame was streamed per accepted
                // report; the master holds its shards open until all of
                // them are staged, so a masked contribution overtaken
                // in delivery by this finalize cannot vanish from the
                // sum (or strand its group below threshold).
                expected_contributors: round.state.counters().0 as u64,
                advertise_dropouts: round.advertise_dropouts().to_vec(),
                share_dropouts: round.share_dropouts().to_vec(),
            })
        } else {
            fl_wire::encode(&WireMessage::ShardFinalize {
                current_params: round.checkpoint.params().to_vec(),
                dropouts: round.share_dropouts().to_vec(),
            })
        }
        // The only encode failure is an over-long string, which these
        // frames cannot carry; an empty frame still fails the round
        // cleanly at the master.
        .unwrap_or_default();
        let (tx, rx) = unbounded();
        master
            .send(MasterMsg::Finalize { frame, reply: tx })
            .map_err(|_| dead())?;
        let mut shard_aborts = 0usize;
        loop {
            match rx.recv() {
                Ok(frame) => match fl_wire::decode(&frame) {
                    // One abort announcement per below-threshold shard
                    // precedes the merged result.
                    Ok(WireMessage::ShardAbort) => shard_aborts += 1,
                    Ok(WireMessage::ShardMerged { merged }) => {
                        return merged
                            .map(|(params, n)| (params, n as usize, shard_aborts))
                            .map_err(CoreError::MalformedCheckpoint);
                    }
                    _ => {
                        return Err(CoreError::InvariantViolated(
                            "master aggregator replied with a non-ShardMerged frame".into(),
                        ));
                    }
                },
                Err(_) => return Err(dead()),
            }
        }
    }

    /// Send the Configuration download — one framed
    /// [`WireMessage::PlanAndCheckpoint`] per participant — once the
    /// round enters Reporting.
    fn push_configuration(&mut self) {
        let Some(round) = &self.active else { return };
        if round.state.phase() != crate::round::Phase::Reporting {
            return;
        }
        let plan = round.plan.clone();
        let checkpoint = round.checkpoint.clone();
        let population = self.population();
        for d in round.state.participants() {
            if let Some(conn) = self.device_replies.get(&d) {
                let _ = conn.send(&WireMessage::PlanAndCheckpoint {
                    plan: Box::new(plan.clone()),
                    checkpoint: Box::new(checkpoint.clone()),
                    population: population.clone(),
                });
            }
        }
    }
}

impl<S: CheckpointStore + Send + 'static> Actor for CoordinatorActor<S> {
    type Msg = CoordMsg;

    fn handle(&mut self, msg: CoordMsg, ctx: &mut Context<CoordMsg>) -> Flow {
        match msg {
            CoordMsg::DeviceForwarded { device, conn } => {
                self.ensure_round(ctx);
                let now = self.now_ms();
                if let Some(round) = &mut self.active {
                    let was_selecting =
                        round.state.phase() == crate::round::Phase::Selection;
                    match round.on_checkin(device, now) {
                        CheckinResponse::Selected => {
                            self.device_replies.insert(device, conn);
                            if was_selecting {
                                self.push_configuration();
                            }
                        }
                        CheckinResponse::AlreadySelected => {
                            // A retrying participant keeps its slot; route
                            // replies to its fresh connection and re-send
                            // the configuration if the round already has
                            // one.
                            self.device_replies.insert(device, conn);
                            if round.state.phase() == crate::round::Phase::Reporting {
                                let plan = round.plan.clone();
                                let checkpoint = round.checkpoint.clone();
                                let population = self.coordinator.population().clone();
                                if let Some(c) = self.device_replies.get(&device) {
                                    let _ = c.send(&WireMessage::PlanAndCheckpoint {
                                        plan: Box::new(plan),
                                        checkpoint: Box::new(checkpoint),
                                        population,
                                    });
                                }
                            }
                        }
                        CheckinResponse::NotSelecting => {
                            // Pace-steered rejection: suggest the next
                            // selection-period rendezvous (or a spread
                            // window for large populations) instead of a
                            // fixed 1-second hammer interval.
                            let retry_at_ms = self.pace.suggest_reconnect(
                                now,
                                self.population_estimate,
                                1.0,
                                &mut self.pace_rng,
                            );
                            let _ = conn.send(&WireMessage::ComeBackLater {
                                retry_at_ms,
                                population: self.coordinator.population().clone(),
                            });
                        }
                    }
                }
                Flow::Continue
            }
            CoordMsg::Report { frame, conn } => {
                // Decode at the wire boundary; a frame that is neither an
                // `UpdateReport` nor a `SecAggReport` (stream desync,
                // protocol drift, byte rot) is answered with a rejecting
                // ack rather than a panic, and counted as corrupt. Valid
                // reports pass through the at-most-once ledger before any
                // accounting.
                let now = self.now_ms();
                let own_population = self.population();
                let ack = match fl_wire::decode(&frame) {
                    Ok(WireMessage::UpdateReport {
                        round,
                        attempt,
                        population,
                        ..
                    }) if population != own_population => {
                        self.refuse_foreign_report(now, round, attempt, population)
                    }
                    Ok(WireMessage::SecAggReport {
                        round,
                        attempt,
                        population,
                        ..
                    }) if population != own_population => {
                        self.refuse_foreign_report(now, round, attempt, population)
                    }
                    Ok(WireMessage::UpdateReport {
                        device,
                        round,
                        attempt,
                        update_bytes,
                        weight,
                        loss,
                        accuracy,
                        ..
                    }) => self.admit_report(now, (device, round, attempt), |actor| {
                        if let Some(active) = &mut actor.active {
                            // The round does the protocol accounting
                            // (participant check, lateness, goal count,
                            // session logs); accepted bytes stream on to
                            // the round's Aggregator shard via the Master
                            // Aggregator subtree as a framed `ShardUpdate`.
                            match active.on_report(
                                device,
                                now,
                                &update_bytes,
                                weight,
                                loss,
                                accuracy,
                            ) {
                                Ok(ReportResponse::Accepted) => {
                                    if let Some(master) = &actor.master {
                                        let _ = master.send(MasterMsg::Update {
                                            frame: fl_wire::encode(&WireMessage::ShardUpdate {
                                                device,
                                                update_bytes,
                                                weight,
                                            })
                                            .unwrap_or_default(),
                                        });
                                    }
                                    true
                                }
                                _ => false,
                            }
                        } else {
                            false
                        }
                    }),
                    Ok(WireMessage::SecAggReport {
                        device,
                        round,
                        attempt,
                        field_vector,
                        weight,
                        loss,
                        accuracy,
                        ..
                    }) => self.admit_report(now, (device, round, attempt), |actor| {
                        if let Some(active) = &mut actor.active {
                            // Masked contributions take the same accounting
                            // path but stay in the field: the shard sums
                            // them without ever seeing a cleartext update.
                            match active.on_secagg_report(
                                device,
                                now,
                                &field_vector,
                                weight,
                                loss,
                                accuracy,
                            ) {
                                Ok(ReportResponse::Accepted) => {
                                    if let Some(master) = &actor.master {
                                        let _ = master.send(MasterMsg::Update {
                                            frame: fl_wire::encode(&WireMessage::SecAggUpdate {
                                                device,
                                                field_vector,
                                                weight,
                                            })
                                            .unwrap_or_default(),
                                        });
                                    }
                                    true
                                }
                                _ => false,
                            }
                        } else {
                            false
                        }
                    }),
                    _ => {
                        // No key to echo: the device's retry discipline
                        // treats the rejecting ack as a refusal and backs
                        // off.
                        if let Some(telemetry) = &self.telemetry {
                            telemetry.lock().record_corrupt_frame(now);
                        }
                        WireMessage::ReportAck {
                            accepted: false,
                            round: RoundId(0),
                            attempt: 0,
                            population: own_population,
                        }
                    }
                };
                let _ = conn.send(&ack);
                Flow::Continue
            }
            CoordMsg::DeviceDropped { device, stage } => {
                let now = self.now_ms();
                if let Some(round) = &mut self.active {
                    round.on_dropout_staged(device, now, stage);
                }
                Flow::Continue
            }
            CoordMsg::SetPopulationEstimate(estimate) => {
                self.population_estimate = estimate;
                Flow::Continue
            }
            CoordMsg::Tick => {
                let now = self.now_ms();
                let newly_configured = if let Some(round) = &mut self.active {
                    let before = round.state.phase();
                    round.on_tick(now);
                    before == crate::round::Phase::Selection
                        && round.state.phase() == crate::round::Phase::Reporting
                } else {
                    false
                };
                if newly_configured {
                    self.push_configuration();
                }
                Flow::Continue
            }
            CoordMsg::TryCompleteRound { reply } => {
                let finished = self
                    .active
                    .as_ref()
                    .is_some_and(|r| r.state.outcome().is_some());
                if let Some(mut round) = if finished { self.active.take() } else { None } {
                    // The round's report keys die with it; a straggler
                    // retry from a completed round re-evaluates against
                    // no active round and is refused.
                    self.report_acks.clear();
                    round.record_participation_metrics();
                    let master = self.master.take();
                    let committed = round.state.outcome().is_some_and(|o| o.is_committed());
                    let aggregate = if committed && round.task.kind == TaskKind::Training {
                        let merged = match &master {
                            Some(master) => Self::finalize_external(master, &round),
                            // Unreachable by construction (`ensure_round`
                            // always detaches for training), but a missing
                            // subtree must fail the round, not panic.
                            None => Err(CoreError::InvariantViolated(
                                "committed training round has no aggregator subtree".into(),
                            )),
                        };
                        Some(merged.map(|(params, contributors, shard_aborts)| {
                            // Per-shard SecAgg aborts are telemetry, not
                            // round failures: the commit proceeds from the
                            // surviving shards and the aborts are counted.
                            if shard_aborts > 0 {
                                if let Some(telemetry) = &self.telemetry {
                                    let now = self.now_ms();
                                    let mut metrics = telemetry.lock();
                                    for _ in 0..shard_aborts {
                                        metrics.record_secagg_abort(now);
                                    }
                                }
                            }
                            (params, contributors)
                        }))
                    } else {
                        // Nothing to merge: tell the subtree (if any) to
                        // tear itself down with the abandoned round.
                        if let Some(master) = &master {
                            let _ = master.send(MasterMsg::Abort);
                        }
                        None
                    };
                    let outcome = self.coordinator.complete_round_external(round, aggregate).ok();
                    let _ = reply.send(outcome);
                } else {
                    let _ = reply.send(None);
                }
                Flow::Continue
            }
            CoordMsg::Shutdown => {
                // Dropping the handle reaps the subtree anyway; an explicit
                // Abort just makes the teardown prompt.
                if let Some(master) = self.master.take() {
                    let _ = master.send(MasterMsg::Abort);
                }
                Flow::Stop
            }
        }
    }

    fn on_stop(&mut self) {
        // Release population ownership so a successor can acquire it.
        // Fenced: a zombie incarnation stopping late cannot evict a
        // successor that re-acquired the name at a higher epoch.
        self.locks.release(&self.lease);
    }
}

/// Messages understood by the [`SelectorActor`].
#[derive(Debug)]
pub enum SelectorMsg {
    /// A framed [`WireMessage::CheckinRequest`] arrived on a device
    /// connection. The gateway that owns the socket routes the raw frame
    /// here by [`fl_wire::peek_tag`]; the selector decodes it and answers
    /// through `conn` with [`WireMessage::Shed`] /
    /// [`WireMessage::ComeBackLater`], or forwards the accepted device to
    /// the Coordinator.
    Checkin {
        /// The encoded check-in frame.
        frame: Vec<u8>,
        /// The device's connection, for replies.
        conn: WireSink,
    },
    /// Coordinator quota instruction.
    SetQuota(usize),
    /// Coordinator census update: seeds the selector's closed-loop pace
    /// controller with a fresh population estimate.
    SetPopulationEstimate(u64),
    /// Retarget this selector at a (respawned) coordinator. Sec. 4.4:
    /// after the Selector layer respawns a dead Coordinator, traffic must
    /// flow to the replacement, not the corpse — and the selector must be
    /// re-briefed, not left with pacing state from the dead incarnation:
    /// the replacement's first quota/census instructions ride along
    /// instead of waiting for the next periodic update.
    Rewire {
        /// The replacement coordinator.
        coordinator: ActorRef<CoordMsg>,
        /// The replacement's current held-connection quota.
        quota: usize,
        /// The replacement's current population-size estimate.
        population_estimate: u64,
    },
    /// Stop the actor.
    Shutdown,
}

/// A Selector as an actor: applies admission control, quota, and pace
/// steering, forwards accepted devices to the owning population's
/// Coordinator, and streams accept/shed/evict telemetry into shared
/// [`OverloadMetrics`].
///
/// Multi-tenancy (Sec. 2.1): check-ins are demultiplexed by the
/// [`PopulationName`] carried in every v3 `CheckinRequest`. A population
/// with a registered route ([`SelectorActor::with_route`]) forwards to
/// its own Coordinator; everything else falls back to the default
/// Coordinator passed at construction, which keeps the single-population
/// topology byte-identical as the n=1 special case.
pub struct SelectorActor {
    selector: Selector,
    coordinator: ActorRef<CoordMsg>,
    /// Per-population Coordinator routes for the multi-tenant tree.
    routes: BTreeMap<PopulationName, ActorRef<CoordMsg>>,
    telemetry: Option<SharedOverloadMetrics>,
    epoch: Instant,
}

impl std::fmt::Debug for SelectorActor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectorActor")
            .field("selector", &self.selector)
            .finish_non_exhaustive()
    }
}

impl SelectorActor {
    /// Creates the actor with a default Coordinator route.
    pub fn new(selector: Selector, coordinator: ActorRef<CoordMsg>) -> Self {
        SelectorActor {
            selector,
            coordinator,
            routes: BTreeMap::new(),
            telemetry: None,
            // fl-lint: allow(wall-clock): live-mode event timestamps only.
            epoch: Instant::now(),
        }
    }

    /// Attaches shared overload telemetry: every check-in decision is
    /// recorded into the metrics from inside the `Checkin` path.
    pub fn with_telemetry(mut self, telemetry: SharedOverloadMetrics) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Registers a per-population Coordinator route: accepted devices of
    /// `population` are forwarded there instead of the default
    /// Coordinator, with the population held against `quota` slots of
    /// this selector.
    pub fn with_route(
        mut self,
        population: PopulationName,
        coordinator: ActorRef<CoordMsg>,
        quota: usize,
    ) -> Self {
        self.selector.set_population_quota(population.clone(), quota);
        self.routes.insert(population, coordinator);
        self
    }
}

impl Actor for SelectorActor {
    type Msg = SelectorMsg;

    fn handle(&mut self, msg: SelectorMsg, _ctx: &mut Context<SelectorMsg>) -> Flow {
        match msg {
            SelectorMsg::Checkin { frame, conn } => {
                // A frame that is not a well-formed `CheckinRequest`
                // (garbage, version skew, stream desync) is dropped
                // silently: the peer is not speaking the protocol, so no
                // protocol-level reply applies.
                let Ok(WireMessage::CheckinRequest { device, population }) =
                    fl_wire::decode(&frame)
                else {
                    return Flow::Continue;
                };
                let now = self.epoch.elapsed().as_millis() as u64;
                let shed_before = self.selector.shed_total();
                let evicted_before = self.selector.evicted_total();
                let decision = self.selector.on_checkin_for(&population, device, now, 1.0);
                let shed = self.selector.shed_total() > shed_before;
                if let Some(telemetry) = &self.telemetry {
                    let mut metrics = telemetry.lock();
                    for _ in evicted_before..self.selector.evicted_total() {
                        metrics.record_evict(now);
                    }
                    match decision {
                        CheckinDecision::Accept => metrics.record_accept_for(&population, now),
                        CheckinDecision::Reject { .. } => {
                            if shed {
                                metrics.record_shed_for(&population, now);
                            }
                            // Every rejection sends the device into its
                            // retry discipline.
                            metrics.record_retry_for(&population, now);
                        }
                    }
                }
                match decision {
                    CheckinDecision::Accept => {
                        // Forward to the owning population's Coordinator
                        // (default route when none is registered); the
                        // selector releases the device from its own set.
                        self.selector.on_disconnect(device);
                        let route = self.routes.get(&population).unwrap_or(&self.coordinator);
                        let _ = route.send(CoordMsg::DeviceForwarded { device, conn });
                    }
                    CheckinDecision::Reject { retry_at_ms } => {
                        // Admission-control sheds and ordinary pacing
                        // rejects are distinct wire messages: a `Shed`
                        // tells the device the server is over capacity
                        // (Sec. 5's load shedding), a `ComeBackLater` is
                        // routine pace steering. Both echo the population
                        // so the device's per-population retry budget
                        // absorbs the backoff.
                        let msg = if shed {
                            WireMessage::Shed {
                                retry_at_ms,
                                population,
                            }
                        } else {
                            WireMessage::ComeBackLater {
                                retry_at_ms,
                                population,
                            }
                        };
                        let _ = conn.send(&msg);
                    }
                }
                Flow::Continue
            }
            SelectorMsg::SetQuota(q) => {
                self.selector.set_quota(q);
                Flow::Continue
            }
            SelectorMsg::SetPopulationEstimate(estimate) => {
                self.selector.set_population_estimate(estimate);
                Flow::Continue
            }
            SelectorMsg::Rewire {
                coordinator,
                quota,
                population_estimate,
            } => {
                self.coordinator = coordinator;
                self.selector.set_quota(quota);
                self.selector.set_population_estimate(population_estimate);
                Flow::Continue
            }
            SelectorMsg::Shutdown => Flow::Stop,
        }
    }
}

/// An in-memory device connection to the live topology: the client half
/// of a [`ChannelTransport`] pair plus the gateway half whose inbound
/// frames the caller pumps into the Selector/Coordinator mailboxes.
///
/// This is the same shape as the TCP front door in
/// `examples/live_server.rs` — one connection, framed [`WireMessage`]s
/// in both directions, inbound frames routed to an actor by
/// [`fl_wire::peek_tag`] — with the per-connection gateway thread
/// collapsed into the device's own thread (the pump runs opportunistically
/// inside [`DeviceConn::recv`]).
pub struct DeviceConn {
    device: DeviceId,
    /// Population this connection checks in under and stamps on every
    /// report (v3 multi-tenant wire contract).
    population: PopulationName,
    client: ChannelTransport,
    gateway: ChannelTransport,
    selector: ActorRef<SelectorMsg>,
    coordinator: ActorRef<CoordMsg>,
}

impl std::fmt::Debug for DeviceConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceConn")
            .field("device", &self.device)
            .finish_non_exhaustive()
    }
}

impl DeviceConn {
    /// Opens an in-memory connection from `device` to the given selector,
    /// with update reports routed to `coordinator`. The connection checks
    /// in under `population` and stamps it on every report.
    pub fn connect(
        device: DeviceId,
        population: impl Into<PopulationName>,
        selector: ActorRef<SelectorMsg>,
        coordinator: ActorRef<CoordMsg>,
    ) -> Self {
        let (client, gateway) = ChannelTransport::pair();
        DeviceConn {
            device,
            population: population.into(),
            client,
            gateway,
            selector,
            coordinator,
        }
    }

    /// Routes every frame the device has sent so far into the right
    /// server mailbox — the gateway role a per-connection thread plays in
    /// the TCP front door.
    fn pump(&self) -> Result<(), WireError> {
        while let Some(frame) = self.gateway.try_recv_frame()? {
            let target_ok = match fl_wire::peek_tag(&frame) {
                Ok(fl_wire::tag::UPDATE_REPORT | fl_wire::tag::SECAGG_REPORT) => self
                    .coordinator
                    .send(CoordMsg::Report {
                        frame,
                        conn: self.gateway.sink(),
                    })
                    .is_ok(),
                // Everything else goes to the selector, which drops
                // non-check-in frames silently — same policy as the TCP
                // gateway, so garbage cannot crash the connection.
                Ok(_) => self
                    .selector
                    .send(SelectorMsg::Checkin {
                        frame,
                        conn: self.gateway.sink(),
                    })
                    .is_ok(),
                Err(_) => true, // unframeable junk: drop it
            };
            if !target_ok {
                return Err(WireError::Closed);
            }
        }
        Ok(())
    }

    /// Sends a [`WireMessage::CheckinRequest`] for this device under its
    /// population.
    pub fn check_in(&self) -> Result<(), WireError> {
        self.client.send(&WireMessage::CheckinRequest {
            device: self.device,
            population: self.population.clone(),
        })?;
        self.pump()
    }

    /// Sends a [`WireMessage::UpdateReport`] with the given payload
    /// under the `(round, attempt)` at-most-once key — a retry of the
    /// same upload must pass the same key to get the original ack
    /// replayed instead of a second evaluation.
    pub fn report(
        &self,
        round: RoundId,
        attempt: u32,
        update_bytes: Vec<u8>,
        weight: u64,
        loss: f64,
        accuracy: f64,
    ) -> Result<(), WireError> {
        self.client.send(&WireMessage::UpdateReport {
            device: self.device,
            round,
            attempt,
            update_bytes,
            weight,
            loss,
            accuracy,
            population: self.population.clone(),
        })?;
        self.pump()
    }

    /// Sends a [`WireMessage::SecAggReport`] carrying this device's
    /// masked field-element vector — the SecAgg analogue of [`Self::report`],
    /// paying the 8-bytes-per-coordinate wire premium.
    pub fn report_secagg(
        &self,
        round: RoundId,
        attempt: u32,
        field_vector: Vec<u64>,
        weight: u64,
        loss: f64,
        accuracy: f64,
    ) -> Result<(), WireError> {
        self.client.send(&WireMessage::SecAggReport {
            device: self.device,
            round,
            attempt,
            field_vector,
            weight,
            loss,
            accuracy,
            population: self.population.clone(),
        })?;
        self.pump()
    }

    /// Receives the next server reply, pumping any not-yet-routed
    /// outbound frames first.
    pub fn recv(&self, timeout: Duration) -> Result<WireMessage, WireError> {
        self.pump()?;
        self.client.recv_timeout(timeout)
    }

    /// Bytes-on-wire counters for the device end of this connection.
    pub fn stats(&self) -> WireStats {
        self.client.stats()
    }
}

/// Outcome of one [`watch_and_respawn`] watcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RespawnReport {
    /// Obituaries of the watched coordinator observed, in order.
    pub deaths: Vec<fl_actors::Obituary>,
    /// Respawns performed by *this* watcher. Across all concurrent
    /// watchers the locking service guarantees at most one respawn per
    /// death (Sec. 4.4: "this will happen exactly once").
    pub respawns: usize,
}

/// Watches a population's coordinator actor and respawns it on panic —
/// exactly once per death even with many concurrent watchers.
///
/// This is the Selector layer's recovery loop from Sec. 4.4: "the
/// Selector layer will detect this and respawn it. Because the
/// Coordinators are registered in a shared locking service, this will
/// happen exactly once." A panicked coordinator never runs `on_stop`, so
/// its lease is still held; each watcher evicts it *with the fencing
/// epoch of the incarnation it saw die* (a stale watcher cannot evict a
/// successor) and races to re-acquire. The winner builds the replacement
/// via `make_actor(lease)` — typically [`CoordinatorActor::with_store`]
/// over a [`crate::storage::SharedCheckpointStore`], so resume-aware
/// deployment picks up the committed model — spawns it under
/// `actor_name`, and announces it through `wire` (e.g. a
/// [`SelectorMsg::Rewire`] fan-out).
///
/// Returns when the coordinator dies without panicking (clean shutdown),
/// the deadline passes, or a respawn budget of `max_respawns` is spent.
pub fn watch_and_respawn<S, F, W>(
    system: &ActorSystem,
    locks: &LockingService<String>,
    actor_name: &str,
    lease_name: &str,
    mut known_epoch: u64,
    max_respawns: usize,
    mut make_actor: F,
    mut wire: W,
    deadline: Duration,
) -> RespawnReport
where
    S: CheckpointStore + Send + 'static,
    F: FnMut(Lease) -> CoordinatorActor<S>,
    W: FnMut(ActorRef<CoordMsg>),
{
    let deaths_rx = system.deaths();
    // fl-lint: allow(wall-clock): the live watcher bounds real elapsed
    // time; the sim exercises recovery via its virtual clock instead.
    let started = Instant::now();
    let mut report = RespawnReport {
        deaths: Vec::new(),
        respawns: 0,
    };
    loop {
        let remaining = deadline.saturating_sub(started.elapsed());
        if remaining.is_zero() {
            return report;
        }
        let obit = match deaths_rx.recv_timeout(remaining) {
            Ok(o) => o,
            Err(_) => return report,
        };
        if obit.name != actor_name {
            continue;
        }
        let panicked = matches!(obit.reason, fl_actors::DeathReason::Panicked(_));
        report.deaths.push(obit);
        if !panicked {
            // Clean shutdown released the lease itself; nothing to do.
            return report;
        }
        if report.respawns >= max_respawns {
            return report;
        }
        // The dead incarnation never ran `on_stop`: its lease is stale.
        // Atomic fenced takeover picks exactly one winner among
        // concurrent watchers — and, unlike an evict-then-acquire pair,
        // cannot grab the name after a *successor* released it cleanly
        // (a laggard watcher still digesting the original obituary must
        // not respawn a second coordinator).
        match locks.replace_stale(lease_name, known_epoch, lease_name.to_string()) {
            Some(lease) => {
                known_epoch = lease.epoch;
                report.respawns += 1;
                let replacement = system.spawn(actor_name.to_string(), make_actor(lease));
                wire(replacement);
            }
            None => {
                // Another watcher won the race; track the successor's
                // epoch so a later death of *that* incarnation can still
                // be evicted by us.
                if let Some(epoch) = locks.current_epoch(lease_name) {
                    known_epoch = epoch;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pace::PaceSteering;
    use crate::topology::{spawn_topology, SelectorSpec, TopologyBlueprint};
    use fl_actors::DeathReason;
    use fl_core::plan::{CodecSpec, ModelSpec};
    use fl_core::population::{FlTask, TaskSelectionStrategy};
    use fl_core::round::RoundConfig;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    fn spec() -> ModelSpec {
        ModelSpec::Logistic {
            dim: 4,
            classes: 2,
            seed: 0,
        }
    }

    fn quick_round(goal: usize) -> RoundConfig {
        RoundConfig {
            goal_count: goal,
            overselection: 1.0,
            min_goal_fraction: 1.0,
            selection_timeout_ms: 5_000,
            report_window_ms: 10_000,
            device_cap_ms: 10_000,
        }
    }

    #[test]
    fn live_round_commits_over_real_threads() {
        let system = ActorSystem::new();
        let locks = LockingService::new();
        let task = FlTask::training("t", "pop").with_round(quick_round(4));
        let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        let group = TaskGroup::new(vec![task], TaskSelectionStrategy::Single);
        let coordinator = CoordinatorActor::new(
            CoordinatorConfig::new("pop", 7),
            group,
            vec![plan],
            vec![0.0; spec().num_params()],
            locks.clone(),
        );
        let blueprint =
            TopologyBlueprint::new(vec![SelectorSpec::new(PaceSteering::new(1_000, 10), 100, 1, 10)]);
        let topology = spawn_topology(&system, coordinator, &blueprint);
        let (selector_refs, coord_ref) = (topology.selectors, topology.coordinator);
        assert!(locks.lookup("coordinator/pop").is_some());

        // Four device clients, each on its own thread, each speaking the
        // framed wire protocol over an in-memory transport.
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let sel = selector_refs[0].clone();
                let coord = coord_ref.clone();
                std::thread::spawn(move || {
                    let conn = DeviceConn::connect(DeviceId(i), "pop", sel, coord);
                    conn.check_in().unwrap();
                    // Wait to be configured.
                    loop {
                        match conn.recv(Duration::from_secs(5)).unwrap() {
                            WireMessage::PlanAndCheckpoint { plan, checkpoint, .. } => {
                                let dim = plan.server.expected_dim;
                                assert_eq!(checkpoint.len(), dim);
                                let round = checkpoint.round;
                                let update = vec![0.25f32; dim];
                                let bytes = CodecSpec::Identity.build().encode(&update);
                                conn.report(round, 1, bytes, 4, 0.5, 0.8).unwrap();
                            }
                            WireMessage::ReportAck { accepted, .. } => {
                                // The round trip moved real frames: the
                                // device's own counters saw both
                                // directions.
                                let stats = conn.stats();
                                assert!(stats.bytes_sent > 0);
                                assert!(stats.bytes_received > 0);
                                return accepted;
                            }
                            WireMessage::ComeBackLater { .. } | WireMessage::Shed { .. } => {
                                return false
                            }
                            other => panic!("unexpected server reply {other:?}"),
                        }
                    }
                })
            })
            .collect();

        let accepted = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count();
        assert_eq!(accepted, 4);

        // Poll for round completion, pacing the polls off the timer wheel
        // rather than blocking the test thread with a raw sleep.
        let wheel = fl_actors::timer::TimerWheel::new();
        let outcome = loop {
            let (tx, rx) = unbounded();
            coord_ref
                .send(CoordMsg::TryCompleteRound { reply: tx })
                .unwrap();
            if let Some(outcome) = rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                break outcome;
            }
            coord_ref.send(CoordMsg::Tick).unwrap();
            let (poll_tx, poll_rx) = unbounded::<()>();
            wheel.schedule(Duration::from_millis(20), move || {
                let _ = poll_tx.send(());
            });
            let _ = poll_rx.recv();
        };
        wheel.shutdown();
        assert!(outcome.is_committed());

        for s in &selector_refs {
            s.send(SelectorMsg::Shutdown).unwrap();
        }
        coord_ref.send(CoordMsg::Shutdown).unwrap();
        system.join();
        // Lease released on clean shutdown.
        assert!(locks.lookup("coordinator/pop").is_none());

        // The round aggregated through an ephemeral Master Aggregator
        // subtree spawned under the coordinator, and the whole subtree
        // died normally with the round.
        let obits: Vec<_> = system.deaths().try_iter().collect();
        for name in ["coordinator/master-r1", "coordinator/master-r1/agg-0"] {
            let obit = obits
                .iter()
                .find(|o| o.name == name)
                .unwrap_or_else(|| panic!("no obituary for {name}"));
            assert_eq!(obit.reason, DeathReason::Normal);
        }
    }

    /// Regression: a device arriving while the round is already in
    /// Reporting used to get a hardcoded `now + 1_000` retry — a 1 s
    /// hammer interval that defeats pace steering. The reject must now
    /// rendezvous on the next selection-period tick (≥ the selection
    /// timeout), so rejected devices return when a round can actually
    /// take them.
    #[test]
    fn not_selecting_reject_is_pace_steered() {
        let system = ActorSystem::new();
        let locks = LockingService::new();
        let task = FlTask::training("t", "pop3").with_round(quick_round(1));
        let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        let group = TaskGroup::new(vec![task], TaskSelectionStrategy::Single);
        let coordinator = CoordinatorActor::new(
            CoordinatorConfig::new("pop3", 7),
            group,
            vec![plan],
            vec![0.0; spec().num_params()],
            locks.clone(),
        );
        let blueprint =
            TopologyBlueprint::new(vec![SelectorSpec::new(PaceSteering::new(1_000, 10), 100, 1, 10)]);
        let topology = spawn_topology(&system, coordinator, &blueprint);
        let (selector_refs, coord_ref) = (topology.selectors, topology.coordinator);

        // First device fills the goal; the round enters Reporting.
        let first = DeviceConn::connect(DeviceId(0), "pop3", selector_refs[0].clone(), coord_ref.clone());
        first.check_in().unwrap();
        assert!(matches!(
            first.recv(Duration::from_secs(5)).unwrap(),
            WireMessage::PlanAndCheckpoint { .. }
        ));

        // Second device finds the round NotSelecting.
        let second = DeviceConn::connect(DeviceId(1), "pop3", selector_refs[0].clone(), coord_ref.clone());
        second.check_in().unwrap();
        match second.recv(Duration::from_secs(5)).unwrap() {
            WireMessage::ComeBackLater { retry_at_ms, .. } => {
                // quick_round(1).selection_timeout_ms == 5_000: the next
                // rendezvous tick lies at or beyond it, far beyond the old
                // `now + 1_000` constant (the test runs well inside 4 s).
                assert!(
                    retry_at_ms >= 5_000,
                    "retry {retry_at_ms} ms is not pace-steered"
                );
            }
            other => panic!("expected ComeBackLater, got {other:?}"),
        }

        for s in &selector_refs {
            s.send(SelectorMsg::Shutdown).unwrap();
        }
        coord_ref.send(CoordMsg::Shutdown).unwrap();
        system.join();
    }

    /// A malformed or mis-tagged frame on the check-in path must be
    /// dropped silently — not crash the selector, not earn a reply —
    /// and the connection must keep working for well-formed traffic.
    #[test]
    fn retried_report_is_acked_twice_but_summed_once() {
        // The at-most-once contract (satellite of the network-fault PR):
        // a device whose `ReportAck` was lost re-sends the *same*
        // `(round, attempt)` key; the coordinator answers both uploads
        // with the original accepting ack but incorporates exactly one
        // contribution.
        let system = ActorSystem::new();
        let locks = LockingService::new();
        let task = FlTask::training("t", "pop-dedup").with_round(quick_round(1));
        let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        let group = TaskGroup::new(vec![task], TaskSelectionStrategy::Single);
        let coordinator = CoordinatorActor::new(
            CoordinatorConfig::new("pop-dedup", 7),
            group,
            vec![plan],
            vec![0.0; spec().num_params()],
            locks.clone(),
        );
        let blueprint = TopologyBlueprint::new(vec![SelectorSpec::new(
            PaceSteering::new(1_000, 10),
            100,
            1,
            10,
        )])
        .with_telemetry(fl_analytics::overload::OverloadMonitorConfig::default());
        let topology = spawn_topology(&system, coordinator, &blueprint);

        let conn = DeviceConn::connect(
            DeviceId(0),
            "pop-dedup",
            topology.selectors[0].clone(),
            topology.coordinator.clone(),
        );
        conn.check_in().unwrap();
        let (round, dim) = loop {
            if let WireMessage::PlanAndCheckpoint { plan, checkpoint, .. } =
                conn.recv(Duration::from_secs(5)).unwrap()
            {
                break (checkpoint.round, plan.server.expected_dim);
            }
        };

        let update = vec![0.25f32; dim];
        let bytes = CodecSpec::Identity.build().encode(&update);
        // The upload, then its retry under the same attempt key — as a
        // device would after losing the first ack on the wire.
        conn.report(round, 1, bytes.clone(), 4, 0.5, 0.8).unwrap();
        conn.report(round, 1, bytes, 4, 0.5, 0.8).unwrap();

        let mut acks = Vec::new();
        while acks.len() < 2 {
            if let WireMessage::ReportAck {
                accepted,
                round: r,
                attempt,
                ..
            } = conn.recv(Duration::from_secs(5)).unwrap()
            {
                acks.push((accepted, r, attempt));
            }
        }
        assert_eq!(acks, vec![(true, round, 1), (true, round, 1)]);

        let wheel = fl_actors::timer::TimerWheel::new();
        let outcome = loop {
            let (tx, rx) = unbounded();
            topology
                .coordinator
                .send(CoordMsg::TryCompleteRound { reply: tx })
                .unwrap();
            if let Some(outcome) = rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                break outcome;
            }
            topology.coordinator.send(CoordMsg::Tick).unwrap();
            let (poll_tx, poll_rx) = unbounded::<()>();
            wheel.schedule(Duration::from_millis(20), move || {
                let _ = poll_tx.send(());
            });
            let _ = poll_rx.recv();
        };
        wheel.shutdown();
        match outcome {
            RoundOutcome::Committed { incorporated, .. } => assert_eq!(incorporated, 1),
            other => panic!("expected a committed round, got {other:?}"),
        }

        // The duplicate shows up as telemetry, not as accounting.
        let telemetry = topology.telemetry.clone().expect("telemetry configured");
        let dupes: f64 = telemetry.lock().dup_reports().sums().iter().sum();
        assert_eq!(dupes, 1.0);

        for s in &topology.selectors {
            s.send(SelectorMsg::Shutdown).unwrap();
        }
        topology.coordinator.send(CoordMsg::Shutdown).unwrap();
        system.join();
    }

    #[test]
    fn garbage_checkin_frame_is_dropped_silently() {
        let system = ActorSystem::new();
        let locks = LockingService::new();
        let task = FlTask::training("t", "pop4").with_round(quick_round(1));
        let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        let group = TaskGroup::new(vec![task], TaskSelectionStrategy::Single);
        let coordinator = CoordinatorActor::new(
            CoordinatorConfig::new("pop4", 7),
            group,
            vec![plan],
            vec![0.0; spec().num_params()],
            locks.clone(),
        );
        let blueprint =
            TopologyBlueprint::new(vec![SelectorSpec::new(PaceSteering::new(1_000, 10), 100, 1, 10)]);
        let topology = spawn_topology(&system, coordinator, &blueprint);
        let (selector_refs, coord_ref) = (topology.selectors, topology.coordinator);

        // Inject raw garbage and a valid frame of the wrong type straight
        // into the selector mailbox, as a hostile or desynced gateway
        // would.
        let (client, gateway) = fl_wire::ChannelTransport::pair();
        selector_refs[0]
            .send(SelectorMsg::Checkin {
                frame: vec![0xFF, 0x00, 0xAB],
                conn: gateway.sink(),
            })
            .unwrap();
        selector_refs[0]
            .send(SelectorMsg::Checkin {
                frame: fl_wire::encode(&WireMessage::ReportAck {
                    accepted: true,
                    round: RoundId(0),
                    attempt: 0,
                    population: PopulationName::new("pop4"),
                })
                .expect("test frame encodes"),
                conn: gateway.sink(),
            })
            .unwrap();
        // Neither earns a reply...
        assert_eq!(
            client.recv_timeout(Duration::from_millis(200)).unwrap_err(),
            WireError::Timeout
        );
        // ...and the selector still serves a well-formed check-in.
        let conn = DeviceConn::connect(DeviceId(5), "pop4", selector_refs[0].clone(), coord_ref.clone());
        conn.check_in().unwrap();
        assert!(matches!(
            conn.recv(Duration::from_secs(5)).unwrap(),
            WireMessage::PlanAndCheckpoint { .. }
        ));

        for s in &selector_refs {
            s.send(SelectorMsg::Shutdown).unwrap();
        }
        coord_ref.send(CoordMsg::Shutdown).unwrap();
        system.join();
    }

    #[test]
    fn second_coordinator_for_same_population_is_refused() {
        let locks = LockingService::new();
        let task = FlTask::training("t", "pop2").with_round(quick_round(2));
        let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        let make = || {
            CoordinatorActor::new(
                CoordinatorConfig::new("pop2", 1),
                TaskGroup::new(vec![task.clone()], TaskSelectionStrategy::Single),
                vec![plan.clone()],
                vec![0.0; spec().num_params()],
                locks.clone(),
            )
        };
        let _first = make();
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(make));
        assert!(second.is_err(), "duplicate coordinator must be refused");
    }
}
