//! Selectors (Sec. 4.2).
//!
//! "Selectors are responsible for accepting and forwarding device
//! connections. They periodically receive information from the Coordinator
//! about how many devices are needed for each FL population, which they
//! use to make local decisions about whether or not to accept each device.
//! After the Master Aggregator and set of Aggregators are spawned, the
//! Coordinator instructs the Selectors to forward a subset of its
//! connected devices to the Aggregators."
//!
//! Selection among connected devices uses reservoir sampling, per the
//! paper's footnote 1 ("selection is done by simple reservoir sampling").
//!
//! Overload protection (this reproduction's Sec. 2.3/4.2 closing of the
//! loop) is layered in front of the quota check: an optional
//! [`AdmissionController`] sheds check-ins when the sustained accept rate
//! or the held-connection queue hits its bound, and a [`PaceController`]
//! sizes every "come back later" suggestion from the *observed* check-in
//! arrival rate instead of a static population estimate.

use crate::pace::PaceSteering;
use crate::shedding::{
    AdmissionConfig, AdmissionController, AdmissionDecision, GlobalAdmissionBudget,
    PaceController, PaceControllerConfig,
};
use fl_core::{DeviceId, PopulationName};
use fl_ml::rng;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// Decision returned to a checking-in device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckinDecision {
    /// The device is accepted and held on the bidirectional stream.
    Accept,
    /// "Come back later": rejected with a pace-steered reconnect time.
    Reject {
        /// Absolute suggested reconnect time (ms).
        retry_at_ms: u64,
    },
}

/// A held device connection: when it was last seen, and (on the
/// multi-tenant path) which population it checked in under.
#[derive(Debug, Clone)]
struct HeldConn {
    last_seen_ms: u64,
    /// Population the device checked in under. `None` on the legacy
    /// single-population path, which predates multi-tenancy and keeps
    /// its exact behavior as the n=1 special case.
    population: Option<PopulationName>,
}

/// A Selector: accepts or rejects device check-ins against a quota and an
/// optional admission controller, and forwards sampled subsets toward
/// Aggregators on request.
///
/// Multi-tenancy (Sec. 2.1/4.2): one physical Selector serves several FL
/// populations at once. Check-ins arrive demultiplexed by
/// [`PopulationName`] via [`on_checkin_for`](Selector::on_checkin_for),
/// each population is held against its own quota
/// ([`set_population_quota`](Selector::set_population_quota)), and
/// forwarding samples only within the requested population
/// ([`forward_devices_for`](Selector::forward_devices_for)). Fleet-wide
/// admission fairness across populations is delegated to the shared
/// [`GlobalAdmissionBudget`]'s per-population reservations.
#[derive(Debug)]
pub struct Selector {
    /// Default quota of devices this selector may hold, set by the
    /// Coordinator; populations without an explicit per-population quota
    /// fall back to it.
    quota: usize,
    /// Per-population quota overrides for the multi-tenant path.
    population_quotas: BTreeMap<PopulationName, usize>,
    /// Held connections with their last-seen times and populations.
    connected: BTreeMap<DeviceId, HeldConn>,
    /// Held connections idle longer than this are considered disconnected
    /// and evicted before quota/admission checks. `None` disables
    /// eviction (a caller that forwards immediately never holds state
    /// long enough to go stale).
    stale_after_ms: Option<u64>,
    pace: PaceController,
    admission: Option<AdmissionController>,
    /// Fleet-wide admission budget shared with the topology's other
    /// Selectors; consulted only for check-ins that would otherwise be
    /// accepted, so local rejections never burn global slots.
    global: Option<GlobalAdmissionBudget>,
    accepted_total: u64,
    rejected_total: u64,
    shed_total: u64,
    shed_global_total: u64,
    evicted_total: u64,
    /// Per-population accepted/rejected/shed counters (multi-tenant path
    /// only; the legacy path counts solely in the aggregate totals).
    accepted_by_pop: BTreeMap<PopulationName, u64>,
    rejected_by_pop: BTreeMap<PopulationName, u64>,
    shed_by_pop: BTreeMap<PopulationName, u64>,
    rng: StdRng,
}

impl Selector {
    /// Creates a selector with an initial quota of zero (nothing accepted
    /// until the Coordinator assigns one). The closed-loop pace controller
    /// starts from `population_estimate` and adjusts from observed
    /// arrivals.
    pub fn new(pace: PaceSteering, population_estimate: u64, seed: u64) -> Self {
        let controller_config = PaceControllerConfig::for_pace(&pace);
        Selector {
            quota: 0,
            population_quotas: BTreeMap::new(),
            connected: BTreeMap::new(),
            stale_after_ms: None,
            pace: PaceController::new(pace, population_estimate, controller_config),
            admission: None,
            global: None,
            accepted_total: 0,
            rejected_total: 0,
            shed_total: 0,
            shed_global_total: 0,
            evicted_total: 0,
            accepted_by_pop: BTreeMap::new(),
            rejected_by_pop: BTreeMap::new(),
            shed_by_pop: BTreeMap::new(),
            rng: rng::seeded(seed),
        }
    }

    /// Enables admission control (token-bucket accept rate + bounded
    /// held-connection queue) in front of the quota check.
    pub fn with_admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(AdmissionController::new(config));
        self
    }

    /// Attaches a shared fleet-wide admission budget: a check-in that
    /// passes local admission and quota still sheds
    /// ([`crate::shedding::ShedReason::GlobalBudget`]) when the budget's
    /// current window is spent across all Selectors sharing it.
    pub fn with_global_budget(mut self, budget: GlobalAdmissionBudget) -> Self {
        self.global = Some(budget);
        self
    }

    /// Enables stale-connection eviction: devices not seen for
    /// `stale_after_ms` are dropped from the connected set before quota
    /// and admission checks, so ghosts cannot pin capacity.
    pub fn with_staleness(mut self, stale_after_ms: u64) -> Self {
        self.stale_after_ms = Some(stale_after_ms);
        self
    }

    /// Coordinator instruction: how many devices to hold. On the
    /// multi-tenant path this is the fallback for populations without an
    /// explicit [`set_population_quota`](Selector::set_population_quota).
    pub fn set_quota(&mut self, quota: usize) {
        self.quota = quota;
    }

    /// Per-population Coordinator instruction: how many devices of
    /// `population` to hold. Each population's quota is independent — one
    /// tenant filling its slots never blocks another's accepts.
    pub fn set_population_quota(&mut self, population: PopulationName, quota: usize) {
        self.population_quotas.insert(population, quota);
    }

    /// Seeds/overrides the population-size estimate used for pace
    /// steering; the closed loop keeps adjusting from the new value.
    pub fn set_population_estimate(&mut self, estimate: u64) {
        self.pace.set_population_estimate(estimate);
    }

    /// The closed-loop pace controller (observed-rate population estimate
    /// and arrival sketches).
    pub fn pace_controller(&self) -> &PaceController {
        &self.pace
    }

    /// The admission controller, if admission control is enabled.
    pub fn admission_controller(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// Drops held connections not seen since `now_ms − stale_after_ms`.
    /// Returns how many were evicted. No-op when eviction is disabled.
    pub fn evict_stale(&mut self, now_ms: u64) -> usize {
        let Some(ttl) = self.stale_after_ms else {
            return 0;
        };
        let before = self.connected.len();
        self.connected
            .retain(|_, held| now_ms.saturating_sub(held.last_seen_ms) < ttl);
        let evicted = before - self.connected.len();
        self.evicted_total += evicted as u64;
        evicted
    }

    /// Handles a device check-in at `now_ms` with the given diurnal
    /// activity factor.
    pub fn on_checkin(
        &mut self,
        device: DeviceId,
        now_ms: u64,
        activity_factor: f64,
    ) -> CheckinDecision {
        // Every arrival feeds the closed loop, whatever its fate.
        self.pace.on_arrival(now_ms);
        // Evict ghosts before they count against quota or the queue bound
        // (mirror of the selection pool's fresh-length fix).
        self.evict_stale(now_ms);

        if let Some(admission) = &mut self.admission {
            if let AdmissionDecision::Shed(_) = admission.offer(now_ms, self.connected.len()) {
                self.shed_total += 1;
                return self.reject(now_ms, activity_factor);
            }
        }

        if self.connected.len() < self.quota && !self.connected.contains_key(&device) {
            if let Some(budget) = &self.global {
                if !budget.try_admit(now_ms) {
                    self.shed_total += 1;
                    self.shed_global_total += 1;
                    return self.reject(now_ms, activity_factor);
                }
            }
            self.connected.insert(
                device,
                HeldConn {
                    last_seen_ms: now_ms,
                    population: None,
                },
            );
            self.accepted_total += 1;
            CheckinDecision::Accept
        } else {
            // A duplicate check-in still proves the device is alive.
            if let Some(held) = self.connected.get_mut(&device) {
                held.last_seen_ms = now_ms;
            }
            self.reject(now_ms, activity_factor)
        }
    }

    /// Handles a device check-in for a specific population at `now_ms`
    /// (the multi-tenant path; Sec. 2.1). The arrival feeds the shared
    /// pace loop and local admission controller like any other, but quota
    /// is checked against the population's own allowance and the shared
    /// global budget is consulted through its per-population fair-share
    /// reservations ([`GlobalAdmissionBudget::try_admit_for`]), so a
    /// flash crowd in one population cannot starve another's accepts.
    pub fn on_checkin_for(
        &mut self,
        population: &PopulationName,
        device: DeviceId,
        now_ms: u64,
        activity_factor: f64,
    ) -> CheckinDecision {
        self.pace.on_arrival(now_ms);
        self.evict_stale(now_ms);

        if let Some(admission) = &mut self.admission {
            if let AdmissionDecision::Shed(_) = admission.offer(now_ms, self.connected.len()) {
                self.shed_total += 1;
                *self.shed_by_pop.entry(population.clone()).or_insert(0) += 1;
                return self.reject_for(population, now_ms, activity_factor);
            }
        }

        let quota = self
            .population_quotas
            .get(population)
            .copied()
            .unwrap_or(self.quota);
        let held_for_pop = self.connected_count_for(population);
        if held_for_pop < quota && !self.connected.contains_key(&device) {
            if let Some(budget) = &self.global {
                if !budget.try_admit_for(now_ms, population) {
                    self.shed_total += 1;
                    self.shed_global_total += 1;
                    *self.shed_by_pop.entry(population.clone()).or_insert(0) += 1;
                    return self.reject_for(population, now_ms, activity_factor);
                }
            }
            self.connected.insert(
                device,
                HeldConn {
                    last_seen_ms: now_ms,
                    population: Some(population.clone()),
                },
            );
            self.accepted_total += 1;
            *self.accepted_by_pop.entry(population.clone()).or_insert(0) += 1;
            CheckinDecision::Accept
        } else {
            // A duplicate check-in still proves the device is alive.
            if let Some(held) = self.connected.get_mut(&device) {
                held.last_seen_ms = now_ms;
            }
            self.reject_for(population, now_ms, activity_factor)
        }
    }

    fn reject_for(
        &mut self,
        population: &PopulationName,
        now_ms: u64,
        activity_factor: f64,
    ) -> CheckinDecision {
        *self.rejected_by_pop.entry(population.clone()).or_insert(0) += 1;
        self.reject(now_ms, activity_factor)
    }

    fn reject(&mut self, now_ms: u64, activity_factor: f64) -> CheckinDecision {
        self.rejected_total += 1;
        CheckinDecision::Reject {
            retry_at_ms: self
                .pace
                .suggest_reconnect(now_ms, activity_factor, &mut self.rng),
        }
    }

    /// A connected device disconnected (eligibility change, network loss).
    pub fn on_disconnect(&mut self, device: DeviceId) {
        self.connected.remove(&device);
    }

    /// Number of devices currently connected (reported to the
    /// Coordinator). May include devices that would be evicted as stale at
    /// the next check-in; call [`evict_stale`](Selector::evict_stale)
    /// first for a fresh count.
    pub fn connected_count(&self) -> usize {
        self.connected.len()
    }

    /// Number of held devices that checked in under `population`.
    pub fn connected_count_for(&self, population: &PopulationName) -> usize {
        self.connected
            .values()
            .filter(|held| held.population.as_ref() == Some(population))
            .count()
    }

    /// Total accepted/rejected counters (for analytics). Rejections
    /// include shed check-ins.
    pub fn counters(&self) -> (u64, u64) {
        (self.accepted_total, self.rejected_total)
    }

    /// Per-population accepted/rejected counters (multi-tenant path).
    /// Rejections include shed check-ins, mirroring
    /// [`counters`](Selector::counters).
    pub fn counters_for(&self, population: &PopulationName) -> (u64, u64) {
        (
            self.accepted_by_pop.get(population).copied().unwrap_or(0),
            self.rejected_by_pop.get(population).copied().unwrap_or(0),
        )
    }

    /// Check-ins shed (admission controller or global budget) while
    /// checking in under `population`.
    pub fn shed_total_for(&self, population: &PopulationName) -> u64 {
        self.shed_by_pop.get(population).copied().unwrap_or(0)
    }

    /// Total check-ins shed by the admission controller or the global
    /// budget.
    pub fn shed_total(&self) -> u64 {
        self.shed_total
    }

    /// Total check-ins shed by the shared global budget specifically.
    pub fn shed_global_total(&self) -> u64 {
        self.shed_global_total
    }

    /// The shared global admission budget, if attached.
    pub fn global_budget(&self) -> Option<&GlobalAdmissionBudget> {
        self.global.as_ref()
    }

    /// Total stale connections evicted.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total
    }

    /// Coordinator instruction: forward up to `k` connected devices to the
    /// Aggregator layer. Stale connections are evicted first (forwarding a
    /// ghost wastes an Aggregator slot); the forwarded devices are sampled
    /// uniformly (reservoir sampling) and removed from this selector's
    /// connected set.
    pub fn forward_devices_at(&mut self, k: usize, now_ms: u64) -> Vec<DeviceId> {
        self.evict_stale(now_ms);
        self.forward_devices(k)
    }

    /// [`forward_devices_at`](Selector::forward_devices_at) without a
    /// clock: no staleness eviction is performed first.
    pub fn forward_devices(&mut self, k: usize) -> Vec<DeviceId> {
        let pool: Vec<DeviceId> = self.connected.keys().copied().collect();
        self.sample_and_remove(pool, k)
    }

    /// Coordinator instruction on the multi-tenant path: forward up to
    /// `k` devices held for `population` only. Stale connections are
    /// evicted first; sampling is uniform (reservoir) within the
    /// population's held set, so tenants never receive each other's
    /// devices.
    pub fn forward_devices_for(
        &mut self,
        population: &PopulationName,
        k: usize,
        now_ms: u64,
    ) -> Vec<DeviceId> {
        self.evict_stale(now_ms);
        let pool: Vec<DeviceId> = self
            .connected
            .iter()
            .filter(|(_, held)| held.population.as_ref() == Some(population))
            .map(|(d, _)| *d)
            .collect();
        self.sample_and_remove(pool, k)
    }

    fn sample_and_remove(&mut self, pool: Vec<DeviceId>, k: usize) -> Vec<DeviceId> {
        if pool.is_empty() || k == 0 {
            return Vec::new();
        }
        let take = k.min(pool.len());
        let picked = rng::reservoir_sample(&mut self.rng, pool.len(), take);
        let mut out = Vec::with_capacity(take);
        for idx in picked {
            let d = pool[idx];
            self.connected.remove(&d);
            out.push(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn selector(quota: usize) -> Selector {
        let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, 42);
        s.set_quota(quota);
        s
    }

    #[test]
    fn accepts_up_to_quota_then_rejects() {
        let mut s = selector(3);
        for i in 0..3 {
            assert_eq!(
                s.on_checkin(DeviceId(i), 1000, 1.0),
                CheckinDecision::Accept
            );
        }
        match s.on_checkin(DeviceId(99), 1000, 1.0) {
            CheckinDecision::Reject { retry_at_ms } => assert!(retry_at_ms > 1000),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(s.connected_count(), 3);
        assert_eq!(s.counters(), (3, 1));
    }

    #[test]
    fn duplicate_checkin_is_rejected() {
        let mut s = selector(5);
        assert_eq!(s.on_checkin(DeviceId(1), 0, 1.0), CheckinDecision::Accept);
        assert!(matches!(
            s.on_checkin(DeviceId(1), 0, 1.0),
            CheckinDecision::Reject { .. }
        ));
        assert_eq!(s.connected_count(), 1);
    }

    #[test]
    fn disconnect_frees_capacity() {
        let mut s = selector(1);
        assert_eq!(s.on_checkin(DeviceId(1), 0, 1.0), CheckinDecision::Accept);
        s.on_disconnect(DeviceId(1));
        assert_eq!(s.on_checkin(DeviceId(2), 0, 1.0), CheckinDecision::Accept);
    }

    #[test]
    fn forward_removes_and_returns_distinct_devices() {
        let mut s = selector(10);
        for i in 0..10 {
            s.on_checkin(DeviceId(i), 0, 1.0);
        }
        let forwarded = s.forward_devices(4);
        assert_eq!(forwarded.len(), 4);
        assert_eq!(s.connected_count(), 6);
        let set: BTreeSet<DeviceId> = forwarded.iter().copied().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn forward_caps_at_connected_count() {
        let mut s = selector(3);
        for i in 0..3 {
            s.on_checkin(DeviceId(i), 0, 1.0);
        }
        assert_eq!(s.forward_devices(100).len(), 3);
        assert_eq!(s.connected_count(), 0);
        assert!(s.forward_devices(1).is_empty());
    }

    #[test]
    fn forwarding_is_roughly_uniform() {
        // Forward 1 of 10 many times; each device should win ~10%.
        let mut wins = vec![0u32; 10];
        for trial in 0..4000 {
            let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, trial);
            s.set_quota(10);
            for i in 0..10 {
                s.on_checkin(DeviceId(i), 0, 1.0);
            }
            let f = s.forward_devices(1);
            wins[f[0].0 as usize] += 1;
        }
        for (i, &w) in wins.iter().enumerate() {
            assert!(
                (w as f64 - 400.0).abs() < 100.0,
                "device {i} won {w} of 4000"
            );
        }
    }

    #[test]
    fn zero_quota_rejects_everything() {
        let mut s = selector(0);
        assert!(matches!(
            s.on_checkin(DeviceId(0), 0, 1.0),
            CheckinDecision::Reject { .. }
        ));
    }

    #[test]
    fn stale_devices_are_evicted_before_quota_checks() {
        // Regression (mirror of the selection pool's fresh_len fix): a
        // device that connected long ago and silently vanished must not
        // pin a quota slot forever.
        let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, 7)
            .with_staleness(120_000);
        s.set_quota(1);
        assert_eq!(s.on_checkin(DeviceId(1), 0, 1.0), CheckinDecision::Accept);
        // Before the TTL expires the ghost still holds the slot.
        assert!(matches!(
            s.on_checkin(DeviceId(2), 100_000, 1.0),
            CheckinDecision::Reject { .. }
        ));
        // After the TTL the ghost is evicted and the slot is free again.
        assert_eq!(
            s.on_checkin(DeviceId(2), 130_000, 1.0),
            CheckinDecision::Accept
        );
        assert_eq!(s.evicted_total(), 1);
        assert_eq!(s.connected_count(), 1);
    }

    #[test]
    fn duplicate_checkin_refreshes_staleness() {
        let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, 7)
            .with_staleness(100_000);
        s.set_quota(1);
        assert_eq!(s.on_checkin(DeviceId(1), 0, 1.0), CheckinDecision::Accept);
        // The device re-checks in at 90 s (still rejected as a duplicate,
        // but its liveness clock resets)...
        assert!(matches!(
            s.on_checkin(DeviceId(1), 90_000, 1.0),
            CheckinDecision::Reject { .. }
        ));
        // ...so at 150 s it has NOT gone stale (last seen 90 s ago).
        assert!(matches!(
            s.on_checkin(DeviceId(2), 150_000, 1.0),
            CheckinDecision::Reject { .. }
        ));
        assert_eq!(s.evicted_total(), 0);
    }

    #[test]
    fn forward_at_skips_stale_devices() {
        let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, 9)
            .with_staleness(60_000);
        s.set_quota(4);
        s.on_checkin(DeviceId(1), 0, 1.0);
        s.on_checkin(DeviceId(2), 0, 1.0);
        s.on_checkin(DeviceId(3), 50_000, 1.0);
        s.on_checkin(DeviceId(4), 50_000, 1.0);
        // At t=70s devices 1 and 2 are stale; only 3 and 4 may forward.
        let forwarded = s.forward_devices_at(10, 70_000);
        let set: BTreeSet<DeviceId> = forwarded.into_iter().collect();
        assert_eq!(set, BTreeSet::from([DeviceId(3), DeviceId(4)]));
        assert_eq!(s.evicted_total(), 2);
    }

    #[test]
    fn admission_sheds_a_burst_deterministically() {
        let make = || {
            let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, 3)
                .with_admission(AdmissionConfig {
                    accepts_per_sec: 10.0,
                    burst: 5,
                    max_inflight: 50,
                });
            s.set_quota(1_000);
            s
        };
        let mut s = make();
        let decisions: Vec<bool> = (0..100)
            .map(|i| s.on_checkin(DeviceId(i), 0, 1.0) == CheckinDecision::Accept)
            .collect();
        // Exactly the burst is admitted; the rest shed.
        assert_eq!(decisions.iter().filter(|&&a| a).count(), 5);
        assert_eq!(s.shed_total(), 95);
        assert_eq!(s.counters().1, 95);
        // Determinism: a fresh selector replays the same decisions.
        let mut s2 = make();
        let replay: Vec<bool> = (0..100)
            .map(|i| s2.on_checkin(DeviceId(i), 0, 1.0) == CheckinDecision::Accept)
            .collect();
        assert_eq!(decisions, replay);
    }

    #[test]
    fn queue_bound_holds_even_with_tokens() {
        let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, 3)
            .with_admission(AdmissionConfig {
                accepts_per_sec: 1_000.0,
                burst: 1_000,
                max_inflight: 4,
            });
        s.set_quota(1_000);
        for i in 0..50 {
            s.on_checkin(DeviceId(i), 0, 1.0);
        }
        assert_eq!(s.connected_count(), 4);
        let (_, queue_sheds) = s
            .admission_controller()
            .expect("admission enabled")
            .shed_totals();
        assert_eq!(queue_sheds, 46);
    }

    #[test]
    fn global_budget_caps_accepts_across_selectors() {
        use crate::shedding::{GlobalAdmissionBudget, GlobalAdmissionConfig};
        let budget = GlobalAdmissionBudget::new(GlobalAdmissionConfig {
            window_ms: 60_000,
            max_admits_per_window: 4,
        });
        let mut selectors: Vec<Selector> = (0..3)
            .map(|i| {
                let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, i)
                    .with_global_budget(budget.clone());
                s.set_quota(10);
                s
            })
            .collect();
        // 3 devices offered to each of 3 selectors: each has local quota
        // headroom, but only 4 accepts exist fleet-wide in this window.
        let mut accepted = 0;
        for (i, s) in selectors.iter_mut().enumerate() {
            for d in 0..3u64 {
                if s.on_checkin(DeviceId(i as u64 * 10 + d), 0, 1.0) == CheckinDecision::Accept {
                    accepted += 1;
                }
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(budget.admitted_total(), 4);
        assert_eq!(budget.shed_total(), 5);
        let global_sheds: u64 = selectors.iter().map(Selector::shed_global_total).sum();
        assert_eq!(global_sheds, 5);
        // A locally-rejected duplicate must not burn a global slot: next
        // window, re-offering an already-connected device is a plain
        // rejection with the budget untouched.
        let d0 = DeviceId(0);
        assert!(matches!(
            selectors[0].on_checkin(d0, 61_000, 1.0),
            CheckinDecision::Reject { .. }
        ));
        assert_eq!(budget.admitted_total() + budget.shed_total(), 9);
    }

    #[test]
    fn shed_retry_suggestions_stretch_under_load() {
        // Closed loop end to end: sustained overload inflates the
        // population estimate, so later rejects are pushed further out.
        let mut s = Selector::new(PaceSteering::new(1_000, 10), 100, 5)
            .with_admission(AdmissionConfig {
                accepts_per_sec: 5.0,
                burst: 5,
                max_inflight: 10,
            });
        s.set_quota(1_000);
        let mut early_max = 0;
        let mut late_max = 0;
        for i in 0..5_000u64 {
            let now = i * 2; // 500 arrivals/s against a 5/s accept cap
            if let CheckinDecision::Reject { retry_at_ms } = s.on_checkin(DeviceId(i), now, 1.0) {
                let delay = retry_at_ms - now;
                if i < 100 {
                    early_max = early_max.max(delay);
                } else if i >= 4_900 {
                    late_max = late_max.max(delay);
                }
            }
        }
        assert!(
            late_max > early_max * 4,
            "no back pressure: early {early_max} ms vs late {late_max} ms"
        );
        assert!(s.pace_controller().population_estimate() > 1_000);
    }

    #[test]
    fn populations_are_demultiplexed_with_independent_quotas() {
        let pop_a = PopulationName::new("tenant/a");
        let pop_b = PopulationName::new("tenant/b");
        let mut s = selector(0); // default quota 0: only explicit quotas admit
        s.set_population_quota(pop_a.clone(), 2);
        s.set_population_quota(pop_b.clone(), 1);
        assert_eq!(
            s.on_checkin_for(&pop_a, DeviceId(1), 0, 1.0),
            CheckinDecision::Accept
        );
        assert_eq!(
            s.on_checkin_for(&pop_a, DeviceId(2), 0, 1.0),
            CheckinDecision::Accept
        );
        // Population A is full; its third device bounces even though B
        // still has room, and vice versa B's accept is untouched by A.
        assert!(matches!(
            s.on_checkin_for(&pop_a, DeviceId(3), 0, 1.0),
            CheckinDecision::Reject { .. }
        ));
        assert_eq!(
            s.on_checkin_for(&pop_b, DeviceId(4), 0, 1.0),
            CheckinDecision::Accept
        );
        assert!(matches!(
            s.on_checkin_for(&pop_b, DeviceId(5), 0, 1.0),
            CheckinDecision::Reject { .. }
        ));
        assert_eq!(s.connected_count(), 3);
        assert_eq!(s.connected_count_for(&pop_a), 2);
        assert_eq!(s.connected_count_for(&pop_b), 1);
        assert_eq!(s.counters_for(&pop_a), (2, 1));
        assert_eq!(s.counters_for(&pop_b), (1, 1));
        assert_eq!(s.counters(), (3, 2));
    }

    #[test]
    fn forwarding_stays_within_the_requested_population() {
        let pop_a = PopulationName::new("tenant/a");
        let pop_b = PopulationName::new("tenant/b");
        let mut s = selector(0);
        s.set_population_quota(pop_a.clone(), 8);
        s.set_population_quota(pop_b.clone(), 8);
        for i in 0..4 {
            s.on_checkin_for(&pop_a, DeviceId(i), 0, 1.0);
            s.on_checkin_for(&pop_b, DeviceId(100 + i), 0, 1.0);
        }
        let forwarded = s.forward_devices_for(&pop_a, 10, 0);
        assert_eq!(forwarded.len(), 4);
        assert!(forwarded.iter().all(|d| d.0 < 100), "leaked tenant B device");
        // B's held set is untouched and forwards independently.
        assert_eq!(s.connected_count_for(&pop_a), 0);
        assert_eq!(s.connected_count_for(&pop_b), 4);
        let forwarded_b = s.forward_devices_for(&pop_b, 2, 0);
        assert_eq!(forwarded_b.len(), 2);
        assert!(forwarded_b.iter().all(|d| d.0 >= 100));
    }

    #[test]
    fn global_budget_fair_share_spans_selector_populations() {
        use crate::shedding::{GlobalAdmissionBudget, GlobalAdmissionConfig};
        let budget = GlobalAdmissionBudget::new(GlobalAdmissionConfig {
            window_ms: 60_000,
            max_admits_per_window: 6,
        });
        let greedy = PopulationName::new("tenant/greedy");
        let steady = PopulationName::new("tenant/steady");
        budget.register_population(&greedy);
        budget.register_population(&steady);
        let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, 3)
            .with_global_budget(budget.clone());
        s.set_population_quota(greedy.clone(), 1_000);
        s.set_population_quota(steady.clone(), 1_000);
        // Greedy floods first: it may take its fair half (3) but cannot
        // spend the slots reserved for steady.
        for i in 0..20 {
            s.on_checkin_for(&greedy, DeviceId(i), 0, 1.0);
        }
        assert_eq!(s.counters_for(&greedy).0, 3);
        assert_eq!(s.shed_total_for(&greedy), 17);
        // Steady arrives late and still gets its reserved share.
        for i in 0..3 {
            assert_eq!(
                s.on_checkin_for(&steady, DeviceId(100 + i), 0, 1.0),
                CheckinDecision::Accept
            );
        }
        assert_eq!(s.counters_for(&steady), (3, 0));
    }
}
