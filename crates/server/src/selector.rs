//! Selectors (Sec. 4.2).
//!
//! "Selectors are responsible for accepting and forwarding device
//! connections. They periodically receive information from the Coordinator
//! about how many devices are needed for each FL population, which they
//! use to make local decisions about whether or not to accept each device.
//! After the Master Aggregator and set of Aggregators are spawned, the
//! Coordinator instructs the Selectors to forward a subset of its
//! connected devices to the Aggregators."
//!
//! Selection among connected devices uses reservoir sampling, per the
//! paper's footnote 1 ("selection is done by simple reservoir sampling").

use crate::pace::PaceSteering;
use fl_core::DeviceId;
use fl_ml::rng;
use rand::rngs::StdRng;
use std::collections::BTreeSet;

/// Decision returned to a checking-in device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckinDecision {
    /// The device is accepted and held on the bidirectional stream.
    Accept,
    /// "Come back later": rejected with a pace-steered reconnect time.
    Reject {
        /// Absolute suggested reconnect time (ms).
        retry_at_ms: u64,
    },
}

/// A Selector: accepts or rejects device check-ins against a quota and
/// forwards sampled subsets toward Aggregators on request.
#[derive(Debug)]
pub struct Selector {
    /// Quota of devices this selector may hold, set by the Coordinator.
    quota: usize,
    connected: BTreeSet<DeviceId>,
    pace: PaceSteering,
    population_estimate: u64,
    accepted_total: u64,
    rejected_total: u64,
    rng: StdRng,
}

impl Selector {
    /// Creates a selector with an initial quota of zero (nothing accepted
    /// until the Coordinator assigns one).
    pub fn new(pace: PaceSteering, population_estimate: u64, seed: u64) -> Self {
        Selector {
            quota: 0,
            connected: BTreeSet::new(),
            pace,
            population_estimate,
            accepted_total: 0,
            rejected_total: 0,
            rng: rng::seeded(seed),
        }
    }

    /// Coordinator instruction: how many devices to hold.
    pub fn set_quota(&mut self, quota: usize) {
        self.quota = quota;
    }

    /// Updates the population-size estimate used for pace steering.
    pub fn set_population_estimate(&mut self, estimate: u64) {
        self.population_estimate = estimate;
    }

    /// Handles a device check-in at `now_ms` with the given diurnal
    /// activity factor.
    pub fn on_checkin(
        &mut self,
        device: DeviceId,
        now_ms: u64,
        activity_factor: f64,
    ) -> CheckinDecision {
        if self.connected.len() < self.quota && !self.connected.contains(&device) {
            self.connected.insert(device);
            self.accepted_total += 1;
            CheckinDecision::Accept
        } else {
            self.rejected_total += 1;
            CheckinDecision::Reject {
                retry_at_ms: self.pace.suggest_reconnect(
                    now_ms,
                    self.population_estimate,
                    activity_factor,
                    &mut self.rng,
                ),
            }
        }
    }

    /// A connected device disconnected (eligibility change, network loss).
    pub fn on_disconnect(&mut self, device: DeviceId) {
        self.connected.remove(&device);
    }

    /// Number of devices currently connected (reported to the Coordinator).
    pub fn connected_count(&self) -> usize {
        self.connected.len()
    }

    /// Total accepted/rejected counters (for analytics).
    pub fn counters(&self) -> (u64, u64) {
        (self.accepted_total, self.rejected_total)
    }

    /// Coordinator instruction: forward up to `k` connected devices to the
    /// Aggregator layer. The forwarded devices are sampled uniformly
    /// (reservoir sampling) and removed from this selector's connected set.
    pub fn forward_devices(&mut self, k: usize) -> Vec<DeviceId> {
        let pool: Vec<DeviceId> = self.connected.iter().copied().collect();
        if pool.is_empty() || k == 0 {
            return Vec::new();
        }
        let take = k.min(pool.len());
        let picked = rng::reservoir_sample(&mut self.rng, pool.len(), take);
        let mut out = Vec::with_capacity(take);
        for idx in picked {
            let d = pool[idx];
            self.connected.remove(&d);
            out.push(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selector(quota: usize) -> Selector {
        let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, 42);
        s.set_quota(quota);
        s
    }

    #[test]
    fn accepts_up_to_quota_then_rejects() {
        let mut s = selector(3);
        for i in 0..3 {
            assert_eq!(
                s.on_checkin(DeviceId(i), 1000, 1.0),
                CheckinDecision::Accept
            );
        }
        match s.on_checkin(DeviceId(99), 1000, 1.0) {
            CheckinDecision::Reject { retry_at_ms } => assert!(retry_at_ms > 1000),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(s.connected_count(), 3);
        assert_eq!(s.counters(), (3, 1));
    }

    #[test]
    fn duplicate_checkin_is_rejected() {
        let mut s = selector(5);
        assert_eq!(s.on_checkin(DeviceId(1), 0, 1.0), CheckinDecision::Accept);
        assert!(matches!(
            s.on_checkin(DeviceId(1), 0, 1.0),
            CheckinDecision::Reject { .. }
        ));
        assert_eq!(s.connected_count(), 1);
    }

    #[test]
    fn disconnect_frees_capacity() {
        let mut s = selector(1);
        assert_eq!(s.on_checkin(DeviceId(1), 0, 1.0), CheckinDecision::Accept);
        s.on_disconnect(DeviceId(1));
        assert_eq!(s.on_checkin(DeviceId(2), 0, 1.0), CheckinDecision::Accept);
    }

    #[test]
    fn forward_removes_and_returns_distinct_devices() {
        let mut s = selector(10);
        for i in 0..10 {
            s.on_checkin(DeviceId(i), 0, 1.0);
        }
        let forwarded = s.forward_devices(4);
        assert_eq!(forwarded.len(), 4);
        assert_eq!(s.connected_count(), 6);
        let set: BTreeSet<DeviceId> = forwarded.iter().copied().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn forward_caps_at_connected_count() {
        let mut s = selector(3);
        for i in 0..3 {
            s.on_checkin(DeviceId(i), 0, 1.0);
        }
        assert_eq!(s.forward_devices(100).len(), 3);
        assert_eq!(s.connected_count(), 0);
        assert!(s.forward_devices(1).is_empty());
    }

    #[test]
    fn forwarding_is_roughly_uniform() {
        // Forward 1 of 10 many times; each device should win ~10%.
        let mut wins = vec![0u32; 10];
        for trial in 0..4000 {
            let mut s = Selector::new(PaceSteering::new(60_000, 100), 500, trial);
            s.set_quota(10);
            for i in 0..10 {
                s.on_checkin(DeviceId(i), 0, 1.0);
            }
            let f = s.forward_devices(1);
            wins[f[0].0 as usize] += 1;
        }
        for (i, &w) in wins.iter().enumerate() {
            assert!(
                (w as f64 - 400.0).abs() < 100.0,
                "device {i} won {w} of 4000"
            );
        }
    }

    #[test]
    fn zero_quota_rejects_everything() {
        let mut s = selector(0);
        assert!(matches!(
            s.on_checkin(DeviceId(0), 0, 1.0),
            CheckinDecision::Reject { .. }
        ));
    }
}
