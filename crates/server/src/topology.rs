//! Shared construction of the paper's server tree (Fig. 3 / Sec. 4.1):
//! N Selectors — each with its own pace controller, admission controller,
//! and quota, optionally sharing one fleet-wide
//! [`GlobalAdmissionBudget`] — fanning devices into one Coordinator whose
//! training rounds aggregate through an ephemeral Master Aggregator
//! subtree.
//!
//! Three harnesses build this tree: the live threaded topology
//! ([`spawn_topology`]), the chaos harness (`fl-sim::chaos`, virtual
//! clock), and the overload harness (`fl-sim::overload`, virtual clock).
//! They used to hand-roll the wiring independently; the blueprint types
//! here are the single source of truth, so a selector knob added for one
//! harness exists in all of them.

use crate::coordinator::{Coordinator, CoordinatorConfig};
use crate::live::{CoordinatorActor, CoordMsg, SelectorActor, SelectorMsg, SharedOverloadMetrics};
use crate::pace::PaceSteering;
use crate::selector::Selector;
use crate::shedding::{AdmissionConfig, GlobalAdmissionBudget, GlobalAdmissionConfig};
use crate::storage::CheckpointStore;
use fl_actors::{ActorRef, ActorSystem};
use fl_analytics::overload::{OverloadMetrics, OverloadMonitorConfig};
use fl_core::plan::FlPlan;
use fl_core::population::TaskGroup;
use fl_core::{CoreError, PopulationName};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything needed to build one Selector of the tree.
#[derive(Debug, Clone)]
pub struct SelectorSpec {
    /// Pace-steering policy (rendezvous period + target check-ins).
    pub pace: PaceSteering,
    /// Initial population estimate seeding the closed-loop controller.
    pub population_estimate: u64,
    /// Seed for the selector's reservoir-sampling RNG.
    pub seed: u64,
    /// Held-connection quota (the Coordinator may adjust it later).
    pub quota: usize,
    /// Local admission control; `None` accepts everything under quota.
    pub admission: Option<AdmissionConfig>,
    /// Staleness TTL for held connections; `None` never evicts.
    pub stale_after_ms: Option<u64>,
}

impl SelectorSpec {
    /// A spec with no admission control and no staleness eviction.
    pub fn new(pace: PaceSteering, population_estimate: u64, seed: u64, quota: usize) -> Self {
        SelectorSpec {
            pace,
            population_estimate,
            seed,
            quota,
            admission: None,
            stale_after_ms: None,
        }
    }

    /// Adds local admission control (token bucket + queue bound).
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Adds stale-connection eviction.
    pub fn with_staleness(mut self, stale_after_ms: u64) -> Self {
        self.stale_after_ms = Some(stale_after_ms);
        self
    }

    /// Builds the Selector, attaching the shared budget when present.
    pub fn build(&self, budget: Option<&GlobalAdmissionBudget>) -> Selector {
        let mut selector = Selector::new(self.pace, self.population_estimate, self.seed);
        selector.set_quota(self.quota);
        if let Some(admission) = self.admission {
            selector = selector.with_admission(admission);
        }
        if let Some(ttl) = self.stale_after_ms {
            selector = selector.with_staleness(ttl);
        }
        if let Some(budget) = budget {
            selector = selector.with_global_budget(budget.clone());
        }
        selector
    }
}

/// The deployment a tree's Coordinator owns: its config plus the task
/// group, plans, and initial model it deploys. Kept as data so a respawned
/// or retried incarnation (chaos harness) redeploys the identical thing.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// Coordinator identity and sharding parameters.
    pub config: CoordinatorConfig,
    /// The task group to deploy.
    pub group: TaskGroup,
    /// One plan per task, in task order.
    pub plans: Vec<FlPlan>,
    /// Initial global model parameters.
    pub initial_params: Vec<f32>,
}

impl DeploymentSpec {
    /// Builds an undeployed [`Coordinator`] over `store`.
    pub fn new_coordinator<S: CheckpointStore>(&self, store: S) -> Coordinator<S> {
        Coordinator::new(self.config.clone(), store)
    }

    /// Deploys this spec on a coordinator. Retryable: a scripted storage
    /// failure leaves the coordinator undeployed and the spec intact.
    ///
    /// # Errors
    ///
    /// Propagates [`Coordinator::deploy`] errors (storage failures,
    /// invalid task groups).
    pub fn deploy_on<S: CheckpointStore>(&self, c: &mut Coordinator<S>) -> Result<(), CoreError> {
        c.deploy(
            self.group.clone(),
            self.plans.clone(),
            self.initial_params.clone(),
        )
    }
}

/// Declarative shape of the Selector layer: per-Selector specs plus the
/// knobs shared across all of them.
#[derive(Debug, Clone)]
pub struct TopologyBlueprint {
    /// One spec per Selector.
    pub selectors: Vec<SelectorSpec>,
    /// Fleet-wide admission budget shared by every Selector; `None`
    /// leaves admission purely local.
    pub global_admission: Option<GlobalAdmissionConfig>,
    /// When set, the live topology records accept/shed/evict/retry
    /// telemetry into a [`SharedOverloadMetrics`] built from this config.
    pub telemetry: Option<OverloadMonitorConfig>,
}

impl TopologyBlueprint {
    /// A blueprint with no global budget and no telemetry.
    pub fn new(selectors: Vec<SelectorSpec>) -> Self {
        TopologyBlueprint {
            selectors,
            global_admission: None,
            telemetry: None,
        }
    }

    /// Shares one fleet-wide admission budget across all Selectors.
    pub fn with_global_admission(mut self, config: GlobalAdmissionConfig) -> Self {
        self.global_admission = Some(config);
        self
    }

    /// Enables overload telemetry in the live topology.
    pub fn with_telemetry(mut self, config: OverloadMonitorConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Builds the shared budget, if one is configured.
    pub fn build_global_budget(&self) -> Option<GlobalAdmissionBudget> {
        self.global_admission.map(GlobalAdmissionBudget::new)
    }

    /// Builds the Selector layer, every Selector wired to `budget` when
    /// present. Virtual-clock harnesses drive these directly; the live
    /// topology wraps them in [`SelectorActor`]s via [`spawn_topology`].
    pub fn build_selectors(&self, budget: Option<&GlobalAdmissionBudget>) -> Vec<Selector> {
        self.selectors.iter().map(|s| s.build(budget)).collect()
    }
}

/// Handles to a spawned live tree.
#[derive(Debug)]
pub struct LiveTopology {
    /// The Selector actors, in blueprint order.
    pub selectors: Vec<ActorRef<SelectorMsg>>,
    /// The Coordinator actor.
    pub coordinator: ActorRef<CoordMsg>,
    /// The shared admission budget, when the blueprint configured one —
    /// hold it to observe fleet-wide admit/shed totals.
    pub global_budget: Option<GlobalAdmissionBudget>,
    /// Shared overload telemetry, when the blueprint configured it.
    pub telemetry: Option<SharedOverloadMetrics>,
}

impl LiveTopology {
    /// Asks every actor in the tree to stop. Idempotent send-or-ignore:
    /// an actor that already stopped (or crashed) has a dead mailbox, and
    /// a second `shutdown()` — or one racing an actor's own exit — must
    /// be a no-op, not a panic. Callers that used to `.send(..).unwrap()`
    /// each handle individually turned benign teardown races into test
    /// flakes.
    pub fn shutdown(&self) {
        for s in &self.selectors {
            let _ = s.send(SelectorMsg::Shutdown);
        }
        let _ = self.coordinator.send(CoordMsg::Shutdown);
    }
}

/// Spawns the live tree described by `blueprint` around an already-built
/// [`CoordinatorActor`]: the coordinator under the name `"coordinator"`,
/// one `"selector-<i>"` per spec, all sharing the blueprint's global
/// budget and telemetry. Master Aggregator subtrees are *not* spawned
/// here — the coordinator spawns one per training round and it dies with
/// the round (Sec. 4.1).
pub fn spawn_topology<S: CheckpointStore + Send + 'static>(
    system: &ActorSystem,
    coordinator: CoordinatorActor<S>,
    blueprint: &TopologyBlueprint,
) -> LiveTopology {
    let budget = blueprint.build_global_budget();
    let telemetry: Option<SharedOverloadMetrics> = blueprint.telemetry.map(|config| {
        Arc::new(fl_race::Mutex::new(
            crate::live::OVERLOAD_METRICS,
            OverloadMetrics::new(config, 0),
        ))
    });
    let coordinator = match &telemetry {
        // The coordinator shares the same metric sink as the Selectors so
        // SecAgg shard aborts land next to the admission telemetry.
        Some(telemetry) => coordinator.with_telemetry(telemetry.clone()),
        None => coordinator,
    };
    let coord_ref = system.spawn("coordinator", coordinator);
    let selectors = blueprint
        .build_selectors(budget.as_ref())
        .into_iter()
        .enumerate()
        .map(|(i, selector)| {
            let mut actor = SelectorActor::new(selector, coord_ref.clone());
            if let Some(telemetry) = &telemetry {
                actor = actor.with_telemetry(telemetry.clone());
            }
            system.spawn(format!("selector-{i}"), actor)
        })
        .collect();
    LiveTopology {
        selectors,
        coordinator: coord_ref,
        global_budget: budget,
        telemetry,
    }
}

/// Handles to a spawned multi-tenant live tree: one Coordinator per
/// population, every Selector routing check-ins by the wire-carried
/// [`PopulationName`].
#[derive(Debug)]
pub struct MultiTopology {
    /// The Selector actors, in blueprint order.
    pub selectors: Vec<ActorRef<SelectorMsg>>,
    /// One Coordinator actor per population, keyed by its name.
    pub coordinators: BTreeMap<PopulationName, ActorRef<CoordMsg>>,
    /// The shared admission budget, when the blueprint configured one.
    /// Every population is registered on it at spawn, so fair-share
    /// reservations exist before the first check-in arrives.
    pub global_budget: Option<GlobalAdmissionBudget>,
    /// Shared overload telemetry, when the blueprint configured it; the
    /// Selector layer records per-population accept/shed/retry series.
    pub telemetry: Option<SharedOverloadMetrics>,
}

impl MultiTopology {
    /// The Coordinator actor owning `population`, if it was spawned.
    pub fn coordinator(&self, population: &PopulationName) -> Option<&ActorRef<CoordMsg>> {
        self.coordinators.get(population)
    }

    /// Asks every actor in the tree to stop. Idempotent send-or-ignore
    /// like [`LiveTopology::shutdown`].
    pub fn shutdown(&self) {
        for s in &self.selectors {
            let _ = s.send(SelectorMsg::Shutdown);
        }
        for c in self.coordinators.values() {
            let _ = c.send(CoordMsg::Shutdown);
        }
    }
}

/// Spawns the multi-tenant live tree (Sec. 2.1/4.2: "Each population of
/// devices corresponds to a different learning problem" and "The
/// Coordinators are the top-level actors, one per population"): one
/// `"coordinator-<population>"` actor per entry — each already holding
/// its own lease on the shared locking service — plus the blueprint's
/// `"selector-<i>"` layer, with every Selector routing check-ins to the
/// owning population's Coordinator and holding that population against
/// the paired per-selector quota. All populations are registered on the
/// blueprint's shared [`GlobalAdmissionBudget`], so cross-population
/// admission fairness is in force from the first check-in.
///
/// # Panics
///
/// Panics when `coordinators` is empty: a tree with no population has no
/// default route.
pub fn spawn_multi_topology<S: CheckpointStore + Send + 'static>(
    system: &ActorSystem,
    coordinators: Vec<(CoordinatorActor<S>, usize)>,
    blueprint: &TopologyBlueprint,
) -> MultiTopology {
    assert!(
        !coordinators.is_empty(),
        "multi-tenant topology needs at least one population coordinator"
    );
    let budget = blueprint.build_global_budget();
    let telemetry: Option<SharedOverloadMetrics> = blueprint.telemetry.map(|config| {
        Arc::new(fl_race::Mutex::new(
            crate::live::OVERLOAD_METRICS,
            OverloadMetrics::new(config, 0),
        ))
    });
    let mut coord_refs: BTreeMap<PopulationName, ActorRef<CoordMsg>> = BTreeMap::new();
    let mut quotas: Vec<(PopulationName, usize)> = Vec::new();
    for (actor, quota) in coordinators {
        let population = actor.population();
        if let Some(budget) = &budget {
            budget.register_population(&population);
        }
        let actor = match &telemetry {
            Some(telemetry) => actor.with_telemetry(telemetry.clone()),
            None => actor,
        };
        let coord_ref = system.spawn(format!("coordinator-{population}"), actor);
        coord_refs.insert(population.clone(), coord_ref);
        quotas.push((population, quota));
    }
    // Deterministic default route (first population in name order); every
    // known population has an explicit route, so the default only catches
    // check-ins for populations this tree does not serve.
    let default_route = match coord_refs.values().next() {
        Some(route) => route.clone(),
        // Unreachable: the entry assert guarantees one coordinator.
        None => {
            return MultiTopology {
                selectors: Vec::new(),
                coordinators: coord_refs,
                global_budget: budget,
                telemetry,
            }
        }
    };
    let selectors = blueprint
        .build_selectors(budget.as_ref())
        .into_iter()
        .enumerate()
        .map(|(i, selector)| {
            let mut actor = SelectorActor::new(selector, default_route.clone());
            for (population, quota) in &quotas {
                actor = actor.with_route(
                    population.clone(),
                    coord_refs[population].clone(),
                    *quota,
                );
            }
            if let Some(telemetry) = &telemetry {
                actor = actor.with_telemetry(telemetry.clone());
            }
            system.spawn(format!("selector-{i}"), actor)
        })
        .collect();
    MultiTopology {
        selectors,
        coordinators: coord_refs,
        global_budget: budget,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blueprint_builds_selectors_sharing_one_budget() {
        let blueprint = TopologyBlueprint::new(
            (0..3)
                .map(|i| {
                    SelectorSpec::new(PaceSteering::new(1_000, 4), 1_000, i, 8)
                        .with_staleness(60_000)
                })
                .collect(),
        )
        .with_global_admission(GlobalAdmissionConfig {
            window_ms: 60_000,
            max_admits_per_window: 5,
        });
        let budget = blueprint.build_global_budget();
        let mut selectors = blueprint.build_selectors(budget.as_ref());
        assert_eq!(selectors.len(), 3);
        // 9 would-be accepts across three selectors, one shared window of 5.
        for (i, s) in selectors.iter_mut().enumerate() {
            for d in 0..3u64 {
                s.on_checkin(fl_core::DeviceId(i as u64 * 10 + d), 1, 1.0);
            }
        }
        let budget = budget.unwrap();
        assert_eq!(budget.admitted_total(), 5);
        assert_eq!(budget.shed_total(), 4);
        let accepted: u64 = selectors.iter().map(|s| s.counters().0).sum();
        assert_eq!(accepted, 5);
    }

    #[test]
    fn deployment_spec_redeploys_identically() {
        use crate::storage::InMemoryCheckpointStore;
        use fl_core::plan::{CodecSpec, ModelSpec};
        use fl_core::population::{FlTask, TaskSelectionStrategy};

        let spec = ModelSpec::Logistic {
            dim: 4,
            classes: 2,
            seed: 0,
        };
        let deployment = DeploymentSpec {
            config: CoordinatorConfig::new("pop-spec", 7),
            group: TaskGroup::new(
                vec![FlTask::training("t", "pop-spec")],
                TaskSelectionStrategy::Single,
            ),
            plans: vec![FlPlan::standard_training(spec, 1, 8, 0.1, CodecSpec::Identity)],
            initial_params: vec![0.0; spec.num_params()],
        };
        let mut a = deployment.new_coordinator(InMemoryCheckpointStore::new());
        let mut b = deployment.new_coordinator(InMemoryCheckpointStore::new());
        deployment.deploy_on(&mut a).unwrap();
        deployment.deploy_on(&mut b).unwrap();
        assert_eq!(
            a.global_params("t").unwrap(),
            b.global_params("t").unwrap()
        );
    }
}
