//! The per-round phase state machine (Sec. 2.2, Fig. 1).
//!
//! A round advances through **Selection** (devices check in until the
//! over-selected target is reached or the selection window times out),
//! **Configuration** (plan + checkpoint pushed to the selected devices —
//! modeled as the instant of transition, with traffic recorded), and
//! **Reporting** (updates accepted until the goal count is reached, then
//! remaining devices are aborted; late reporters are rejected; the window
//! ends the round).
//!
//! The machine is purely deterministic and explicitly clocked: every
//! mutation takes `now_ms`. `fl-sim` drives it with virtual time; the live
//! actor server drives it with the timer wheel.

use fl_core::round::{RoundConfig, RoundOutcome};
use fl_core::{DeviceId, RoundId};
use std::collections::{BTreeMap, BTreeSet};

/// Current phase of the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for devices to check in.
    Selection,
    /// Waiting for participants to report updates.
    Reporting,
    /// Terminal: the round committed.
    Committed,
    /// Terminal: the round was abandoned.
    Abandoned,
}

impl Phase {
    /// Whether the round has reached a terminal phase (committed or
    /// abandoned) and will never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Committed | Phase::Abandoned)
    }
}

/// Response to a device checking in during Selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckinResponse {
    /// The device participates in this round.
    Selected,
    /// The device is *already* a participant of this round (duplicate
    /// check-in, e.g. a retry after a dropped response). Idempotent: the
    /// device keeps its slot and should proceed with the configuration it
    /// was (or is being re-) sent, rather than being pace-steered away.
    AlreadySelected,
    /// The round is not selecting (full or not in Selection).
    NotSelecting,
}

/// Response to a device report during Reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportResponse {
    /// The update was accepted into the aggregate.
    Accepted,
    /// The goal was already reached; the device's work is discarded and
    /// the device is told to abort ("aborted" in Fig. 7).
    Aborted,
    /// The reporting window has closed ("upload rejected", `#` in Table 1).
    RejectedLate,
    /// The device was not a participant of this round.
    NotParticipant,
}

/// Observable state transitions, consumed by analytics.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundEvent {
    /// The round moved from Selection to Reporting (devices configured).
    Configured {
        /// Time of the transition.
        at_ms: u64,
        /// Number of devices configured.
        participants: usize,
    },
    /// The round reached a terminal state.
    Finished {
        /// Time of the transition.
        at_ms: u64,
        /// Outcome with counts.
        outcome: RoundOutcome,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParticipantState {
    Configured { at_ms: u64 },
    Reported { participation_ms: u64 },
    Aborted { participation_ms: u64 },
    RejectedLate { participation_ms: u64 },
    DroppedOut { participation_ms: u64 },
}

/// One round's state machine.
#[derive(Debug, Clone)]
pub struct RoundState {
    /// Which round this is.
    pub round: RoundId,
    config: RoundConfig,
    phase: Phase,
    started_at_ms: u64,
    configured_at_ms: Option<u64>,
    finished_at_ms: Option<u64>,
    checked_in: BTreeSet<DeviceId>,
    participants: BTreeMap<DeviceId, ParticipantState>,
    reported: usize,
    aborted: usize,
    dropped: usize,
    rejected_late: usize,
    events: Vec<RoundEvent>,
}

impl RoundState {
    /// Opens the Selection phase at `now_ms`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`RoundConfig::validate`]).
    pub fn begin(round: RoundId, config: RoundConfig, now_ms: u64) -> Self {
        config
            .validate()
            // fl-lint: allow(panic): documented `# Panics` precondition —
            // configs are validated when authored (RoundConfig::validate);
            // an invalid one reaching `begin` is a programming error, not
            // a runtime condition a round could recover from.
            .unwrap_or_else(|why| panic!("invalid round config: {why}"));
        RoundState {
            round,
            config,
            phase: Phase::Selection,
            started_at_ms: now_ms,
            configured_at_ms: None,
            finished_at_ms: None,
            checked_in: BTreeSet::new(),
            participants: BTreeMap::new(),
            reported: 0,
            aborted: 0,
            dropped: 0,
            rejected_late: 0,
            events: Vec::new(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The round configuration.
    pub fn config(&self) -> &RoundConfig {
        &self.config
    }

    /// Devices configured into the round (empty during Selection).
    pub fn participants(&self) -> Vec<DeviceId> {
        self.participants.keys().copied().collect()
    }

    /// Events emitted so far (drained by the caller).
    pub fn drain_events(&mut self) -> Vec<RoundEvent> {
        std::mem::take(&mut self.events)
    }

    /// A device checks in during Selection. Duplicate check-ins (retries)
    /// are idempotent: an already-selected device is answered
    /// [`CheckinResponse::AlreadySelected`] — while its slot is still live
    /// — instead of being pace-steered away from a round it belongs to.
    pub fn on_checkin(&mut self, device: DeviceId, now_ms: u64) -> CheckinResponse {
        match self.phase {
            Phase::Selection => {
                // BTreeSet: O(log n) membership instead of the former O(n)
                // `Vec::contains` scan on every check-in.
                if !self.checked_in.insert(device) {
                    return CheckinResponse::AlreadySelected;
                }
                if self.checked_in.len() >= self.config.selection_target() {
                    self.configure(now_ms);
                }
                CheckinResponse::Selected
            }
            Phase::Reporting => {
                // A retrying participant whose slot is still open keeps it
                // (the caller re-sends the configuration); one in a
                // terminal per-device state gets nothing new.
                if matches!(
                    self.participants.get(&device),
                    Some(ParticipantState::Configured { .. })
                ) {
                    CheckinResponse::AlreadySelected
                } else {
                    CheckinResponse::NotSelecting
                }
            }
            Phase::Committed | Phase::Abandoned => CheckinResponse::NotSelecting,
        }
    }

    /// Clock tick: applies selection/reporting timeouts.
    pub fn on_tick(&mut self, now_ms: u64) {
        match self.phase {
            Phase::Selection => {
                if now_ms >= self.started_at_ms + self.config.selection_timeout_ms {
                    if self.checked_in.len() >= self.config.min_to_start() {
                        self.configure(now_ms);
                    } else {
                        self.finish(
                            now_ms,
                            RoundOutcome::AbandonedInSelection {
                                checked_in: self.checked_in.len(),
                                required: self.config.min_to_start(),
                            },
                        );
                    }
                }
            }
            Phase::Reporting => {
                // Reporting is only entered from Configuration, which
                // stamps `configured_at_ms`; if the stamp is somehow
                // missing, fall back to the round start so the window
                // still closes instead of panicking or hanging forever.
                let configured = self.configured_at_ms.unwrap_or(self.started_at_ms);
                if now_ms >= configured + self.config.report_window_ms {
                    self.close_reporting(now_ms);
                }
            }
            Phase::Committed | Phase::Abandoned => {}
        }
    }

    /// A participant reports its update at `now_ms`.
    pub fn on_report(&mut self, device: DeviceId, now_ms: u64) -> ReportResponse {
        if self.phase != Phase::Reporting {
            // After the window closed (or before configuration) reports are
            // late/ignored.
            return match self.participants.get(&device) {
                Some(ParticipantState::Configured { at_ms }) => {
                    let participation = now_ms.saturating_sub(*at_ms);
                    self.participants.insert(
                        device,
                        ParticipantState::RejectedLate {
                            participation_ms: participation,
                        },
                    );
                    self.rejected_late += 1;
                    ReportResponse::RejectedLate
                }
                // A device the server already aborted/dropped may still
                // attempt its upload; the server rejects it (Table 1 `#`).
                Some(_) => ReportResponse::RejectedLate,
                None => ReportResponse::NotParticipant,
            };
        }
        match self.participants.get(&device) {
            Some(ParticipantState::Configured { at_ms }) => {
                let participation = now_ms.saturating_sub(*at_ms);
                if self.reported < self.config.goal_count {
                    self.participants.insert(
                        device,
                        ParticipantState::Reported {
                            participation_ms: participation,
                        },
                    );
                    self.reported += 1;
                    if self.reported >= self.config.goal_count {
                        self.close_reporting(now_ms);
                    }
                    ReportResponse::Accepted
                } else {
                    self.participants.insert(
                        device,
                        ParticipantState::Aborted {
                            participation_ms: participation,
                        },
                    );
                    self.aborted += 1;
                    ReportResponse::Aborted
                }
            }
            Some(_) => ReportResponse::NotParticipant, // already terminal
            None => ReportResponse::NotParticipant,
        }
    }

    /// A participant dropped out (error, network failure, eligibility
    /// change) at `now_ms`.
    pub fn on_dropout(&mut self, device: DeviceId, now_ms: u64) {
        if let Some(ParticipantState::Configured { at_ms }) = self.participants.get(&device) {
            let participation = now_ms.saturating_sub(*at_ms);
            self.participants.insert(
                device,
                ParticipantState::DroppedOut {
                    participation_ms: participation,
                },
            );
            self.dropped += 1;
        }
    }

    fn configure(&mut self, now_ms: u64) {
        self.phase = Phase::Reporting;
        self.configured_at_ms = Some(now_ms);
        for d in &self.checked_in {
            self.participants
                .insert(*d, ParticipantState::Configured { at_ms: now_ms });
        }
        self.events.push(RoundEvent::Configured {
            at_ms: now_ms,
            participants: self.participants.len(),
        });
    }

    fn close_reporting(&mut self, now_ms: u64) {
        // Outstanding devices are aborted by the server (participation time
        // capped, Fig. 8).
        let outstanding: Vec<DeviceId> = self
            .participants
            .iter()
            .filter_map(|(d, s)| matches!(s, ParticipantState::Configured { .. }).then_some(*d))
            .collect();
        for d in outstanding {
            if let Some(ParticipantState::Configured { at_ms }) = self.participants.get(&d) {
                let participation =
                    now_ms.saturating_sub(*at_ms).min(self.config.device_cap_ms);
                self.participants.insert(
                    d,
                    ParticipantState::Aborted {
                        participation_ms: participation,
                    },
                );
                self.aborted += 1;
            }
        }
        let outcome = if self.reported >= self.config.goal_count
            || self.reported >= self.config.min_to_start()
        {
            RoundOutcome::Committed {
                incorporated: self.reported,
                aborted: self.aborted,
                dropped_out: self.dropped,
            }
        } else {
            RoundOutcome::AbandonedInReporting {
                reported: self.reported,
                required: self.config.min_to_start(),
            }
        };
        self.finish(now_ms, outcome);
    }

    fn finish(&mut self, now_ms: u64, outcome: RoundOutcome) {
        self.phase = if outcome.is_committed() {
            Phase::Committed
        } else {
            Phase::Abandoned
        };
        self.finished_at_ms = Some(now_ms);
        self.events.push(RoundEvent::Finished {
            at_ms: now_ms,
            outcome,
        });
    }

    /// The outcome, if the round is finished.
    pub fn outcome(&self) -> Option<RoundOutcome> {
        self.events.iter().rev().find_map(|e| match e {
            RoundEvent::Finished { outcome, .. } => Some(*outcome),
            _ => None,
        })
    }

    /// Wall-clock duration of the round so far / total (Fig. 8's "round
    /// execution time": configuration → finish).
    pub fn run_time_ms(&self) -> Option<u64> {
        match (self.configured_at_ms, self.finished_at_ms) {
            (Some(s), Some(e)) => Some(e.saturating_sub(s)),
            _ => None,
        }
    }

    /// Per-device participation times with their final states, for the
    /// Fig. 8 distribution.
    pub fn participation_times(&self) -> Vec<(DeviceId, &'static str, u64)> {
        self.participants
            .iter()
            .filter_map(|(d, s)| match s {
                ParticipantState::Reported { participation_ms } => {
                    Some((*d, "completed", *participation_ms))
                }
                ParticipantState::Aborted { participation_ms } => {
                    Some((*d, "aborted", *participation_ms))
                }
                ParticipantState::DroppedOut { participation_ms } => {
                    Some((*d, "dropped", *participation_ms))
                }
                ParticipantState::RejectedLate { participation_ms } => {
                    Some((*d, "rejected", *participation_ms))
                }
                ParticipantState::Configured { .. } => None,
            })
            .collect()
    }

    /// Counters: (reported, aborted, dropped, rejected-late).
    pub fn counters(&self) -> (usize, usize, usize, usize) {
        (self.reported, self.aborted, self.dropped, self.rejected_late)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(goal: usize) -> RoundConfig {
        RoundConfig {
            goal_count: goal,
            overselection: 1.3,
            min_goal_fraction: 0.8,
            selection_timeout_ms: 10_000,
            report_window_ms: 30_000,
            device_cap_ms: 25_000,
        }
    }

    fn fill_selection(r: &mut RoundState, n: usize, t: u64) {
        for i in 0..n {
            assert_eq!(
                r.on_checkin(DeviceId(i as u64), t),
                CheckinResponse::Selected
            );
        }
    }

    #[test]
    fn reaching_target_configures_immediately() {
        let mut r = RoundState::begin(RoundId(1), config(10), 0);
        fill_selection(&mut r, 13, 100); // 1.3 × 10
        assert_eq!(r.phase(), Phase::Reporting);
        assert_eq!(r.participants().len(), 13);
        let events = r.drain_events();
        assert!(matches!(
            events[0],
            RoundEvent::Configured { participants: 13, .. }
        ));
    }

    #[test]
    fn selection_timeout_with_enough_starts_round() {
        let mut r = RoundState::begin(RoundId(1), config(10), 0);
        fill_selection(&mut r, 9, 100); // ≥ 8 (min fraction 0.8)
        assert_eq!(r.phase(), Phase::Selection);
        r.on_tick(10_000);
        assert_eq!(r.phase(), Phase::Reporting);
        assert_eq!(r.participants().len(), 9);
    }

    #[test]
    fn selection_timeout_without_enough_abandons() {
        let mut r = RoundState::begin(RoundId(1), config(10), 0);
        fill_selection(&mut r, 3, 100);
        r.on_tick(10_000);
        assert_eq!(r.phase(), Phase::Abandoned);
        assert_eq!(
            r.outcome(),
            Some(RoundOutcome::AbandonedInSelection {
                checked_in: 3,
                required: 8
            })
        );
    }

    #[test]
    fn goal_reached_commits_and_aborts_stragglers() {
        let mut r = RoundState::begin(RoundId(1), config(4), 0);
        fill_selection(&mut r, 6, 100); // target ⌈5.2⌉ = 6
        assert_eq!(r.phase(), Phase::Reporting);
        let devices = r.participants();
        // 4 devices report (goal) — the rest get aborted.
        for d in devices.iter().take(3) {
            assert_eq!(r.on_report(*d, 5_000), ReportResponse::Accepted);
        }
        assert_eq!(r.phase(), Phase::Reporting);
        assert_eq!(r.on_report(devices[3], 6_000), ReportResponse::Accepted);
        assert_eq!(r.phase(), Phase::Committed);
        assert_eq!(
            r.outcome(),
            Some(RoundOutcome::Committed {
                incorporated: 4,
                aborted: 2,
                dropped_out: 0
            })
        );
        // A straggler reporting after commit is rejected late.
        assert_eq!(r.on_report(devices[4], 7_000), ReportResponse::RejectedLate);
    }

    #[test]
    fn report_window_timeout_commits_if_min_reached() {
        let mut r = RoundState::begin(RoundId(1), config(10), 0);
        fill_selection(&mut r, 13, 100);
        let devices = r.participants();
        for d in devices.iter().take(8) {
            // exactly min_to_start
            r.on_report(*d, 5_000);
        }
        r.on_tick(100 + 30_000);
        assert!(matches!(
            r.outcome(),
            Some(RoundOutcome::Committed {
                incorporated: 8,
                ..
            })
        ));
    }

    #[test]
    fn report_window_timeout_abandons_if_too_few() {
        let mut r = RoundState::begin(RoundId(1), config(10), 0);
        fill_selection(&mut r, 13, 100);
        let devices = r.participants();
        for d in devices.iter().take(3) {
            r.on_report(*d, 5_000);
        }
        r.on_tick(100 + 30_000);
        assert_eq!(
            r.outcome(),
            Some(RoundOutcome::AbandonedInReporting {
                reported: 3,
                required: 8
            })
        );
    }

    #[test]
    fn dropouts_are_counted() {
        let mut r = RoundState::begin(RoundId(1), config(4), 0);
        fill_selection(&mut r, 6, 100);
        let devices = r.participants();
        r.on_dropout(devices[0], 2_000);
        r.on_dropout(devices[1], 3_000);
        for d in devices.iter().skip(2) {
            r.on_report(*d, 5_000);
        }
        assert_eq!(
            r.outcome(),
            Some(RoundOutcome::Committed {
                incorporated: 4,
                aborted: 0,
                dropped_out: 2
            })
        );
    }

    #[test]
    fn participation_times_are_capped_for_aborted() {
        let mut r = RoundState::begin(RoundId(1), config(4), 0);
        fill_selection(&mut r, 6, 0);
        let devices = r.participants();
        for d in devices.iter().take(3) {
            r.on_report(*d, 5_000);
        }
        // Window closes; 3 outstanding are aborted with capped times.
        r.on_tick(30_000);
        for (_, state, t) in r.participation_times() {
            if state == "aborted" {
                assert!(t <= 25_000, "participation {t} exceeds cap");
            }
        }
    }

    #[test]
    fn checkins_after_configuration_are_turned_away() {
        let mut r = RoundState::begin(RoundId(1), config(4), 0);
        fill_selection(&mut r, 6, 0);
        assert_eq!(
            r.on_checkin(DeviceId(999), 200),
            CheckinResponse::NotSelecting
        );
    }

    /// Regression (satellite 2): a duplicate check-in from an
    /// already-selected device — a retry after a lost response — must be
    /// answered idempotently, not `NotSelecting` (which pace-steered the
    /// participant away from a round it belongs to).
    #[test]
    fn duplicate_checkin_is_idempotent() {
        let mut r = RoundState::begin(RoundId(1), config(10), 0);
        assert_eq!(r.on_checkin(DeviceId(1), 0), CheckinResponse::Selected);
        assert_eq!(
            r.on_checkin(DeviceId(1), 0),
            CheckinResponse::AlreadySelected
        );
        // The duplicate did not consume a second selection slot.
        assert_eq!(r.checked_in.len(), 1);
    }

    /// Regression (satellite 2, Reporting phase): a participant retrying
    /// its check-in after configuration keeps its slot while it is live,
    /// and is turned away once its per-device state is terminal.
    #[test]
    fn duplicate_checkin_during_reporting_keeps_slot() {
        let mut r = RoundState::begin(RoundId(1), config(4), 0);
        fill_selection(&mut r, 6, 100);
        assert_eq!(r.phase(), Phase::Reporting);
        let devices = r.participants();
        // Still configured → idempotent re-admission.
        assert_eq!(
            r.on_checkin(devices[0], 200),
            CheckinResponse::AlreadySelected
        );
        // After it reports, its slot is spent.
        assert_eq!(r.on_report(devices[0], 5_000), ReportResponse::Accepted);
        assert_eq!(r.on_checkin(devices[0], 6_000), CheckinResponse::NotSelecting);
        // A stranger is still turned away.
        assert_eq!(r.on_checkin(DeviceId(999), 200), CheckinResponse::NotSelecting);
    }

    #[test]
    fn non_participant_report_is_flagged() {
        let mut r = RoundState::begin(RoundId(1), config(4), 0);
        fill_selection(&mut r, 6, 0);
        assert_eq!(
            r.on_report(DeviceId(999), 1_000),
            ReportResponse::NotParticipant
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Checkin(u8),
            Report(u8),
            Dropout(u8),
            Tick(u32),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u8..40).prop_map(Op::Checkin),
                (0u8..40).prop_map(Op::Report),
                (0u8..40).prop_map(Op::Dropout),
                (0u32..60_000).prop_map(Op::Tick),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Under ANY event sequence: counters never exceed the
            /// participant count, terminal phases are absorbing, and a
            /// committed outcome's parts sum to at most the participants.
            #[test]
            fn invariants_hold_under_arbitrary_event_sequences(
                ops in proptest::collection::vec(op_strategy(), 1..120),
            ) {
                let mut r = RoundState::begin(RoundId(1), config(5), 0);
                let mut now = 0u64;
                let mut finished_phase: Option<Phase> = None;
                for op in ops {
                    match op {
                        Op::Checkin(d) => {
                            let _ = r.on_checkin(DeviceId(u64::from(d)), now);
                        }
                        Op::Report(d) => {
                            let _ = r.on_report(DeviceId(u64::from(d)), now);
                        }
                        Op::Dropout(d) => r.on_dropout(DeviceId(u64::from(d)), now),
                        Op::Tick(dt) => {
                            now += u64::from(dt);
                            r.on_tick(now);
                        }
                    }
                    let participants = r.participants().len();
                    let (reported, aborted, dropped, rejected) = r.counters();
                    prop_assert!(reported + aborted + dropped <= participants.max(0) + rejected + participants,
                        "counter overflow");
                    prop_assert!(reported <= participants || participants == 0);
                    match finished_phase {
                        Some(p) => prop_assert_eq!(r.phase(), p, "terminal phase changed"),
                        None => {
                            if matches!(r.phase(), Phase::Committed | Phase::Abandoned) {
                                finished_phase = Some(r.phase());
                            }
                        }
                    }
                }
                if let Some(RoundOutcome::Committed { incorporated, aborted, dropped_out }) = r.outcome() {
                    let participants = r.participants().len();
                    prop_assert!(incorporated + aborted + dropped_out <= participants);
                    prop_assert!(incorporated >= r.config().min_to_start()
                        || incorporated >= r.config().goal_count);
                }
            }

            /// Participation times never exceed the device cap for
            /// aborted devices, under any sequence.
            #[test]
            fn aborted_participation_respects_cap(
                ops in proptest::collection::vec(op_strategy(), 1..120),
            ) {
                let mut r = RoundState::begin(RoundId(1), config(5), 0);
                let mut now = 0u64;
                for op in ops {
                    match op {
                        Op::Checkin(d) => { let _ = r.on_checkin(DeviceId(u64::from(d)), now); }
                        Op::Report(d) => { let _ = r.on_report(DeviceId(u64::from(d)), now); }
                        Op::Dropout(d) => r.on_dropout(DeviceId(u64::from(d)), now),
                        Op::Tick(dt) => { now += u64::from(dt); r.on_tick(now); }
                    }
                }
                if r.outcome().is_some() {
                    for (_, state, t) in r.participation_times() {
                        if state == "aborted" {
                            prop_assert!(t <= r.config().device_cap_ms);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn run_time_spans_configuration_to_finish() {
        let mut r = RoundState::begin(RoundId(1), config(4), 0);
        fill_selection(&mut r, 6, 1_000);
        let devices = r.participants();
        for d in devices.iter().take(4) {
            r.on_report(*d, 9_000);
        }
        assert_eq!(r.run_time_ms(), Some(8_000));
    }
}
