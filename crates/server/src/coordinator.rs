//! Coordinators (Sec. 4.2).
//!
//! "Coordinators are the top-level actors which enable global
//! synchronization and advancing rounds in lockstep. […] each one is
//! responsible for an FL population of devices. A Coordinator registers
//! its address and the FL population it manages in a shared locking
//! service […]. Coordinators spawn Master Aggregators to manage the rounds
//! of each FL task."
//!
//! [`Coordinator`] owns a population's deployed tasks, advances one round
//! at a time ([`ActiveRound`]), commits fully-aggregated checkpoints to
//! storage, and accounts traffic. It is deterministic and explicitly
//! clocked; `fl-sim` and the live actors both drive it.

use crate::aggregator::{AggregationPlan, DropStage, MasterAggregator};
use crate::round::{CheckinResponse, ReportResponse, RoundState};
use crate::storage::CheckpointStore;
use fl_core::plan::FlPlan;
use fl_core::population::{TaskGroup, TaskKind};
use fl_core::traffic::{TrafficCounter, TrafficKind};
use fl_core::{CoreError, DeviceId, FlCheckpoint, FlTask, PopulationName, RoundId};
use fl_ml::metrics::MetricSummary;
use fl_ml::rng;
use rand::RngExt;
use std::collections::HashMap;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// The population this coordinator owns.
    pub population: PopulationName,
    /// Max devices per Aggregator shard.
    pub max_per_shard: usize,
    /// Master seed for per-round randomness.
    pub seed: u64,
}

impl CoordinatorConfig {
    /// Creates a config with the default shard capacity (256 devices).
    pub fn new(population: impl Into<PopulationName>, seed: u64) -> Self {
        CoordinatorConfig {
            population: population.into(),
            max_per_shard: 256,
            seed,
        }
    }
}

/// A deployed task: its plan and (for training tasks) custody of the
/// global model via the checkpoint store.
#[derive(Debug, Clone)]
struct Deployment {
    plan: FlPlan,
}

/// The per-population Coordinator.
pub struct Coordinator<S: CheckpointStore> {
    // Manual Debug below: `S` need not implement it.
    config: CoordinatorConfig,
    group: Option<TaskGroup>,
    deployments: HashMap<String, Deployment>,
    store: S,
    /// Global round counter across the population (drives task selection).
    round_counter: u64,
    /// Committed-round ids per task.
    round_ids: HashMap<String, RoundId>,
    traffic: TrafficCounter,
    /// Materialized metrics per task per round (Sec. 7.4).
    metrics: Vec<(String, RoundId, Vec<MetricSummary>)>,
    /// Cumulative SecAgg shards that aborted below threshold at inline
    /// finalize (the live path reports aborts via telemetry instead).
    secagg_shard_aborts: u64,
}

impl<S: CheckpointStore> std::fmt::Debug for Coordinator<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("config", &self.config)
            .field("group", &self.group)
            .field("round_counter", &self.round_counter)
            .field("round_ids", &self.round_ids)
            .finish_non_exhaustive()
    }
}

impl<S: CheckpointStore> Coordinator<S> {
    /// Creates a coordinator over the given store.
    pub fn new(config: CoordinatorConfig, store: S) -> Self {
        Coordinator {
            config,
            group: None,
            deployments: HashMap::new(),
            store,
            round_counter: 0,
            round_ids: HashMap::new(),
            traffic: TrafficCounter::new(),
            metrics: Vec::new(),
            secagg_shard_aborts: 0,
        }
    }

    /// Deploys a task group (from the `fl-tools` release pipeline): plans
    /// plus initial parameters for training tasks.
    ///
    /// Deployment is **resume-aware**: if the store already holds a
    /// committed checkpoint for a task (i.e. this coordinator is a respawn
    /// picking up an existing population, Sec. 4.2/4.4), the trained model
    /// is kept and its round id adopted — the initial parameters are only
    /// written for genuinely new tasks. This keeps `write_count()` at one
    /// write per committed round across coordinator restarts.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::StorageFailure`] if the initial checkpoint
    /// write fails; the task is then not deployed.
    ///
    /// # Panics
    ///
    /// Panics if a plan's expected dimension disagrees with its model, or
    /// if `initial_params` dimension mismatches.
    pub fn deploy(
        &mut self,
        group: TaskGroup,
        plans: Vec<FlPlan>,
        initial_params: Vec<f32>,
    ) -> Result<(), CoreError> {
        assert_eq!(group.tasks().len(), plans.len(), "one plan per task");
        for (task, plan) in group.tasks().iter().zip(&plans) {
            assert_eq!(
                plan.server.expected_dim,
                plan.device.model.num_params(),
                "plan dimension mismatch"
            );
            assert_eq!(
                initial_params.len(),
                plan.server.expected_dim,
                "initial params dimension mismatch"
            );
            // Tasks that read another task's checkpoint (evaluation) do
            // not get their own model state.
            let round_id = if task.checkpoint_source.is_none() {
                match self.store.latest(&task.name) {
                    // Respawn: resume from the committed model rather than
                    // clobbering it with the initial parameters.
                    Ok(existing) => existing.round,
                    Err(CoreError::UnknownTask(_)) => {
                        self.store.commit(FlCheckpoint::new(
                            task.name.clone(),
                            RoundId(0),
                            initial_params.clone(),
                        ))?;
                        RoundId(0)
                    }
                    Err(e) => return Err(e),
                }
            } else {
                RoundId(0)
            };
            self.deployments
                .insert(task.name.clone(), Deployment { plan: plan.clone() });
            self.round_ids.insert(task.name.clone(), round_id);
        }
        self.group = Some(group);
        Ok(())
    }

    /// The population this coordinator owns.
    pub fn population(&self) -> &PopulationName {
        &self.config.population
    }

    /// Read access to traffic accounting.
    pub fn traffic(&self) -> &TrafficCounter {
        &self.traffic
    }

    /// SecAgg shards that aborted below threshold across every inline
    /// [`complete_round`](Coordinator::complete_round) so far. Aborted
    /// shards cost their group's contributions; the round still commits
    /// from the surviving shards.
    pub fn secagg_shard_aborts(&self) -> u64 {
        self.secagg_shard_aborts
    }

    /// Read access to the checkpoint store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Materialized metrics: `(task, round, summaries)` tuples.
    pub fn materialized_metrics(&self) -> &[(String, RoundId, Vec<MetricSummary>)] {
        &self.metrics
    }

    /// Latest global parameters for a task.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] if the task was never deployed.
    pub fn global_params(&self, task_name: &str) -> Result<Vec<f32>, CoreError> {
        Ok(self.store.latest(task_name)?.into_params())
    }

    /// Begins the next round at `now_ms`: selects the task (per the
    /// population's dynamic strategy), reads the latest checkpoint, and
    /// spawns the Master Aggregator.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownTask`] if nothing is deployed.
    pub fn begin_round(&mut self, now_ms: u64) -> Result<ActiveRound, CoreError> {
        let group = self
            .group
            .as_ref()
            .ok_or_else(|| CoreError::UnknownTask("no deployment".into()))?;
        let task = group.select(self.round_counter).clone();
        let deployment = self
            .deployments
            .get(&task.name)
            .ok_or_else(|| CoreError::UnknownTask(task.name.clone()))?;
        let checkpoint_task = task.checkpoint_source.as_deref().unwrap_or(&task.name);
        let checkpoint = self.store.latest(checkpoint_task)?;
        let round_id = self.round_ids[&task.name].next();
        let dim = deployment.plan.server.expected_dim;
        let mut plan = if let Some(k) = task.secagg_group_size {
            AggregationPlan::with_secagg(dim, self.config.max_per_shard, k)
        } else {
            AggregationPlan::plain(dim, self.config.max_per_shard)
        };
        if let Some(dp) = task.dp {
            plan = plan.with_dp(dp);
        }
        let mut seed_rng = rng::seeded_stream(self.config.seed, self.round_counter);
        let master = MasterAggregator::new(
            plan,
            deployment.plan.server.update_codec,
            task.round.selection_target(),
            seed_rng.random::<u64>(),
        );
        self.round_counter += 1;
        Ok(ActiveRound {
            task: task.clone(),
            plan: deployment.plan.clone(),
            checkpoint,
            state: RoundState::begin(round_id, task.round, now_ms),
            master: Some(master),
            external_aggregation: false,
            advertise_dropouts: Vec::new(),
            share_dropouts: Vec::new(),
            loss_summary: MetricSummary::new("loss"),
            accuracy_summary: MetricSummary::new("accuracy"),
            train_time_summary: MetricSummary::new("participation_ms"),
            traffic_delta: TrafficCounter::new(),
        })
    }

    /// Completes a finished round: commits the new checkpoint (training,
    /// committed outcomes only), materializes metrics, returns the outcome.
    ///
    /// # Errors
    ///
    /// Returns an error if the round is not finished or aggregation fails.
    /// On [`CoreError::StorageFailure`] the round's result is lost but the
    /// coordinator stays consistent: round ids and metrics are not
    /// advanced, so the next `begin_round` retries from the last
    /// *successfully* committed checkpoint (Sec. 4.2).
    pub fn complete_round(&mut self, mut round: ActiveRound) -> Result<fl_core::RoundOutcome, CoreError> {
        let outcome = round
            .state
            .outcome()
            .ok_or_else(|| CoreError::UnknownTask("round not finished".into()))?;
        // The bandwidth was spent whether or not the commit below lands.
        self.traffic.merge(&round.traffic_delta);
        let new_params = if outcome.is_committed() && round.task.kind == TaskKind::Training {
            let master = round.master.take().ok_or_else(|| {
                CoreError::InvariantViolated("training round has no aggregator".into())
            })?;
            let out = master
                .finalize(
                    round.checkpoint.params(),
                    &round.advertise_dropouts,
                    &round.share_dropouts,
                )
                .map_err(|e| CoreError::MalformedCheckpoint(e.to_string()))?;
            self.secagg_shard_aborts += out.shard_aborts as u64;
            Some(out.params)
        } else {
            None
        };
        self.commit_finished(round, outcome, new_params)
    }

    /// [`complete_round`](Coordinator::complete_round) for rounds whose
    /// aggregation ran *outside* the coordinator — in the live actor tree,
    /// where a detached [`MasterAggregator`] (see
    /// [`ActiveRound::detach_master`]) runs as a `MasterAggregatorActor`
    /// with `AggregatorActor` shard children. `aggregate` is that actor's
    /// finalize result; it is only required (and only consulted) for
    /// committed training rounds. The one-write-per-committed-round
    /// invariant and the storage-failure consistency guarantees are
    /// identical to the inline path.
    ///
    /// # Errors
    ///
    /// As [`complete_round`](Coordinator::complete_round); a missing
    /// aggregate for a committed training round is
    /// [`CoreError::InvariantViolated`].
    pub fn complete_round_external(
        &mut self,
        round: ActiveRound,
        aggregate: Option<Result<(Vec<f32>, usize), CoreError>>,
    ) -> Result<fl_core::RoundOutcome, CoreError> {
        let outcome = round
            .state
            .outcome()
            .ok_or_else(|| CoreError::UnknownTask("round not finished".into()))?;
        self.traffic.merge(&round.traffic_delta);
        let new_params = if outcome.is_committed() && round.task.kind == TaskKind::Training {
            let (params, _n) = aggregate.ok_or_else(|| {
                CoreError::InvariantViolated("training round has no aggregate".into())
            })??;
            Some(params)
        } else {
            None
        };
        self.commit_finished(round, outcome, new_params)
    }

    /// Shared tail of round completion: commits the checkpoint (committed
    /// training rounds only — exactly one write) and materializes metrics.
    /// Traffic must already be merged.
    fn commit_finished(
        &mut self,
        round: ActiveRound,
        outcome: fl_core::RoundOutcome,
        new_params: Option<Vec<f32>>,
    ) -> Result<fl_core::RoundOutcome, CoreError> {
        if outcome.is_committed() {
            if round.task.kind == TaskKind::Training {
                let params = new_params.ok_or_else(|| {
                    CoreError::InvariantViolated("training round has no aggregate".into())
                })?;
                let new_round = round.checkpoint.round.next();
                self.store
                    .commit(FlCheckpoint::new(round.task.name.clone(), new_round, params))?;
                self.round_ids.insert(round.task.name.clone(), new_round);
            }
            self.metrics.push((
                round.task.name.clone(),
                round.state.round,
                vec![
                    round.loss_summary,
                    round.accuracy_summary,
                    round.train_time_summary,
                ],
            ));
        }
        Ok(outcome)
    }

    /// Consumes the coordinator, returning its checkpoint store (used by
    /// the chaos harness to audit writes after tearing the topology down).
    pub fn into_store(self) -> S {
        self.store
    }
}

/// One in-flight round: the state machine plus the aggregation pipeline
/// and traffic/metrics accounting for its devices.
#[derive(Debug)]
pub struct ActiveRound {
    /// The task being executed.
    pub task: FlTask,
    /// The task's plan (device + server parts).
    pub plan: FlPlan,
    /// The checkpoint sent to participants.
    pub checkpoint: FlCheckpoint,
    /// The phase state machine.
    pub state: RoundState,
    master: Option<MasterAggregator>,
    /// True once the master has been detached for actor-based driving:
    /// accepted reports are then routed by the caller, not folded here.
    external_aggregation: bool,
    /// Devices that vanished after advertising SecAgg keys (cheap
    /// exclusion; also where plain-round dropouts land when staged
    /// explicitly).
    advertise_dropouts: Vec<DeviceId>,
    /// Devices that vanished after sharing keys — the expensive
    /// mask-recovery path, and the conservative default stage.
    share_dropouts: Vec<DeviceId>,
    loss_summary: MetricSummary,
    accuracy_summary: MetricSummary,
    train_time_summary: MetricSummary,
    /// Traffic accumulated during the round, merged into the coordinator
    /// at completion.
    traffic_delta: TrafficCounter,
}

impl ActiveRound {
    /// A device checks in; on selection, the plan and checkpoint downloads
    /// are accounted.
    pub fn on_checkin(&mut self, device: DeviceId, now_ms: u64) -> CheckinResponse {
        let response = self.state.on_checkin(device, now_ms);
        if response == CheckinResponse::Selected {
            self.traffic_delta
                .record(TrafficKind::Plan, self.plan.device.encoded_size());
            self.traffic_delta
                .record(TrafficKind::Checkpoint, self.checkpoint.encoded_size());
        }
        response
    }

    /// Clock tick (timeouts).
    pub fn on_tick(&mut self, now_ms: u64) {
        self.state.on_tick(now_ms);
    }

    /// A device reports: `update_bytes` is the codec-encoded update
    /// (empty for evaluation tasks), `weight` its example count, plus its
    /// local metrics.
    ///
    /// # Errors
    ///
    /// Aggregation/decode errors for accepted training reports.
    pub fn on_report(
        &mut self,
        device: DeviceId,
        now_ms: u64,
        update_bytes: &[u8],
        weight: u64,
        loss: f64,
        accuracy: f64,
    ) -> Result<ReportResponse, CoreError> {
        let response = self.state.on_report(device, now_ms);
        // Upload bandwidth is spent whether or not the server keeps it.
        if !update_bytes.is_empty() {
            self.traffic_delta
                .record(TrafficKind::Update, update_bytes.len());
        }
        self.traffic_delta.record(TrafficKind::Metrics, 32);
        if response == ReportResponse::Accepted {
            if self.task.kind == TaskKind::Training && !self.external_aggregation {
                self.master
                    .as_mut()
                    .ok_or_else(|| {
                        CoreError::InvariantViolated("training round has no aggregator".into())
                    })?
                    .accept(device, update_bytes, weight)?;
            }
            self.loss_summary.push(loss);
            self.accuracy_summary.push(accuracy);
        }
        Ok(response)
    }

    /// A device reports through the SecAgg path: `field` is its
    /// fixed-point-encoded contribution, one `u64` coordinate per model
    /// parameter, as carried (masked) by a
    /// [`fl_wire::WireMessage::SecAggReport`]. Uploads cost 8 bytes per
    /// coordinate, so SecAgg's bandwidth premium over codec-compressed
    /// clear updates shows up in the round's measured traffic.
    ///
    /// # Errors
    ///
    /// Dimension errors for accepted reports, or SecAgg not enabled on
    /// this round's plan.
    pub fn on_secagg_report(
        &mut self,
        device: DeviceId,
        now_ms: u64,
        field: &[u64],
        weight: u64,
        loss: f64,
        accuracy: f64,
    ) -> Result<ReportResponse, CoreError> {
        let response = self.state.on_report(device, now_ms);
        // Upload bandwidth is spent whether or not the server keeps it:
        // 8 bytes per field coordinate.
        if !field.is_empty() {
            self.traffic_delta
                .record(TrafficKind::Update, field.len() * 8);
        }
        self.traffic_delta.record(TrafficKind::Metrics, 32);
        if response == ReportResponse::Accepted {
            if self.task.kind == TaskKind::Training && !self.external_aggregation {
                self.master
                    .as_mut()
                    .ok_or_else(|| {
                        CoreError::InvariantViolated("training round has no aggregator".into())
                    })?
                    .accept_field(device, field, weight)?;
            }
            self.loss_summary.push(loss);
            self.accuracy_summary.push(accuracy);
        }
        Ok(response)
    }

    /// Detaches the round's [`MasterAggregator`] so it can run as an actor
    /// tree (the paper's Coordinator → Master Aggregator → Aggregators
    /// topology, Sec. 4.1). After detaching, the caller owns routing
    /// accepted training reports to the detached aggregator, and the round
    /// must be completed via
    /// [`Coordinator::complete_round_external`]. Returns `None` if already
    /// detached (or never built — evaluation reuse).
    pub fn detach_master(&mut self) -> Option<MasterAggregator> {
        let master = self.master.take();
        if master.is_some() {
            self.external_aggregation = true;
        }
        master
    }

    /// Devices that vanished after advertising keys (needed at external
    /// finalize time).
    pub fn advertise_dropouts(&self) -> &[DeviceId] {
        &self.advertise_dropouts
    }

    /// Devices that vanished after sharing keys (needed at external
    /// finalize time).
    pub fn share_dropouts(&self) -> &[DeviceId] {
        &self.share_dropouts
    }

    /// A device dropped out. Without stage information the conservative
    /// assumption is post-share: its masks must be recovered.
    pub fn on_dropout(&mut self, device: DeviceId, now_ms: u64) {
        self.on_dropout_staged(device, now_ms, DropStage::Share);
    }

    /// A device dropped out at a known SecAgg protocol stage.
    pub fn on_dropout_staged(&mut self, device: DeviceId, now_ms: u64, stage: DropStage) {
        self.state.on_dropout(device, now_ms);
        match stage {
            DropStage::Advertise => self.advertise_dropouts.push(device),
            DropStage::Share => self.share_dropouts.push(device),
        }
    }

    /// Records participation-time metrics once the round has finished.
    pub fn record_participation_metrics(&mut self) {
        let times: Vec<u64> = self
            .state
            .participation_times()
            .iter()
            .map(|(_, _, t)| *t)
            .collect();
        for t in times {
            self.train_time_summary.push(t as f64);
        }
    }

    /// The traffic recorded so far in this round.
    pub fn traffic(&self) -> &TrafficCounter {
        &self.traffic_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::InMemoryCheckpointStore;
    use fl_core::plan::{CodecSpec, ModelSpec};
    use fl_core::population::TaskSelectionStrategy;
    use fl_core::round::RoundConfig;

    fn spec() -> ModelSpec {
        ModelSpec::Logistic {
            dim: 4,
            classes: 2,
            seed: 0,
        }
    }

    fn small_round() -> RoundConfig {
        RoundConfig {
            goal_count: 3,
            overselection: 1.34,
            min_goal_fraction: 0.67,
            selection_timeout_ms: 10_000,
            report_window_ms: 30_000,
            device_cap_ms: 25_000,
        }
    }

    fn deployed_coordinator() -> Coordinator<InMemoryCheckpointStore> {
        let mut c = Coordinator::new(
            CoordinatorConfig::new("test/pop", 1),
            InMemoryCheckpointStore::new(),
        );
        let task = FlTask::training("train", "test/pop").with_round(small_round());
        let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        let group = TaskGroup::new(vec![task], TaskSelectionStrategy::Single);
        let init = vec![0.0f32; spec().num_params()];
        c.deploy(group, vec![plan], init).unwrap();
        c
    }

    fn run_one_round(c: &mut Coordinator<InMemoryCheckpointStore>) -> fl_core::RoundOutcome {
        let mut round = c.begin_round(0).unwrap();
        // 4 devices check in (target = ceil(3 × 1.34) = 5? no: 4.02 → 5).
        let target = round.task.round.selection_target();
        for i in 0..target {
            round.on_checkin(DeviceId(i as u64), 100);
        }
        let devices = round.state.participants();
        let dim = round.plan.server.expected_dim;
        let update = vec![0.5f32; dim];
        let bytes = CodecSpec::Identity.build().encode(&update);
        for d in devices.iter().take(3) {
            round
                .on_report(*d, 5_000, &bytes, 10, 0.7, 0.6)
                .unwrap();
        }
        round.on_tick(40_000);
        round.record_participation_metrics();
        c.complete_round(round).unwrap()
    }

    #[test]
    fn committed_round_updates_checkpoint_once() {
        let mut c = deployed_coordinator();
        let writes_before = c.store().write_count();
        let outcome = run_one_round(&mut c);
        assert!(outcome.is_committed());
        // Exactly ONE write per committed round — per-device updates are
        // never persisted (Sec. 4.2).
        assert_eq!(c.store().write_count(), writes_before + 1);
        let params = c.global_params("train").unwrap();
        // Each update 0.5 with weight 10: mean delta 0.05.
        for p in params {
            assert!((p - 0.05).abs() < 1e-5);
        }
    }

    #[test]
    fn round_ids_advance_on_commit() {
        let mut c = deployed_coordinator();
        run_one_round(&mut c);
        assert_eq!(c.store().latest("train").unwrap().round, RoundId(1));
        run_one_round(&mut c);
        assert_eq!(c.store().latest("train").unwrap().round, RoundId(2));
    }

    #[test]
    fn abandoned_round_commits_nothing() {
        let mut c = deployed_coordinator();
        let mut round = c.begin_round(0).unwrap();
        round.on_checkin(DeviceId(0), 100); // one device only
        round.on_tick(10_000); // selection timeout, below minimum
        let outcome = c.complete_round(round).unwrap();
        assert!(!outcome.is_committed());
        assert_eq!(c.store().latest("train").unwrap().round, RoundId(0));
    }

    #[test]
    fn traffic_shows_download_dominance() {
        let mut c = deployed_coordinator();
        run_one_round(&mut c);
        let t = c.traffic();
        assert!(t.download_bytes() > 0 && t.upload_bytes() > 0);
        // Plan ≈ model and both downloaded per device; uploads are one
        // update per reporting device.
        assert!(t.asymmetry() > 1.0, "asymmetry {}", t.asymmetry());
    }

    #[test]
    fn metrics_are_materialized_per_committed_round() {
        let mut c = deployed_coordinator();
        run_one_round(&mut c);
        let m = c.materialized_metrics();
        assert_eq!(m.len(), 1);
        let (task, round, summaries) = &m[0];
        assert_eq!(task, "train");
        assert_eq!(*round, RoundId(1));
        assert_eq!(summaries[0].name, "loss");
        assert_eq!(summaries[0].moments.count(), 3);
    }

    #[test]
    fn alternating_strategy_runs_eval_rounds() {
        let mut c = Coordinator::new(
            CoordinatorConfig::new("pop", 2),
            InMemoryCheckpointStore::new(),
        );
        let train = FlTask::training("train", "pop").with_round(small_round());
        let eval = FlTask::evaluation("eval", "pop").with_round(small_round());
        let tplan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        let eplan = FlPlan::standard_evaluation(spec());
        let group = TaskGroup::new(
            vec![train, eval],
            TaskSelectionStrategy::AlternateTrainEval { train_rounds: 1 },
        );
        c.deploy(group, vec![tplan, eplan], vec![0.0; spec().num_params()])
            .unwrap();
        let r1 = c.begin_round(0).unwrap();
        assert_eq!(r1.task.kind, TaskKind::Training);
        c.complete_round_discard(r1);
        let r2 = c.begin_round(0).unwrap();
        assert_eq!(r2.task.kind, TaskKind::Evaluation);
    }

    impl Coordinator<InMemoryCheckpointStore> {
        /// Test helper: abandon an active round without finishing it.
        fn complete_round_discard(&mut self, _round: ActiveRound) {}
    }

    /// Regression: a respawned coordinator re-deploying the same task must
    /// resume from the committed model, not clobber it with the initial
    /// parameters (pre-fix, `deploy` unconditionally committed RoundId(0)
    /// with the init params, losing the trained model and inflating the
    /// write counter).
    #[test]
    fn redeploy_resumes_from_committed_checkpoint() {
        let mut c = deployed_coordinator();
        run_one_round(&mut c);
        let trained = c.global_params("train").unwrap();
        assert_eq!(c.store().latest("train").unwrap().round, RoundId(1));
        let store = c.into_store();
        let writes_before = store.write_count();

        // Respawn: a fresh Coordinator over the surviving store.
        let mut c2 = Coordinator::new(CoordinatorConfig::new("test/pop", 1), store);
        let task = FlTask::training("train", "test/pop").with_round(small_round());
        let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        let group = TaskGroup::new(vec![task], TaskSelectionStrategy::Single);
        c2.deploy(group, vec![plan], vec![0.0f32; spec().num_params()])
            .unwrap();
        // No extra write; the trained model and round id survive.
        assert_eq!(c2.store().write_count(), writes_before);
        assert_eq!(c2.global_params("train").unwrap(), trained);
        assert_eq!(c2.store().latest("train").unwrap().round, RoundId(1));
        // The next round builds on the trained model.
        let round = c2.begin_round(0).unwrap();
        assert_eq!(round.checkpoint.round, RoundId(1));
        assert_eq!(round.state.round, RoundId(2));
    }

    /// The external-aggregation path (master detached and driven outside
    /// the coordinator, as the live actor tree does) commits identical
    /// bytes to the inline path, with the same one-write invariant.
    #[test]
    fn external_aggregation_commits_identically_to_inline() {
        let mut inline = deployed_coordinator();
        assert!(run_one_round(&mut inline).is_committed());

        let mut external = deployed_coordinator();
        let mut round = external.begin_round(0).unwrap();
        let target = round.task.round.selection_target();
        for i in 0..target {
            round.on_checkin(DeviceId(i as u64), 100);
        }
        let mut master = round.detach_master().expect("round built a master");
        assert!(round.detach_master().is_none(), "detach is one-shot");
        let devices = round.state.participants();
        let dim = round.plan.server.expected_dim;
        let bytes = CodecSpec::Identity.build().encode(&vec![0.5f32; dim]);
        for d in devices.iter().take(3) {
            // Protocol accounting stays in the round; the update bytes
            // flow to the detached aggregator.
            round.on_report(*d, 5_000, &bytes, 10, 0.7, 0.6).unwrap();
            master.accept(*d, &bytes, 10).unwrap();
        }
        round.on_tick(40_000);
        round.record_participation_metrics();
        let aggregate = master
            .finalize(
                round.checkpoint.params(),
                round.advertise_dropouts(),
                round.share_dropouts(),
            )
            .map(|out| (out.params, out.contributors))
            .map_err(|e| CoreError::MalformedCheckpoint(e.to_string()));
        let outcome = external
            .complete_round_external(round, Some(aggregate))
            .unwrap();
        assert!(outcome.is_committed());
        assert_eq!(
            external.global_params("train").unwrap(),
            inline.global_params("train").unwrap()
        );
        assert_eq!(external.store().write_count(), 2); // init + one commit
    }

    /// A committed training round completed externally without an
    /// aggregate is an invariant violation, not a silent empty commit.
    #[test]
    fn external_completion_requires_an_aggregate() {
        let mut c = deployed_coordinator();
        let mut round = c.begin_round(0).unwrap();
        let target = round.task.round.selection_target();
        for i in 0..target {
            round.on_checkin(DeviceId(i as u64), 100);
        }
        round.detach_master();
        let devices = round.state.participants();
        let dim = round.plan.server.expected_dim;
        let bytes = CodecSpec::Identity.build().encode(&vec![0.5f32; dim]);
        for d in devices.iter().take(3) {
            round.on_report(*d, 5_000, &bytes, 10, 0.7, 0.6).unwrap();
        }
        round.on_tick(40_000);
        let err = c.complete_round_external(round, None).unwrap_err();
        assert!(matches!(err, CoreError::InvariantViolated(_)));
    }

    fn deployed_faulty_coordinator(
        fail_on: impl IntoIterator<Item = u64>,
    ) -> Coordinator<crate::storage::FaultyCheckpointStore<InMemoryCheckpointStore>> {
        let mut c = Coordinator::new(
            CoordinatorConfig::new("test/pop", 1),
            crate::storage::FaultyCheckpointStore::new(InMemoryCheckpointStore::new(), fail_on),
        );
        let task = FlTask::training("train", "test/pop").with_round(small_round());
        let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        let group = TaskGroup::new(vec![task], TaskSelectionStrategy::Single);
        c.deploy(group, vec![plan], vec![0.0f32; spec().num_params()])
            .unwrap();
        c
    }

    fn deployed_secagg_coordinator() -> Coordinator<InMemoryCheckpointStore> {
        let mut c = Coordinator::new(
            CoordinatorConfig::new("test/pop", 1),
            InMemoryCheckpointStore::new(),
        );
        let task = FlTask::training("train", "test/pop")
            .with_round(small_round())
            .with_secagg(2);
        let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        let group = TaskGroup::new(vec![task], TaskSelectionStrategy::Single);
        c.deploy(group, vec![plan], vec![0.0f32; spec().num_params()])
            .unwrap();
        c
    }

    /// SecAgg reports (fixed-point field vectors) through the inline
    /// coordinator path commit the same model as clear reports within
    /// quantization error, while uploading 8 bytes per coordinate — the
    /// SecAgg bandwidth premium is measured, not assumed.
    #[test]
    fn secagg_reports_commit_inline_with_bandwidth_premium() {
        let mut clear = deployed_coordinator();
        run_one_round(&mut clear);
        let clear_params = clear.global_params("train").unwrap();

        let mut c = deployed_secagg_coordinator();
        let mut round = c.begin_round(0).unwrap();
        let target = round.task.round.selection_target();
        for i in 0..target {
            round.on_checkin(DeviceId(i as u64), 100);
        }
        let devices = round.state.participants();
        let dim = round.plan.server.expected_dim;
        let encoder = fl_ml::fixedpoint::FixedPointEncoder::default_for_updates();
        let field = encoder.encode(&vec![0.5f32; dim]).unwrap();
        for d in devices.iter().take(3) {
            let r = round
                .on_secagg_report(*d, 5_000, &field, 10, 0.7, 0.6)
                .unwrap();
            assert_eq!(r, ReportResponse::Accepted);
        }
        round.on_tick(40_000);
        round.record_participation_metrics();
        let upload = round.traffic().upload_bytes();
        assert!(
            upload >= 3 * dim as u64 * 8,
            "secagg upload premium missing: {upload} bytes for {dim} params"
        );
        let outcome = c.complete_round(round).unwrap();
        assert!(outcome.is_committed());
        let params = c.global_params("train").unwrap();
        for (a, b) in params.iter().zip(&clear_params) {
            assert!((a - b).abs() < 1e-3, "secagg {a} vs clear {b}");
        }
    }

    /// Stage-tagged dropouts land in their respective lists and flow to
    /// the master at finalize.
    #[test]
    fn staged_dropouts_route_to_their_lists() {
        let mut c = deployed_secagg_coordinator();
        let mut round = c.begin_round(0).unwrap();
        let target = round.task.round.selection_target();
        for i in 0..target {
            round.on_checkin(DeviceId(i as u64), 100);
        }
        round.on_dropout_staged(DeviceId(0), 1_000, DropStage::Advertise);
        round.on_dropout(DeviceId(1), 2_000);
        assert_eq!(round.advertise_dropouts(), &[DeviceId(0)]);
        assert_eq!(round.share_dropouts(), &[DeviceId(1)]);
    }

    /// Sec. 4.2: a failed checkpoint write loses the round's result but
    /// must not corrupt coordinator state — round ids and metrics stay
    /// put, and the next round retries from the last good checkpoint.
    #[test]
    fn storage_failure_loses_round_but_keeps_state_consistent() {
        // Attempt 1 is deploy's initial write; attempt 2 (first round
        // commit) fails.
        let mut c = deployed_faulty_coordinator([2]);

        let run = |c: &mut Coordinator<_>| -> Result<fl_core::RoundOutcome, CoreError> {
            let mut round = c.begin_round(0)?;
            let target = round.task.round.selection_target();
            for i in 0..target {
                round.on_checkin(DeviceId(i as u64), 100);
            }
            let devices = round.state.participants();
            let dim = round.plan.server.expected_dim;
            let bytes = CodecSpec::Identity.build().encode(&vec![0.5f32; dim]);
            for d in devices.iter().take(3) {
                round.on_report(*d, 5_000, &bytes, 10, 0.7, 0.6)?;
            }
            round.on_tick(40_000);
            c.complete_round(round)
        };

        let err = run(&mut c).unwrap_err();
        assert!(matches!(err, CoreError::StorageFailure(_)));
        // The round is lost: nothing advanced, no metrics materialized.
        assert_eq!(c.store().latest("train").unwrap().round, RoundId(0));
        assert_eq!(c.store().write_count(), 1);
        assert!(c.materialized_metrics().is_empty());
        // The retry (attempt 3, unscripted) succeeds from checkpoint 0.
        let outcome = run(&mut c).unwrap();
        assert!(outcome.is_committed());
        assert_eq!(c.store().latest("train").unwrap().round, RoundId(1));
        assert_eq!(c.store().write_count(), 2);
        assert_eq!(c.materialized_metrics().len(), 1);
    }
}
