//! Adaptive round time windows (Sec. 11, *Convergence Time*).
//!
//! "The time windows to select devices for training and wait for their
//! reporting is currently configured statically per FL population. It
//! should be dynamically adjusted to reduce the drop out rate and
//! increase round frequency."
//!
//! [`WindowTuner`] implements that future-work direction with machinery
//! the platform already has: it folds every round's device reporting
//! times into P² quantile sketches (the same approximate order statistics
//! the metrics layer uses, Sec. 7.4) and retunes the reporting window and
//! participation cap so that
//!
//! * the window covers the observed p95 reporting time plus margin (few
//!   devices rejected late → lower drop-out/reject rate), and
//! * it is no longer than necessary (stragglers cut earlier → higher
//!   round frequency).

use fl_core::round::RoundConfig;
use fl_ml::metrics::P2Quantile;

/// Bounds and margins for the tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerConfig {
    /// Multiplicative headroom over the observed p95 reporting time.
    pub margin: f64,
    /// Lower bound for the reporting window (ms).
    pub min_window_ms: u64,
    /// Upper bound for the reporting window (ms).
    pub max_window_ms: u64,
    /// Rounds of data required before the first adjustment.
    pub warmup_rounds: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            margin: 1.3,
            min_window_ms: 30_000,
            max_window_ms: 30 * 60_000,
            warmup_rounds: 3,
        }
    }
}

/// Online tuner for a task's round time windows.
#[derive(Debug, Clone)]
pub struct WindowTuner {
    config: TunerConfig,
    p50: P2Quantile,
    p95: P2Quantile,
    rounds_observed: u64,
}

impl WindowTuner {
    /// Creates a tuner.
    pub fn new(config: TunerConfig) -> Self {
        WindowTuner {
            config,
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            rounds_observed: 0,
        }
    }

    /// Folds one finished round's per-device participation times in.
    pub fn observe_round<I: IntoIterator<Item = u64>>(&mut self, participation_times_ms: I) {
        for t in participation_times_ms {
            let t = t as f64;
            self.p50.push(t);
            self.p95.push(t);
        }
        self.rounds_observed += 1;
    }

    /// Rounds observed so far.
    pub fn rounds_observed(&self) -> u64 {
        self.rounds_observed
    }

    /// Current p95 estimate of device reporting time (ms).
    pub fn p95_ms(&self) -> Option<f64> {
        self.p95.estimate()
    }

    /// Produces the tuned configuration for the next round: the reporting
    /// window tracks `p95 × margin` (clamped), and the participation cap
    /// stays just inside the window. Returns the input unchanged during
    /// warm-up.
    pub fn tuned(&self, base: &RoundConfig) -> RoundConfig {
        if self.rounds_observed < self.config.warmup_rounds {
            return *base;
        }
        let Some(p95) = self.p95.estimate() else {
            return *base;
        };
        let window = ((p95 * self.config.margin) as u64)
            .clamp(self.config.min_window_ms, self.config.max_window_ms);
        RoundConfig {
            report_window_ms: window,
            device_cap_ms: window.saturating_sub(window / 10).max(1),
            ..*base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> RoundConfig {
        RoundConfig {
            goal_count: 100,
            overselection: 1.3,
            min_goal_fraction: 0.8,
            selection_timeout_ms: 60_000,
            report_window_ms: 10 * 60_000, // static 10 min
            device_cap_ms: 9 * 60_000,
            ..RoundConfig::default()
        }
    }

    /// Reporting times concentrated around 2 min → the tuner shrinks a
    /// 10-minute static window toward ~3 min, increasing round frequency.
    #[test]
    fn fast_fleet_shrinks_the_window() {
        let mut tuner = WindowTuner::new(TunerConfig::default());
        let mut rng = fl_ml::rng::seeded(1);
        for _ in 0..10 {
            let times: Vec<u64> = (0..100)
                .map(|_| (120_000.0 + fl_ml::rng::normal_with_std(&mut rng, 20_000.0)) as u64)
                .collect();
            tuner.observe_round(times);
        }
        let tuned = tuner.tuned(&base());
        assert!(
            tuned.report_window_ms < 5 * 60_000,
            "window {} ms not shrunk",
            tuned.report_window_ms
        );
        assert!(tuned.report_window_ms >= 30_000);
        assert!(tuned.device_cap_ms < tuned.report_window_ms);
        assert!(tuned.validate().is_ok());
    }

    /// Slow devices (p95 near the static window) → the tuner widens to
    /// reduce late-upload rejections.
    #[test]
    fn slow_fleet_widens_the_window() {
        let mut tuner = WindowTuner::new(TunerConfig::default());
        let mut rng = fl_ml::rng::seeded(2);
        for _ in 0..10 {
            let times: Vec<u64> = (0..100)
                .map(|_| (11.0 * 60_000.0 + fl_ml::rng::normal_with_std(&mut rng, 60_000.0)) as u64)
                .collect();
            tuner.observe_round(times);
        }
        let tuned = tuner.tuned(&base());
        assert!(
            tuned.report_window_ms > 10 * 60_000,
            "window {} ms not widened",
            tuned.report_window_ms
        );
    }

    #[test]
    fn warmup_leaves_config_untouched() {
        let mut tuner = WindowTuner::new(TunerConfig::default());
        tuner.observe_round([1_000, 2_000]);
        assert_eq!(tuner.tuned(&base()), base());
        assert_eq!(tuner.rounds_observed(), 1);
    }

    #[test]
    fn bounds_are_respected() {
        let mut tuner = WindowTuner::new(TunerConfig::default());
        for _ in 0..5 {
            tuner.observe_round([1u64; 50]); // absurdly fast
        }
        assert_eq!(tuner.tuned(&base()).report_window_ms, 30_000);
        let mut tuner = WindowTuner::new(TunerConfig::default());
        for _ in 0..5 {
            tuner.observe_round([10 * 3_600_000u64; 50]); // absurdly slow
        }
        assert_eq!(tuner.tuned(&base()).report_window_ms, 30 * 60_000);
    }

}
