//! Aggregators and the Master Aggregator (Sec. 4.2, Sec. 6).
//!
//! "Master Aggregators manage the rounds of each FL task. In order to
//! scale with the number of devices and update size, they make dynamic
//! decisions to spawn one or more Aggregators to which work is delegated."
//!
//! Each [`AggregatorShard`] folds incoming updates into a streaming
//! [`FedAvgAccumulator`]; nothing per-device is retained. When Secure
//! Aggregation is enabled, "we run an instance of Secure Aggregation on
//! each Aggregator actor to aggregate inputs from that Aggregator's
//! devices into an intermediate sum; FL tasks define a parameter k so that
//! all updates are securely aggregated over groups of size at least k. The
//! Master Aggregator then further aggregates the intermediate aggregators'
//! results into a final aggregate for the round, without Secure
//! Aggregation."

use crossbeam::channel::{unbounded, Sender};
use fl_actors::{Actor, ActorRef, Context as ActorContext, Flow};
use fl_core::aggregation::FedAvgAccumulator;
use fl_core::plan::CodecSpec;
use fl_core::privacy::DpConfig;
use fl_core::{CoreError, DeviceId};
use fl_ml::fixedpoint::FixedPointEncoder;
use fl_ml::optim::WeightedUpdate;
use fl_secagg::protocol::{run_instance, SecAggConfig};
use fl_secagg::SecAggError;
use std::collections::BTreeMap;

/// How a Master Aggregator shards a round's devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationPlan {
    /// Update dimension.
    pub dim: usize,
    /// Maximum devices handled by one Aggregator shard.
    pub max_per_shard: usize,
    /// Secure Aggregation minimum group size `k`; `None` = plain
    /// aggregation.
    pub secagg_k: Option<usize>,
    /// Server-side DP-FedAvg: clip every update at the shard, perturb the
    /// final sum at the master (Sec. 6, footnote 2).
    pub dp: Option<DpConfig>,
}

impl AggregationPlan {
    /// Plain aggregation with the given shard capacity.
    pub fn plain(dim: usize, max_per_shard: usize) -> Self {
        AggregationPlan {
            dim,
            max_per_shard,
            secagg_k: None,
            dp: None,
        }
    }

    /// Adds the DP-FedAvg mechanism to this plan.
    pub fn with_dp(mut self, dp: DpConfig) -> Self {
        self.dp = Some(dp);
        self
    }

    /// Secure aggregation over groups of at least `k`.
    pub fn with_secagg(dim: usize, max_per_shard: usize, k: usize) -> Self {
        AggregationPlan {
            dim,
            max_per_shard,
            secagg_k: Some(k),
            dp: None,
        }
    }

    /// Number of shards the Master Aggregator spawns for `expected`
    /// devices (dynamic decision, Sec. 4.2). At least one; with SecAgg the
    /// shard size must stay ≥ k so every group meets the minimum.
    pub fn shard_count(&self, expected: usize) -> usize {
        let by_capacity = expected.div_ceil(self.max_per_shard.max(1)).max(1);
        if let Some(k) = self.secagg_k {
            // Don't create shards smaller than k.
            let max_shards = (expected / k.max(1)).max(1);
            by_capacity.min(max_shards)
        } else {
            by_capacity
        }
    }
}

/// One ephemeral Aggregator: a streaming accumulator for its assigned
/// devices. Plain mode folds decoded updates immediately; SecAgg mode
/// buffers *fixed-point-encoded masked contributions* via the secagg
/// protocol run at shard close.
#[derive(Debug)]
pub struct AggregatorShard {
    accumulator: FedAvgAccumulator,
    codec: CodecSpec,
    /// L2 clip applied to each decoded update (DP-FedAvg).
    clip_norm: Option<f32>,
    /// SecAgg staging: device → (clear update kept only on the device side
    /// of the simulation; the shard records the *encoded field vector* it
    /// would receive masked). `None` in plain mode.
    secagg_inputs: Option<BTreeMap<DeviceId, Vec<u64>>>,
    /// The task's minimum SecAgg group size `k`; the shard aborts its
    /// round if dropouts leave its group smaller. `None` in plain mode.
    secagg_k: Option<usize>,
    encoder: FixedPointEncoder,
    dim: usize,
}

impl AggregatorShard {
    /// Creates a shard; `secagg` carries the task's minimum group size
    /// `k` when Secure Aggregation is enabled.
    pub fn new(dim: usize, codec: CodecSpec, secagg: Option<usize>) -> Self {
        AggregatorShard::with_clip(dim, codec, secagg, None)
    }

    /// Creates a shard with an optional DP clip norm.
    pub fn with_clip(
        dim: usize,
        codec: CodecSpec,
        secagg: Option<usize>,
        clip_norm: Option<f32>,
    ) -> Self {
        AggregatorShard {
            accumulator: FedAvgAccumulator::new(dim),
            codec,
            clip_norm,
            secagg_inputs: secagg.map(|_| BTreeMap::new()),
            secagg_k: secagg,
            encoder: FixedPointEncoder::default_for_updates(),
            dim,
        }
    }

    /// Number of devices folded/staged so far.
    pub fn contributors(&self) -> usize {
        match &self.secagg_inputs {
            Some(staged) => staged.len(),
            None => self.accumulator.contributors(),
        }
    }

    /// Accepts one device's *encoded* update bytes plus its weight.
    ///
    /// Plain mode: decode and fold immediately (streaming, in-memory).
    /// SecAgg mode: fixed-point-encode `update ‖ weight` into the field
    /// and stage it for the protocol run.
    ///
    /// # Errors
    ///
    /// Decode failures or dimension mismatches.
    pub fn accept(
        &mut self,
        device: DeviceId,
        update_bytes: &[u8],
        weight: u64,
    ) -> Result<(), CoreError> {
        let mut delta = self
            .codec
            .build()
            .decode(update_bytes, self.dim)
            .map_err(|e| CoreError::MalformedCheckpoint(e.to_string()))?;
        if let Some(clip) = self.clip_norm {
            // DP-FedAvg: bound each device's contribution before it joins
            // the (ephemeral) aggregate. Done identically on the SecAgg
            // path, where the device would clip before masking.
            fl_core::privacy::clip_l2(&mut delta, clip);
        }
        match &mut self.secagg_inputs {
            None => self.accumulator.accumulate(WeightedUpdate { delta, weight }),
            Some(staged) => {
                // Field vector: encoded delta coordinates plus the weight
                // appended as one extra (integral) coordinate.
                let mut v = self
                    .encoder
                    .encode(&delta)
                    .map_err(|e| CoreError::MalformedCheckpoint(e.to_string()))?;
                v.push(weight % fl_secagg::field::PRIME);
                staged.insert(device, v);
                Ok(())
            }
        }
    }

    /// Accepts one device's *already fixed-point-encoded* field vector —
    /// the masked-contribution payload a [`fl_wire::WireMessage::SecAggReport`]
    /// carries — plus its weight. SecAgg mode only.
    ///
    /// # Errors
    ///
    /// Dimension mismatches, or a field vector offered to a plain shard.
    pub fn accept_field(
        &mut self,
        device: DeviceId,
        field: &[u64],
        weight: u64,
    ) -> Result<(), CoreError> {
        let Some(staged) = &mut self.secagg_inputs else {
            return Err(CoreError::MalformedCheckpoint(
                "field vector offered to a plain (non-SecAgg) shard".to_string(),
            ));
        };
        if field.len() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                actual: field.len(),
            });
        }
        let mut v: Vec<u64> = field
            .iter()
            .map(|&x| x % fl_secagg::field::PRIME)
            .collect();
        v.push(weight % fl_secagg::field::PRIME);
        staged.insert(device, v);
        Ok(())
    }

    /// Closes the shard and returns its intermediate accumulator.
    ///
    /// In SecAgg mode this runs the four-round protocol over the staged
    /// devices (each a simulated client): `advertise_dropouts` vanish
    /// after advertising keys (cheap exclusion, no recovery needed) and
    /// `share_dropouts` vanish after sharing (their pairwise masks are
    /// reconstructed from the survivors' shares). The shard decodes the
    /// unmasked *sum* — the server-side code path never touches an
    /// individual update.
    ///
    /// # Errors
    ///
    /// [`ShardError::BelowThreshold`] when dropouts strand the group
    /// below the task minimum `k` or below the protocol's reconstruction
    /// threshold — a clean per-shard abort, never a silent mis-sum.
    /// Other SecAgg protocol failures surface as [`ShardError::SecAgg`].
    pub fn close(
        self,
        advertise_dropouts: &[DeviceId],
        share_dropouts: &[DeviceId],
        secagg_seed: u64,
    ) -> Result<FedAvgAccumulator, ShardError> {
        match self.secagg_inputs {
            None => Ok(self.accumulator),
            Some(staged) => {
                let devices: Vec<DeviceId> = staged.keys().copied().collect();
                let n = devices.len();
                if n == 0 {
                    return Ok(self.accumulator);
                }
                let position = |d: &DeviceId| {
                    devices.iter().position(|x| x == d).map(|i| i as u32)
                };
                let adv_set: std::collections::BTreeSet<u32> =
                    advertise_dropouts.iter().filter_map(position).collect();
                let share_set: std::collections::BTreeSet<u32> = share_dropouts
                    .iter()
                    .filter_map(position)
                    .filter(|i| !adv_set.contains(i))
                    .collect();
                let alive = n - adv_set.len() - share_set.len();
                // Sticky device→shard routing can strand a group below
                // the task minimum k after dropouts (Sec. 6). That is a
                // typed per-shard abort: the round commits from the
                // surviving ≥ k groups only.
                if let Some(k) = self.secagg_k {
                    if alive < k {
                        return Err(ShardError::BelowThreshold { alive, required: k });
                    }
                }
                // Threshold: 2/3 of the group, at least 2 (the paper's
                // protocol is robust to a significant fraction dropping).
                let threshold = ((2 * n).div_ceil(3)).max(2).min(n);
                let config = SecAggConfig::new(threshold, self.dim + 1);
                let inputs: Vec<Vec<u64>> = devices.iter().map(|d| staged[d].clone()).collect();
                let adv_idx: Vec<u32> = adv_set.into_iter().collect();
                let share_idx: Vec<u32> = share_set.into_iter().collect();
                let sum = run_instance(config, &inputs, &adv_idx, &share_idx, secagg_seed)
                    .map_err(|e| match e {
                        SecAggError::BelowThreshold { alive, threshold } => {
                            ShardError::BelowThreshold {
                                alive,
                                required: threshold,
                            }
                        }
                        other => ShardError::SecAgg(other),
                    })?;
                let committed = alive;
                let weight_sum = sum[self.dim];
                let delta_sum = self
                    .encoder
                    .decode_sum(&sum[..self.dim], committed as u64);
                let mut acc = FedAvgAccumulator::new(self.dim);
                acc.accumulate_presummed(&delta_sum, weight_sum, committed)
                    .map_err(ShardError::Core)?;
                Ok(acc)
            }
        }
    }
}

/// At which SecAgg protocol stage a device vanished (Sec. 6): an
/// advertise-stage dropout is excluded cheaply before masks exist, while
/// a share-stage dropout's pairwise masks must be reconstructed from the
/// survivors' Shamir shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropStage {
    /// Dropped after advertising keys, before sharing them.
    Advertise,
    /// Dropped after sharing keys (the expensive recovery path).
    Share,
}

/// Errors from closing a shard.
#[derive(Debug)]
pub enum ShardError {
    /// Dropouts left the shard's SecAgg group with fewer live devices
    /// than required (the task minimum `k`, or the protocol's
    /// reconstruction threshold). The shard aborts cleanly; the round
    /// commits from the surviving shards.
    BelowThreshold {
        /// Devices still alive in the group.
        alive: usize,
        /// The minimum the group needed.
        required: usize,
    },
    /// The Secure Aggregation protocol failed for a non-threshold reason.
    SecAgg(SecAggError),
    /// Aggregation error.
    Core(CoreError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::BelowThreshold { alive, required } => write!(
                f,
                "secagg group below threshold: {alive} alive, {required} required; shard aborted"
            ),
            ShardError::SecAgg(e) => write!(f, "secure aggregation failed: {e}"),
            ShardError::Core(e) => write!(f, "aggregation failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// A committed round's result from the Master Aggregator: the new
/// parameters plus how the shards fared.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// New global parameters after applying the merged average.
    pub params: Vec<f32>,
    /// Devices whose contributions made the commit.
    pub contributors: usize,
    /// SecAgg shards whose group fell below threshold and were excluded
    /// from the merge (Sec. 6: the round commits from the surviving
    /// ≥ k groups only).
    pub shard_aborts: usize,
}

/// The Master Aggregator: routes devices to shards, merges intermediate
/// results, applies the final average.
#[derive(Debug)]
pub struct MasterAggregator {
    plan: AggregationPlan,
    codec: CodecSpec,
    shards: Vec<AggregatorShard>,
    /// device → shard index.
    routing: BTreeMap<DeviceId, usize>,
    secagg_seed: u64,
}

impl MasterAggregator {
    /// Creates a master for an expected number of devices, spawning shards
    /// per the plan.
    pub fn new(plan: AggregationPlan, codec: CodecSpec, expected: usize, secagg_seed: u64) -> Self {
        let count = plan.shard_count(expected);
        let clip = plan.dp.map(|dp| dp.clip_norm);
        let shards = (0..count)
            .map(|_| AggregatorShard::with_clip(plan.dim, codec, plan.secagg_k, clip))
            .collect();
        MasterAggregator {
            plan,
            codec,
            shards,
            routing: BTreeMap::new(),
            secagg_seed,
        }
    }

    /// Number of shards spawned.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Accepts one device report, routing it to the device's shard
    /// (devices stick to one shard — one SecAgg instance each).
    ///
    /// # Errors
    ///
    /// Decode/dimension errors from the shard.
    pub fn accept(
        &mut self,
        device: DeviceId,
        update_bytes: &[u8],
        weight: u64,
    ) -> Result<(), CoreError> {
        let idx = *self
            .routing
            .entry(device)
            .or_insert_with(|| (device.0 % self.shards.len() as u64) as usize);
        self.shards[idx].accept(device, update_bytes, weight)
    }

    /// Accepts one device's pre-encoded SecAgg field vector, routing it
    /// to the device's shard exactly as [`MasterAggregator::accept`]
    /// would the clear bytes.
    ///
    /// # Errors
    ///
    /// Dimension errors from the shard, or SecAgg not enabled.
    pub fn accept_field(
        &mut self,
        device: DeviceId,
        field: &[u64],
        weight: u64,
    ) -> Result<(), CoreError> {
        let idx = *self
            .routing
            .entry(device)
            .or_insert_with(|| (device.0 % self.shards.len() as u64) as usize);
        self.shards[idx].accept_field(device, field, weight)
    }

    /// Total devices accepted across shards.
    pub fn contributors(&self) -> usize {
        self.shards.iter().map(AggregatorShard::contributors).sum()
    }

    /// Closes all shards (running SecAgg per shard when enabled), merges
    /// the intermediate accumulators "without Secure Aggregation", and
    /// returns the new global parameters plus the per-shard abort count.
    ///
    /// A shard whose SecAgg group fell below threshold aborts cleanly
    /// and is excluded — the round still commits from the surviving
    /// shards. Only non-threshold protocol failures fail the round.
    ///
    /// # Errors
    ///
    /// [`ShardError::BelowThreshold`] when *every* shard aborted,
    /// non-threshold shard failures, or
    /// [`CoreError::ZeroWeightUpdate`] if nothing was aggregated.
    pub fn finalize(
        self,
        current_params: &[f32],
        advertise_dropouts: &[DeviceId],
        share_dropouts: &[DeviceId],
    ) -> Result<MergeOutcome, ShardError> {
        let mut intermediates = Vec::with_capacity(self.shards.len());
        let mut shard_aborts = 0usize;
        let mut last_abort = None;
        for (i, shard) in self.shards.into_iter().enumerate() {
            match shard.close(
                advertise_dropouts,
                share_dropouts,
                shard_seed(self.secagg_seed, i),
            ) {
                Ok(acc) => intermediates.push(acc),
                Err(e @ ShardError::BelowThreshold { .. }) => {
                    shard_aborts += 1;
                    last_abort = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        if intermediates.iter().all(|a| a.contributors() == 0) {
            // Every group aborted (or was empty): surface the abort
            // rather than a generic zero-weight merge error.
            if let Some(e) = last_abort {
                return Err(e);
            }
        }
        let (params, contributors) =
            merge_and_apply(self.plan, self.secagg_seed, intermediates, current_params)?;
        Ok(MergeOutcome {
            params,
            contributors,
            shard_aborts,
        })
    }

    /// The codec used for updates (needed by callers encoding reports).
    pub fn codec(&self) -> CodecSpec {
        self.codec
    }

    /// Decomposes the master into its parts — `(plan, shards, secagg
    /// seed)` — for actor-based driving, where each shard runs on its own
    /// [`AggregatorActor`] thread and the merge happens in the
    /// [`MasterAggregatorActor`].
    pub fn into_parts(self) -> (AggregationPlan, Vec<AggregatorShard>, u64) {
        (self.plan, self.shards, self.secagg_seed)
    }
}

/// The SecAgg seed for shard `index` of a master seeded with
/// `master_seed` (distinct per shard, deterministic per round).
fn shard_seed(master_seed: u64, index: usize) -> u64 {
    master_seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Merges intermediate shard accumulators "without Secure Aggregation",
/// applies optional DP perturbation, and produces the new global
/// parameters — the Master Aggregator's final step, shared by the struct
/// ([`MasterAggregator::finalize`]) and actor
/// ([`MasterAggregatorActor`]) drivers so both commit identical bytes.
fn merge_and_apply(
    plan: AggregationPlan,
    secagg_seed: u64,
    intermediates: Vec<FedAvgAccumulator>,
    current_params: &[f32],
) -> Result<(Vec<f32>, usize), ShardError> {
    let mut merged = FedAvgAccumulator::new(plan.dim);
    for intermediate in intermediates {
        if intermediate.contributors() > 0 {
            merged.merge(&intermediate).map_err(ShardError::Core)?;
        }
    }
    if let Some(dp) = plan.dp {
        // One calibrated Gaussian perturbation of the round's sum.
        let mut noise_rng = fl_ml::rng::seeded(dp.noise_seed ^ secagg_seed);
        merged.perturb(dp.sigma(), &mut noise_rng);
    }
    let contributors = merged.contributors();
    let params = merged.apply_to(current_params).map_err(ShardError::Core)?;
    Ok((params, contributors))
}

/// Messages handled by one [`AggregatorActor`] shard.
#[derive(Debug)]
pub enum ShardMsg {
    /// One device's encoded report for this shard.
    Accept {
        /// The reporting device.
        device: DeviceId,
        /// Codec-encoded update bytes.
        update_bytes: Vec<u8>,
        /// The device's example count (FedAvg weight).
        weight: u64,
    },
    /// One device's fixed-point SecAgg field vector for this shard (the
    /// masked-contribution payload of a
    /// [`fl_wire::WireMessage::SecAggUpdate`]).
    AcceptField {
        /// The reporting device.
        device: DeviceId,
        /// Fixed-point field coordinates (mod the SecAgg prime).
        field: Vec<u64>,
        /// The device's example count (FedAvg weight).
        weight: u64,
    },
    /// Close the shard: run SecAgg (when enabled) minus the staged
    /// dropouts and reply with the intermediate accumulator — or the
    /// typed [`ShardError`] if the group fell below threshold. The actor
    /// stops after replying — shards are ephemeral, they die with the
    /// round.
    Close {
        /// Devices that vanished after advertising keys.
        advertise_dropouts: Vec<DeviceId>,
        /// Devices that vanished after sharing keys.
        share_dropouts: Vec<DeviceId>,
        /// Where to deliver the intermediate accumulator.
        reply: Sender<Result<FedAvgAccumulator, ShardError>>,
    },
}

/// One Aggregator of the paper's actor tree (Sec. 4.1/4.2): an ephemeral
/// actor wrapping an [`AggregatorShard`], spawned by its
/// [`MasterAggregatorActor`] parent at round start and dead by round end.
#[derive(Debug)]
pub struct AggregatorActor {
    shard: Option<AggregatorShard>,
    secagg_seed: u64,
}

impl AggregatorActor {
    /// Wraps a shard with its per-shard SecAgg seed.
    pub fn new(shard: AggregatorShard, secagg_seed: u64) -> Self {
        AggregatorActor {
            shard: Some(shard),
            secagg_seed,
        }
    }
}

impl Actor for AggregatorActor {
    type Msg = ShardMsg;

    fn handle(&mut self, msg: ShardMsg, _ctx: &mut ActorContext<ShardMsg>) -> Flow {
        match msg {
            ShardMsg::Accept {
                device,
                update_bytes,
                weight,
            } => {
                if let Some(shard) = &mut self.shard {
                    // A malformed update is dropped at the shard, exactly
                    // as a decode failure inside one Aggregator loses that
                    // device's contribution without failing the round.
                    let _ = shard.accept(device, &update_bytes, weight);
                }
                Flow::Continue
            }
            ShardMsg::AcceptField {
                device,
                field,
                weight,
            } => {
                if let Some(shard) = &mut self.shard {
                    // Same drop-not-crash semantics as Accept.
                    let _ = shard.accept_field(device, &field, weight);
                }
                Flow::Continue
            }
            ShardMsg::Close {
                advertise_dropouts,
                share_dropouts,
                reply,
            } => {
                if let Some(shard) = self.shard.take() {
                    let result =
                        shard.close(&advertise_dropouts, &share_dropouts, self.secagg_seed);
                    let _ = reply.send(result);
                }
                Flow::Stop
            }
        }
    }
}

/// Messages handled by a [`MasterAggregatorActor`].
///
/// The Coordinator↔Master hop is the Selector↔Aggregator service
/// boundary of the paper's Fig. 3, so both payload-bearing messages are
/// *framed* [`fl_wire::WireMessage`]s rather than in-process structs:
/// the same bytes these mailboxes carry could cross a socket between
/// separately-deployed services. (Master → shard children stay typed
/// [`ShardMsg`]s: the shard subtree is in-process by design, it scales
/// and dies with its master.)
#[derive(Debug)]
pub enum MasterMsg {
    /// A framed [`fl_wire::WireMessage::ShardUpdate`] (clear bytes) or
    /// [`fl_wire::WireMessage::SecAggUpdate`] (fixed-point field
    /// vector): one device's contribution, routed to the device's shard.
    /// Frames that fail to decode lose that contribution, never the
    /// round.
    Update {
        /// The encoded frame.
        frame: Vec<u8>,
    },
    /// A framed [`fl_wire::WireMessage::ShardFinalize`] (plain, or
    /// SecAgg with share-stage dropouts only) or
    /// [`fl_wire::WireMessage::SecAggFinalize`] (stage-tagged dropout
    /// lists): close every shard, merge the survivors' intermediate
    /// sums, apply the round's aggregate, and reply with a framed
    /// [`fl_wire::WireMessage::ShardMerged`] — preceded by one framed
    /// [`fl_wire::WireMessage::ShardAbort`] per SecAgg shard whose group
    /// fell below threshold. The actor (and its shard children) stop
    /// afterwards.
    Finalize {
        /// The encoded frame.
        frame: Vec<u8>,
        /// Where to deliver the encoded reply frames.
        reply: Sender<Vec<u8>>,
    },
    /// The round ended without a commit (abandoned, evaluation-only):
    /// stop, dropping the shard children so they drain and die.
    Abort,
}

/// Encodes a `ShardMerged` reply. The only encode failure is an
/// over-long error string, which degrades to a fixed reason — the reply
/// channel always carries a decodable frame.
fn merged_frame(merged: Result<(Vec<f32>, u64), String>) -> Vec<u8> {
    fl_wire::encode(&fl_wire::WireMessage::ShardMerged { merged })
        .or_else(|_| {
            fl_wire::encode(&fl_wire::WireMessage::ShardMerged {
                merged: Err("merge failed; reason exceeded the wire string limit".to_string()),
            })
        })
        .unwrap_or_default()
}

/// Encodes the (bodyless, infallible) `ShardAbort` frame.
fn abort_frame() -> Vec<u8> {
    fl_wire::encode(&fl_wire::WireMessage::ShardAbort).unwrap_or_default()
}

/// The Master Aggregator of the paper's actor tree (Sec. 4.1/4.2): an
/// ephemeral per-round actor that spawns one child [`AggregatorActor`]
/// per shard ("dynamic decisions to spawn one or more Aggregators to
/// which work is delegated"), routes device reports to them, and merges
/// their intermediate results at round end.
///
/// Failure semantics (Sec. 4.2): a shard child that crashes mid-round
/// loses its devices' contributions, but [`MasterMsg::Finalize`] still
/// merges the surviving shards and the round commits — only protocol
/// failures inside a surviving shard (e.g. SecAgg below threshold) fail
/// the round.
#[derive(Debug)]
pub struct MasterAggregatorActor {
    plan: AggregationPlan,
    secagg_seed: u64,
    /// Shard structs staged for spawning, drained in `on_start`.
    staged: Vec<AggregatorShard>,
    /// Child actor handles, filled by `on_start`. Dropping these (stop or
    /// death) closes the children's mailboxes, which reaps them.
    shards: Vec<ActorRef<ShardMsg>>,
    /// device → shard index (devices stick to one shard — one SecAgg
    /// instance each).
    routing: BTreeMap<DeviceId, usize>,
    /// Update frames drained from the mailbox so far (decoded ones;
    /// a malformed frame loses its contribution and is not counted).
    /// Compared against `SecAggFinalize::expected_contributors` to
    /// defer a finalize that overtook in-flight updates.
    forwarded: u64,
    /// Bounds finalize deferrals so a miscounted (or lost) update can
    /// only delay the round, never hang it: once spent, the finalize
    /// proceeds with whatever is staged — the pre-barrier semantics.
    defer_budget: u32,
}

impl MasterAggregatorActor {
    /// Builds the actor from a detached [`MasterAggregator`]; the shard
    /// children spawn when the actor starts.
    pub fn new(master: MasterAggregator) -> Self {
        let (plan, staged, secagg_seed) = master.into_parts();
        MasterAggregatorActor {
            plan,
            secagg_seed,
            staged,
            shards: Vec::new(),
            routing: BTreeMap::new(),
            forwarded: 0,
            defer_budget: 100_000,
        }
    }
}

impl Actor for MasterAggregatorActor {
    type Msg = MasterMsg;

    fn on_start(&mut self, ctx: &mut ActorContext<MasterMsg>) {
        for (i, shard) in self.staged.drain(..).enumerate() {
            let child = ctx.spawn_child(
                format!("agg-{i}"),
                AggregatorActor::new(shard, shard_seed(self.secagg_seed, i)),
            );
            self.shards.push(child);
        }
    }

    fn handle(&mut self, msg: MasterMsg, ctx: &mut ActorContext<MasterMsg>) -> Flow {
        match msg {
            MasterMsg::Update { frame } => {
                // A frame that is not a well-formed update loses that
                // device's contribution — the same semantics as a decode
                // failure inside an Aggregator (Sec. 4.2), never a panic.
                let (device, accept) = match fl_wire::decode(&frame) {
                    Ok(fl_wire::WireMessage::ShardUpdate {
                        device,
                        update_bytes,
                        weight,
                    }) => (
                        device,
                        ShardMsg::Accept {
                            device,
                            update_bytes,
                            weight,
                        },
                    ),
                    Ok(fl_wire::WireMessage::SecAggUpdate {
                        device,
                        field_vector,
                        weight,
                    }) => (
                        device,
                        ShardMsg::AcceptField {
                            device,
                            field: field_vector,
                            weight,
                        },
                    ),
                    _ => return Flow::Continue,
                };
                self.forwarded += 1;
                let count = self.shards.len().max(1);
                let idx = *self
                    .routing
                    .entry(device)
                    .or_insert_with(|| (device.0 % count as u64) as usize);
                if let Some(shard) = self.shards.get(idx) {
                    // A dead shard loses this contribution; the round
                    // continues on the survivors.
                    let _ = shard.send(accept);
                }
                Flow::Continue
            }
            MasterMsg::Finalize { frame, reply } => {
                let (current_params, expected, advertise_dropouts, share_dropouts) =
                    match fl_wire::decode(&frame) {
                        Ok(fl_wire::WireMessage::ShardFinalize {
                            current_params,
                            dropouts,
                        }) => (current_params, None, Vec::new(), dropouts),
                        Ok(fl_wire::WireMessage::SecAggFinalize {
                            current_params,
                            expected_contributors,
                            advertise_dropouts,
                            share_dropouts,
                        }) => (
                            current_params,
                            Some(expected_contributors),
                            advertise_dropouts,
                            share_dropouts,
                        ),
                        _ => {
                            // A malformed close is a protocol failure: the
                            // round is lost (framed error reply), the subtree
                            // still tears down cleanly.
                            let _ = reply
                                .send(merged_frame(Err("malformed finalize frame".to_string())));
                            return Flow::Stop;
                        }
                    };
                // SecAgg finalize barrier: the mailbox does not promise
                // to deliver the coordinator's update stream ahead of
                // its finalize (schedule exploration permutes exactly
                // this), and a group closed early either commits a sum
                // missing an accepted masked contribution or aborts
                // below threshold. Re-enqueue the finalize behind the
                // still-undelivered updates until all expected ones are
                // staged. (`ShardFinalize` carries no expectation — its
                // frame layout is frozen — so plain rounds keep the
                // lossy Sec. 4.2 semantics.)
                if let Some(expected) = expected {
                    if self.forwarded < expected && self.defer_budget > 0 {
                        self.defer_budget -= 1;
                        if let Some(me) = ctx.self_ref() {
                            let deferred = MasterMsg::Finalize {
                                frame,
                                reply: reply.clone(),
                            };
                            if me.send(deferred).is_ok() {
                                return Flow::Continue;
                            }
                        }
                        // No self reference (or closed mailbox): fall
                        // through and finalize with what is staged.
                    }
                }
                let mut pending = Vec::new();
                for shard in std::mem::take(&mut self.shards) {
                    let (tx, rx) = unbounded();
                    // A send error means the shard is already dead: its
                    // contributions are lost, the merge proceeds without it.
                    if shard
                        .send(ShardMsg::Close {
                            advertise_dropouts: advertise_dropouts.clone(),
                            share_dropouts: share_dropouts.clone(),
                            reply: tx,
                        })
                        .is_ok()
                    {
                        pending.push(rx);
                    }
                }
                let mut intermediates = Vec::with_capacity(pending.len());
                let mut shard_error = None;
                let mut shard_aborts = 0u64;
                for rx in pending {
                    // If the shard dies before (or while) handling Close,
                    // its reply sender is dropped and `recv` errors — the
                    // crashed shard's sum is lost, not the round.
                    match rx.recv() {
                        Ok(Ok(acc)) => intermediates.push(acc),
                        Ok(Err(ShardError::BelowThreshold { .. })) => {
                            // A below-threshold group is a clean per-shard
                            // abort: announce it on the reply stream (one
                            // ShardAbort frame per aborted shard, before
                            // the final ShardMerged) and merge without it.
                            shard_aborts += 1;
                            let _ = reply.send(abort_frame());
                        }
                        Ok(Err(e)) => shard_error = Some(e.to_string()),
                        Err(_) => {}
                    }
                }
                let result = match shard_error {
                    // A non-threshold *protocol* failure in a live shard
                    // fails the round, as in the struct driver.
                    Some(e) => Err(e),
                    None if shard_aborts > 0
                        && intermediates.iter().all(|a| a.contributors() == 0) =>
                    {
                        Err(format!(
                            "all {shard_aborts} secagg shards below threshold; round aborted"
                        ))
                    }
                    None => merge_and_apply(
                        self.plan,
                        self.secagg_seed,
                        intermediates,
                        &current_params,
                    )
                    .map_err(|e| e.to_string()),
                };
                let merged = result.map(|(params, n)| (params, n as u64));
                let _ = reply.send(merged_frame(merged));
                Flow::Stop
            }
            MasterMsg::Abort => Flow::Stop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(update: &[f32], codec: CodecSpec) -> Vec<u8> {
        codec.build().encode(update)
    }

    #[test]
    fn shard_count_scales_with_devices() {
        let plan = AggregationPlan::plain(10, 100);
        assert_eq!(plan.shard_count(50), 1);
        assert_eq!(plan.shard_count(100), 1);
        assert_eq!(plan.shard_count(101), 2);
        assert_eq!(plan.shard_count(1000), 10);
    }

    #[test]
    fn secagg_shards_respect_group_minimum() {
        let plan = AggregationPlan::with_secagg(10, 100, 50);
        // 120 devices / capacity 100 → 2 shards of 60 ≥ k=50. OK.
        assert_eq!(plan.shard_count(120), 2);
        // 60 devices: capacity would allow 1 shard; k forces ≤ 1 shard.
        assert_eq!(plan.shard_count(60), 1);
        // 450 devices, capacity 100 → 5 shards of 90 ≥ 50.
        assert_eq!(plan.shard_count(450), 5);
    }

    #[test]
    fn plain_master_matches_direct_fedavg() {
        let dim = 8;
        let codec = CodecSpec::Identity;
        let mut master =
            MasterAggregator::new(AggregationPlan::plain(dim, 3), codec, 10, 1);
        assert!(master.shard_count() > 1);
        let mut reference = FedAvgAccumulator::new(dim);
        for i in 0..10u64 {
            let update: Vec<f32> = (0..dim).map(|d| (i as f32) * 0.1 + d as f32).collect();
            let weight = i + 1;
            master
                .accept(DeviceId(i), &encode(&update, codec), weight)
                .unwrap();
            reference
                .accumulate(WeightedUpdate {
                    delta: update,
                    weight,
                })
                .unwrap();
        }
        let current = vec![1.0f32; dim];
        let out = master.finalize(&current, &[], &[]).unwrap();
        assert_eq!(out.contributors, 10);
        assert_eq!(out.shard_aborts, 0);
        let expected = reference.apply_to(&current).unwrap();
        for (a, b) in out.params.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn quantized_codec_round_trips_through_master() {
        let dim = 64;
        let codec = CodecSpec::Quantize { block: 32 };
        let mut master =
            MasterAggregator::new(AggregationPlan::plain(dim, 100), codec, 5, 2);
        for i in 0..5u64 {
            let update: Vec<f32> = (0..dim).map(|d| ((d + i as usize) as f32).sin() * 0.1).collect();
            master
                .accept(DeviceId(i), &encode(&update, codec), 10)
                .unwrap();
        }
        let out = master.finalize(&vec![0.0; dim], &[], &[]).unwrap();
        assert_eq!(out.contributors, 5);
        // Quantization error is small relative to update magnitude.
        assert!(out.params.iter().all(|p| p.abs() < 0.2));
        assert!(out.params.iter().any(|p| p.abs() > 1e-4));
    }

    #[test]
    fn secagg_master_sums_match_plain_within_quantization() {
        let dim = 16;
        let codec = CodecSpec::Identity;
        let updates: Vec<Vec<f32>> = (0..8)
            .map(|i| (0..dim).map(|d| 0.01 * (i * dim + d) as f32).collect())
            .collect();

        let run = |secagg: bool| -> Vec<f32> {
            let plan = if secagg {
                AggregationPlan::with_secagg(dim, 100, 4)
            } else {
                AggregationPlan::plain(dim, 100)
            };
            let mut master = MasterAggregator::new(plan, codec, 8, 3);
            for (i, u) in updates.iter().enumerate() {
                master
                    .accept(DeviceId(i as u64), &encode(u, codec), 5)
                    .unwrap();
            }
            master.finalize(&vec![0.0; dim], &[], &[]).unwrap().params
        };

        let plain = run(false);
        let secure = run(true);
        for (a, b) in plain.iter().zip(&secure) {
            assert!((a - b).abs() < 1e-3, "plain {a} vs secagg {b}");
        }
    }

    #[test]
    fn secagg_tolerates_dropouts_below_threshold() {
        let dim = 4;
        let codec = CodecSpec::Identity;
        let plan = AggregationPlan::with_secagg(dim, 100, 4);
        let mut master = MasterAggregator::new(plan, codec, 9, 7);
        for i in 0..9u64 {
            let update = vec![0.5f32; dim];
            master
                .accept(DeviceId(i), &encode(&update, codec), 2)
                .unwrap();
        }
        // Two of nine drop after staging (within the 1/3 tolerance).
        let out = master
            .finalize(&vec![0.0; dim], &[], &[DeviceId(3), DeviceId(6)])
            .unwrap();
        assert_eq!(out.contributors, 7);
        assert_eq!(out.shard_aborts, 0);
        // Mean delta of survivors is still 0.5/2-weighted: each update is
        // 0.5 with weight 2, so the average delta = (7*0.5)/(7*2) = 0.25.
        for p in out.params {
            assert!((p - 0.25).abs() < 1e-3, "{p}");
        }
    }

    #[test]
    fn secagg_advertise_dropouts_commit_same_sum_as_share_dropouts() {
        // The recovery path differs (cheap exclusion vs. share
        // reconstruction) but the committed sum must not.
        let dim = 4;
        let codec = CodecSpec::Identity;
        let run = |advertise: &[DeviceId], share: &[DeviceId]| -> MergeOutcome {
            let plan = AggregationPlan::with_secagg(dim, 100, 4);
            let mut master = MasterAggregator::new(plan, codec, 9, 7);
            for i in 0..9u64 {
                master
                    .accept(DeviceId(i), &encode(&vec![0.5f32; dim], codec), 2)
                    .unwrap();
            }
            master.finalize(&vec![0.0; dim], advertise, share).unwrap()
        };
        let dropped = [DeviceId(3), DeviceId(6)];
        let via_advertise = run(&dropped, &[]);
        let via_share = run(&[], &dropped);
        assert_eq!(via_advertise.contributors, 7);
        assert_eq!(via_advertise.params, via_share.params);
        // A device listed at both stages is counted once (advertise wins).
        let via_both = run(&dropped, &dropped);
        assert_eq!(via_both.contributors, 7);
        assert_eq!(via_both.params, via_advertise.params);
    }

    #[test]
    fn secagg_fails_when_dropouts_exceed_tolerance() {
        let dim = 4;
        let codec = CodecSpec::Identity;
        let plan = AggregationPlan::with_secagg(dim, 100, 4);
        let mut master = MasterAggregator::new(plan, codec, 6, 7);
        for i in 0..6u64 {
            master
                .accept(DeviceId(i), &encode(&vec![0.1; dim], codec), 1)
                .unwrap();
        }
        // 3 of 6 drop: the single group is stranded below k=4, and with
        // every shard aborted the round surfaces the typed abort.
        let result = master.finalize(
            &vec![0.0; dim],
            &[],
            &[DeviceId(0), DeviceId(1), DeviceId(2)],
        );
        assert!(matches!(
            result,
            Err(ShardError::BelowThreshold {
                alive: 3,
                required: 4
            })
        ));
    }

    #[test]
    fn secagg_group_above_k_but_below_protocol_threshold_aborts() {
        let dim = 4;
        let codec = CodecSpec::Identity;
        // k=2 is easily met, but dropping 4 of 9 leaves 5 alive against a
        // reconstruction threshold of ceil(2·9/3) = 6.
        let plan = AggregationPlan::with_secagg(dim, 100, 2);
        let mut master = MasterAggregator::new(plan, codec, 9, 7);
        for i in 0..9u64 {
            master
                .accept(DeviceId(i), &encode(&vec![0.1; dim], codec), 1)
                .unwrap();
        }
        let dropped: Vec<DeviceId> = (0..4).map(DeviceId).collect();
        let result = master.finalize(&vec![0.0; dim], &[], &dropped);
        assert!(matches!(
            result,
            Err(ShardError::BelowThreshold {
                alive: 5,
                required: 6
            })
        ));
    }

    #[test]
    fn below_k_shard_aborts_and_round_commits_from_survivors() {
        let dim = 4;
        let codec = CodecSpec::Identity;
        // 8 devices over 2 shards (capacity 4, k=2); sticky routing
        // device % 2 puts odd devices on shard 1.
        let plan = AggregationPlan::with_secagg(dim, 4, 2);
        let mut master = MasterAggregator::new(plan, codec, 8, 7);
        assert_eq!(master.shard_count(), 2);
        for i in 0..8u64 {
            master
                .accept(DeviceId(i), &encode(&vec![0.5f32; dim], codec), 2)
                .unwrap();
        }
        // Shard 1 loses 3 of its 4 devices → 1 alive < k=2: it must
        // abort cleanly while shard 0 commits all 4 of its devices.
        let out = master
            .finalize(
                &vec![0.0; dim],
                &[],
                &[DeviceId(1), DeviceId(3), DeviceId(5)],
            )
            .unwrap();
        assert_eq!(out.shard_aborts, 1);
        assert_eq!(out.contributors, 4);
        // The surviving shard's average is untainted by the aborted
        // group: each update is 0.5 at weight 2 → mean delta 0.25.
        for p in out.params {
            assert!((p - 0.25).abs() < 1e-3, "{p}");
        }
    }

    #[test]
    fn accept_field_matches_clear_accept_path() {
        let dim = 8;
        let codec = CodecSpec::Identity;
        let encoder = FixedPointEncoder::default_for_updates();
        let updates: Vec<Vec<f32>> = (0..6)
            .map(|i| (0..dim).map(|d| 0.01 * (i * dim + d) as f32).collect())
            .collect();
        let plan = AggregationPlan::with_secagg(dim, 100, 3);

        let mut clear = MasterAggregator::new(plan, codec, 6, 3);
        let mut field = MasterAggregator::new(plan, codec, 6, 3);
        for (i, u) in updates.iter().enumerate() {
            clear
                .accept(DeviceId(i as u64), &encode(u, codec), 5)
                .unwrap();
            let v = encoder.encode(u).unwrap();
            field.accept_field(DeviceId(i as u64), &v, 5).unwrap();
        }
        let a = clear.finalize(&vec![0.0; dim], &[], &[]).unwrap();
        let b = field.finalize(&vec![0.0; dim], &[], &[]).unwrap();
        assert_eq!(a, b, "field-vector ingestion drifted from clear path");
    }

    #[test]
    fn accept_field_rejects_plain_shards_and_bad_dims() {
        let mut plain = MasterAggregator::new(
            AggregationPlan::plain(4, 10),
            CodecSpec::Identity,
            2,
            1,
        );
        assert!(plain.accept_field(DeviceId(0), &[1, 2, 3, 4], 1).is_err());
        let mut secure = MasterAggregator::new(
            AggregationPlan::with_secagg(4, 10, 2),
            CodecSpec::Identity,
            2,
            1,
        );
        assert!(secure.accept_field(DeviceId(0), &[1, 2, 3], 1).is_err());
        assert!(secure.accept_field(DeviceId(0), &[1, 2, 3, 4], 1).is_ok());
    }

    #[test]
    fn dp_clipping_bounds_each_contribution() {
        use fl_core::privacy::DpConfig;
        let dim = 4;
        let codec = CodecSpec::Identity;
        let plan =
            AggregationPlan::plain(dim, 100).with_dp(DpConfig::new(1.0, 0.0, 9));
        let mut master = MasterAggregator::new(plan, codec, 2, 1);
        // One enormous update and one tiny one, equal weights.
        master
            .accept(DeviceId(0), &encode(&[100.0, 0.0, 0.0, 0.0], codec), 1)
            .unwrap();
        master
            .accept(DeviceId(1), &encode(&[0.0, 0.1, 0.0, 0.0], codec), 1)
            .unwrap();
        let out = master.finalize(&vec![0.0; dim], &[], &[]).unwrap();
        // The huge update was clipped to L2 norm 1: average[0] = 0.5.
        let params = out.params;
        assert!((params[0] - 0.5).abs() < 1e-5, "clipped mean {}", params[0]);
        assert!((params[1] - 0.05).abs() < 1e-5);
    }

    #[test]
    fn dp_noise_is_seeded_and_zero_noise_matches_plain() {
        use fl_core::privacy::DpConfig;
        let dim = 8;
        let codec = CodecSpec::Identity;
        let update = vec![0.1f32; dim];
        let run = |dp: Option<DpConfig>| -> Vec<f32> {
            let mut plan = AggregationPlan::plain(dim, 100);
            if let Some(dp) = dp {
                plan = plan.with_dp(dp);
            }
            let mut master = MasterAggregator::new(plan, codec, 4, 1);
            for i in 0..4u64 {
                master
                    .accept(DeviceId(i), &encode(&update, codec), 5)
                    .unwrap();
            }
            master.finalize(&vec![0.0; dim], &[], &[]).unwrap().params
        };
        let plain = run(None);
        // Huge clip + zero noise: identical to plain aggregation.
        let dp_zero = run(Some(DpConfig::new(1e6, 0.0, 7)));
        assert_eq!(plain, dp_zero);
        // Non-zero noise perturbs, deterministically per seed.
        let noisy_a = run(Some(DpConfig::new(1e6, 0.5, 7)));
        let noisy_b = run(Some(DpConfig::new(1e6, 0.5, 7)));
        let noisy_c = run(Some(DpConfig::new(1e6, 0.5, 8)));
        assert_eq!(noisy_a, noisy_b);
        assert_ne!(noisy_a, noisy_c);
        assert_ne!(noisy_a, plain);
    }

    #[test]
    fn malformed_update_bytes_are_rejected() {
        let mut master = MasterAggregator::new(
            AggregationPlan::plain(4, 10),
            CodecSpec::Identity,
            2,
            1,
        );
        assert!(master.accept(DeviceId(0), &[1, 2, 3], 1).is_err());
    }

    #[test]
    fn empty_master_finalize_errors() {
        let master = MasterAggregator::new(
            AggregationPlan::plain(4, 10),
            CodecSpec::Identity,
            2,
            1,
        );
        assert!(master.finalize(&[0.0; 4], &[], &[]).is_err());
    }

    use fl_actors::{ActorSystem, DeathReason, ScriptedFaults};

    fn drive_master_actor(
        system: &ActorSystem,
        updates: usize,
    ) -> Result<(Vec<f32>, usize), String> {
        let dim = 8;
        let codec = CodecSpec::Identity;
        let master = MasterAggregator::new(AggregationPlan::plain(dim, 3), codec, 10, 1);
        let actor = system.spawn("master", MasterAggregatorActor::new(master));
        for i in 0..updates as u64 {
            let update: Vec<f32> = (0..dim).map(|d| (i as f32) * 0.1 + d as f32).collect();
            actor
                .send(MasterMsg::Update {
                    frame: fl_wire::encode(&fl_wire::WireMessage::ShardUpdate {
                        device: DeviceId(i),
                        update_bytes: encode(&update, codec),
                        weight: i + 1,
                    })
                    .expect("test frame encodes"),
                })
                .unwrap();
        }
        let (tx, rx) = unbounded();
        actor
            .send(MasterMsg::Finalize {
                frame: fl_wire::encode(&fl_wire::WireMessage::ShardFinalize {
                    current_params: vec![1.0f32; dim],
                    dropouts: Vec::new(),
                })
                .expect("test frame encodes"),
                reply: tx,
            })
            .unwrap();
        let reply_frame = rx.recv().unwrap();
        let result = match fl_wire::decode(&reply_frame).unwrap() {
            fl_wire::WireMessage::ShardMerged { merged } => {
                merged.map(|(params, n)| (params, n as usize))
            }
            other => panic!("expected ShardMerged, got {other:?}"),
        };
        system.join();
        result
    }

    /// The actor tree (master + shard children over real threads) commits
    /// byte-identical parameters to the struct driver, and every actor in
    /// the tree dies with the round (observable via obituaries).
    #[test]
    fn actor_master_matches_struct_master_and_dies_with_round() {
        let dim = 8;
        let codec = CodecSpec::Identity;
        let mut reference =
            MasterAggregator::new(AggregationPlan::plain(dim, 3), codec, 10, 1);
        assert!(reference.shard_count() > 1);
        for i in 0..10u64 {
            let update: Vec<f32> = (0..dim).map(|d| (i as f32) * 0.1 + d as f32).collect();
            reference
                .accept(DeviceId(i), &encode(&update, codec), i + 1)
                .unwrap();
        }
        let expected = reference
            .finalize(&vec![1.0f32; dim], &[], &[])
            .unwrap();

        let system = ActorSystem::new();
        let (params, n) = drive_master_actor(&system, 10).unwrap();
        assert_eq!(n, expected.contributors);
        assert_eq!(params, expected.params, "actor and struct drivers disagree");

        // The whole ephemeral subtree is dead: master + 4 shards, all
        // normal deaths.
        let obits: Vec<_> = system.deaths().try_iter().collect();
        let names: Vec<&str> = obits.iter().map(|o| o.name.as_str()).collect();
        assert!(names.contains(&"master"), "{names:?}");
        for i in 0..4 {
            let shard = format!("master/agg-{i}");
            assert!(names.iter().any(|n| **n == shard), "{names:?}");
        }
        assert!(obits.iter().all(|o| o.reason == DeathReason::Normal));
    }

    /// Sec. 4.2: an Aggregator crash loses its devices' contributions but
    /// the Master still merges the surviving shards and the round commits.
    #[test]
    fn shard_crash_loses_its_devices_but_finalize_succeeds() {
        let system = ActorSystem::new();
        // Crash shard 1 on its first message: devices routed to it are
        // lost, the other shards survive.
        system.install_fault_injector(std::sync::Arc::new(ScriptedFaults::new().with(
            "master/agg-1",
            1,
            fl_actors::FaultAction::Crash,
        )));
        let (params, n) = drive_master_actor(&system, 10).unwrap();
        // 10 devices round-robin over 4 shards: shard 1 owned devices
        // 1, 5, 9 — the survivors carry the other 7.
        assert_eq!(n, 7);
        assert!(params.iter().all(|p| p.is_finite()));
        let panicked: Vec<_> = system
            .deaths()
            .try_iter()
            .filter(|o| matches!(o.reason, DeathReason::Panicked(_)))
            .map(|o| o.name)
            .collect();
        assert_eq!(panicked, vec!["master/agg-1".to_string()]);
    }

    /// Drives a SecAgg round through the actor tree on `SecAggUpdate` /
    /// `SecAggFinalize` frames and returns every reply frame (abort
    /// announcements, then the merged result).
    fn drive_secagg_master_actor(
        system: &ActorSystem,
        share_dropouts: Vec<DeviceId>,
    ) -> Vec<fl_wire::WireMessage> {
        let dim = 4;
        let codec = CodecSpec::Identity;
        let encoder = FixedPointEncoder::default_for_updates();
        let master = MasterAggregator::new(
            AggregationPlan::with_secagg(dim, 4, 2),
            codec,
            8,
            7,
        );
        let actor = system.spawn("master", MasterAggregatorActor::new(master));
        for i in 0..8u64 {
            let field_vector = encoder.encode(&vec![0.5f32; dim]).unwrap();
            actor
                .send(MasterMsg::Update {
                    frame: fl_wire::encode(&fl_wire::WireMessage::SecAggUpdate {
                        device: DeviceId(i),
                        field_vector,
                        weight: 2,
                    })
                    .expect("test frame encodes"),
                })
                .unwrap();
        }
        let (tx, rx) = unbounded();
        actor
            .send(MasterMsg::Finalize {
                frame: fl_wire::encode(&fl_wire::WireMessage::SecAggFinalize {
                    current_params: vec![0.0f32; dim],
                    expected_contributors: 8,
                    advertise_dropouts: Vec::new(),
                    share_dropouts,
                })
                .expect("test frame encodes"),
                reply: tx,
            })
            .unwrap();
        let mut replies = Vec::new();
        loop {
            let frame = rx.recv().unwrap();
            let msg = fl_wire::decode(&frame).unwrap();
            let done = matches!(msg, fl_wire::WireMessage::ShardMerged { .. });
            replies.push(msg);
            if done {
                break;
            }
        }
        system.join();
        replies
    }

    /// The live actor tree announces one framed `ShardAbort` per
    /// below-threshold SecAgg shard *before* the final `ShardMerged`,
    /// and the committed sum covers the surviving ≥ k group only.
    #[test]
    fn actor_secagg_round_sends_one_abort_frame_per_stranded_shard() {
        let system = ActorSystem::new();
        // Shard 1 (odd devices) loses 3 of 4 → below k=2 → abort; shard
        // 0 commits its 4 devices untouched.
        let replies = drive_secagg_master_actor(
            &system,
            vec![DeviceId(1), DeviceId(3), DeviceId(5)],
        );
        assert_eq!(replies.len(), 2, "{replies:?}");
        assert!(matches!(replies[0], fl_wire::WireMessage::ShardAbort));
        match &replies[1] {
            fl_wire::WireMessage::ShardMerged { merged: Ok((params, n)) } => {
                assert_eq!(*n, 4);
                for p in params {
                    assert!((p - 0.25).abs() < 1e-3, "{p}");
                }
            }
            other => panic!("expected committed ShardMerged, got {other:?}"),
        }
    }

    /// With no dropouts the SecAgg actor round commits all devices and
    /// sends no abort frames.
    #[test]
    fn actor_secagg_round_commits_clean_cohort_without_aborts() {
        let system = ActorSystem::new();
        let replies = drive_secagg_master_actor(&system, Vec::new());
        assert_eq!(replies.len(), 1, "{replies:?}");
        match &replies[0] {
            fl_wire::WireMessage::ShardMerged { merged: Ok((params, n)) } => {
                assert_eq!(*n, 8);
                for p in params {
                    assert!((p - 0.25).abs() < 1e-3, "{p}");
                }
            }
            other => panic!("expected committed ShardMerged, got {other:?}"),
        }
    }

    /// Every SecAgg group stranded below threshold fails the round with
    /// a framed error — an abort per shard, then an `Err` merge.
    #[test]
    fn actor_secagg_round_fails_when_every_shard_aborts() {
        let system = ActorSystem::new();
        // 6 of 8 devices (3 per shard) vanish: both groups fall to 1
        // alive, below k=2.
        let replies = drive_secagg_master_actor(
            &system,
            (0..6).map(DeviceId).collect(),
        );
        assert_eq!(replies.len(), 3, "{replies:?}");
        assert!(matches!(replies[0], fl_wire::WireMessage::ShardAbort));
        assert!(matches!(replies[1], fl_wire::WireMessage::ShardAbort));
        match &replies[2] {
            fl_wire::WireMessage::ShardMerged { merged: Err(reason) } => {
                assert!(reason.contains("below threshold"), "{reason}");
            }
            other => panic!("expected failed ShardMerged, got {other:?}"),
        }
    }
}
