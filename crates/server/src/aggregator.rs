//! Aggregators and the Master Aggregator (Sec. 4.2, Sec. 6).
//!
//! "Master Aggregators manage the rounds of each FL task. In order to
//! scale with the number of devices and update size, they make dynamic
//! decisions to spawn one or more Aggregators to which work is delegated."
//!
//! Each [`AggregatorShard`] folds incoming updates into a streaming
//! [`FedAvgAccumulator`]; nothing per-device is retained. When Secure
//! Aggregation is enabled, "we run an instance of Secure Aggregation on
//! each Aggregator actor to aggregate inputs from that Aggregator's
//! devices into an intermediate sum; FL tasks define a parameter k so that
//! all updates are securely aggregated over groups of size at least k. The
//! Master Aggregator then further aggregates the intermediate aggregators'
//! results into a final aggregate for the round, without Secure
//! Aggregation."

use crossbeam::channel::{unbounded, Sender};
use fl_actors::{Actor, ActorRef, Context as ActorContext, Flow};
use fl_core::aggregation::FedAvgAccumulator;
use fl_core::plan::CodecSpec;
use fl_core::privacy::DpConfig;
use fl_core::{CoreError, DeviceId};
use fl_ml::fixedpoint::FixedPointEncoder;
use fl_ml::optim::WeightedUpdate;
use fl_secagg::protocol::{run_instance, SecAggConfig};
use fl_secagg::SecAggError;
use std::collections::BTreeMap;

/// How a Master Aggregator shards a round's devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationPlan {
    /// Update dimension.
    pub dim: usize,
    /// Maximum devices handled by one Aggregator shard.
    pub max_per_shard: usize,
    /// Secure Aggregation minimum group size `k`; `None` = plain
    /// aggregation.
    pub secagg_k: Option<usize>,
    /// Server-side DP-FedAvg: clip every update at the shard, perturb the
    /// final sum at the master (Sec. 6, footnote 2).
    pub dp: Option<DpConfig>,
}

impl AggregationPlan {
    /// Plain aggregation with the given shard capacity.
    pub fn plain(dim: usize, max_per_shard: usize) -> Self {
        AggregationPlan {
            dim,
            max_per_shard,
            secagg_k: None,
            dp: None,
        }
    }

    /// Adds the DP-FedAvg mechanism to this plan.
    pub fn with_dp(mut self, dp: DpConfig) -> Self {
        self.dp = Some(dp);
        self
    }

    /// Secure aggregation over groups of at least `k`.
    pub fn with_secagg(dim: usize, max_per_shard: usize, k: usize) -> Self {
        AggregationPlan {
            dim,
            max_per_shard,
            secagg_k: Some(k),
            dp: None,
        }
    }

    /// Number of shards the Master Aggregator spawns for `expected`
    /// devices (dynamic decision, Sec. 4.2). At least one; with SecAgg the
    /// shard size must stay ≥ k so every group meets the minimum.
    pub fn shard_count(&self, expected: usize) -> usize {
        let by_capacity = expected.div_ceil(self.max_per_shard.max(1)).max(1);
        if let Some(k) = self.secagg_k {
            // Don't create shards smaller than k.
            let max_shards = (expected / k.max(1)).max(1);
            by_capacity.min(max_shards)
        } else {
            by_capacity
        }
    }
}

/// One ephemeral Aggregator: a streaming accumulator for its assigned
/// devices. Plain mode folds decoded updates immediately; SecAgg mode
/// buffers *fixed-point-encoded masked contributions* via the secagg
/// protocol run at shard close.
#[derive(Debug)]
pub struct AggregatorShard {
    accumulator: FedAvgAccumulator,
    codec: CodecSpec,
    /// L2 clip applied to each decoded update (DP-FedAvg).
    clip_norm: Option<f32>,
    /// SecAgg staging: device → (clear update kept only on the device side
    /// of the simulation; the shard records the *encoded field vector* it
    /// would receive masked). `None` in plain mode.
    secagg_inputs: Option<BTreeMap<DeviceId, Vec<u64>>>,
    encoder: FixedPointEncoder,
    dim: usize,
}

impl AggregatorShard {
    /// Creates a shard.
    pub fn new(dim: usize, codec: CodecSpec, secagg: bool) -> Self {
        AggregatorShard::with_clip(dim, codec, secagg, None)
    }

    /// Creates a shard with an optional DP clip norm.
    pub fn with_clip(
        dim: usize,
        codec: CodecSpec,
        secagg: bool,
        clip_norm: Option<f32>,
    ) -> Self {
        AggregatorShard {
            accumulator: FedAvgAccumulator::new(dim),
            codec,
            clip_norm,
            secagg_inputs: secagg.then(BTreeMap::new),
            encoder: FixedPointEncoder::default_for_updates(),
            dim,
        }
    }

    /// Number of devices folded/staged so far.
    pub fn contributors(&self) -> usize {
        match &self.secagg_inputs {
            Some(staged) => staged.len(),
            None => self.accumulator.contributors(),
        }
    }

    /// Accepts one device's *encoded* update bytes plus its weight.
    ///
    /// Plain mode: decode and fold immediately (streaming, in-memory).
    /// SecAgg mode: fixed-point-encode `update ‖ weight` into the field
    /// and stage it for the protocol run.
    ///
    /// # Errors
    ///
    /// Decode failures or dimension mismatches.
    pub fn accept(
        &mut self,
        device: DeviceId,
        update_bytes: &[u8],
        weight: u64,
    ) -> Result<(), CoreError> {
        let mut delta = self
            .codec
            .build()
            .decode(update_bytes, self.dim)
            .map_err(|e| CoreError::MalformedCheckpoint(e.to_string()))?;
        if let Some(clip) = self.clip_norm {
            // DP-FedAvg: bound each device's contribution before it joins
            // the (ephemeral) aggregate. Done identically on the SecAgg
            // path, where the device would clip before masking.
            fl_core::privacy::clip_l2(&mut delta, clip);
        }
        match &mut self.secagg_inputs {
            None => self.accumulator.accumulate(WeightedUpdate { delta, weight }),
            Some(staged) => {
                // Field vector: encoded delta coordinates plus the weight
                // appended as one extra (integral) coordinate.
                let mut v = self
                    .encoder
                    .encode(&delta)
                    .map_err(|e| CoreError::MalformedCheckpoint(e.to_string()))?;
                v.push(weight % fl_secagg::field::PRIME);
                staged.insert(device, v);
                Ok(())
            }
        }
    }

    /// Closes the shard and returns its intermediate accumulator.
    ///
    /// In SecAgg mode this runs the four-round protocol over the staged
    /// devices (each a simulated client), with `dropouts` vanishing after
    /// the share phase, and decodes the unmasked *sum* — the server-side
    /// code path never touches an individual update.
    ///
    /// # Errors
    ///
    /// SecAgg protocol failures (e.g. too many drop-outs) surface as
    /// [`SecAggError`] wrapped in the shard error.
    pub fn close(
        self,
        dropouts: &[DeviceId],
        secagg_seed: u64,
    ) -> Result<FedAvgAccumulator, ShardError> {
        match self.secagg_inputs {
            None => Ok(self.accumulator),
            Some(staged) => {
                let devices: Vec<DeviceId> = staged.keys().copied().collect();
                let n = devices.len();
                if n == 0 {
                    return Ok(self.accumulator);
                }
                // Threshold: 2/3 of the group, at least 2 (the paper's
                // protocol is robust to a significant fraction dropping).
                let threshold = ((2 * n).div_ceil(3)).max(2).min(n);
                let config = SecAggConfig::new(threshold, self.dim + 1);
                let inputs: Vec<Vec<u64>> = devices.iter().map(|d| staged[d].clone()).collect();
                let drop_ids: Vec<u32> = dropouts
                    .iter()
                    .filter_map(|d| devices.iter().position(|x| x == d).map(|i| i as u32))
                    .collect();
                let sum = run_instance(config, &inputs, &[], &drop_ids, secagg_seed)
                    .map_err(ShardError::SecAgg)?;
                let committed = n - drop_ids.len();
                let weight_sum = sum[self.dim];
                let delta_sum = self
                    .encoder
                    .decode_sum(&sum[..self.dim], committed as u64);
                let mut acc = FedAvgAccumulator::new(self.dim);
                acc.accumulate_presummed(&delta_sum, weight_sum, committed)
                    .map_err(ShardError::Core)?;
                Ok(acc)
            }
        }
    }
}

/// Errors from closing a shard.
#[derive(Debug)]
pub enum ShardError {
    /// The Secure Aggregation protocol failed.
    SecAgg(SecAggError),
    /// Aggregation error.
    Core(CoreError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::SecAgg(e) => write!(f, "secure aggregation failed: {e}"),
            ShardError::Core(e) => write!(f, "aggregation failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// The Master Aggregator: routes devices to shards, merges intermediate
/// results, applies the final average.
#[derive(Debug)]
pub struct MasterAggregator {
    plan: AggregationPlan,
    codec: CodecSpec,
    shards: Vec<AggregatorShard>,
    /// device → shard index.
    routing: BTreeMap<DeviceId, usize>,
    secagg_seed: u64,
}

impl MasterAggregator {
    /// Creates a master for an expected number of devices, spawning shards
    /// per the plan.
    pub fn new(plan: AggregationPlan, codec: CodecSpec, expected: usize, secagg_seed: u64) -> Self {
        let count = plan.shard_count(expected);
        let clip = plan.dp.map(|dp| dp.clip_norm);
        let shards = (0..count)
            .map(|_| AggregatorShard::with_clip(plan.dim, codec, plan.secagg_k.is_some(), clip))
            .collect();
        MasterAggregator {
            plan,
            codec,
            shards,
            routing: BTreeMap::new(),
            secagg_seed,
        }
    }

    /// Number of shards spawned.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Accepts one device report, routing it to the device's shard
    /// (devices stick to one shard — one SecAgg instance each).
    ///
    /// # Errors
    ///
    /// Decode/dimension errors from the shard.
    pub fn accept(
        &mut self,
        device: DeviceId,
        update_bytes: &[u8],
        weight: u64,
    ) -> Result<(), CoreError> {
        let idx = *self
            .routing
            .entry(device)
            .or_insert_with(|| (device.0 % self.shards.len() as u64) as usize);
        self.shards[idx].accept(device, update_bytes, weight)
    }

    /// Total devices accepted across shards.
    pub fn contributors(&self) -> usize {
        self.shards.iter().map(AggregatorShard::contributors).sum()
    }

    /// Closes all shards (running SecAgg per shard when enabled), merges
    /// the intermediate accumulators "without Secure Aggregation", and
    /// returns the new global parameters.
    ///
    /// # Errors
    ///
    /// Shard failures, or [`CoreError::ZeroWeightUpdate`] if nothing was
    /// aggregated.
    pub fn finalize(
        self,
        current_params: &[f32],
        dropouts: &[DeviceId],
    ) -> Result<(Vec<f32>, usize), ShardError> {
        let mut intermediates = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.into_iter().enumerate() {
            intermediates.push(shard.close(dropouts, shard_seed(self.secagg_seed, i))?);
        }
        merge_and_apply(self.plan, self.secagg_seed, intermediates, current_params)
    }

    /// The codec used for updates (needed by callers encoding reports).
    pub fn codec(&self) -> CodecSpec {
        self.codec
    }

    /// Decomposes the master into its parts — `(plan, shards, secagg
    /// seed)` — for actor-based driving, where each shard runs on its own
    /// [`AggregatorActor`] thread and the merge happens in the
    /// [`MasterAggregatorActor`].
    pub fn into_parts(self) -> (AggregationPlan, Vec<AggregatorShard>, u64) {
        (self.plan, self.shards, self.secagg_seed)
    }
}

/// The SecAgg seed for shard `index` of a master seeded with
/// `master_seed` (distinct per shard, deterministic per round).
fn shard_seed(master_seed: u64, index: usize) -> u64 {
    master_seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Merges intermediate shard accumulators "without Secure Aggregation",
/// applies optional DP perturbation, and produces the new global
/// parameters — the Master Aggregator's final step, shared by the struct
/// ([`MasterAggregator::finalize`]) and actor
/// ([`MasterAggregatorActor`]) drivers so both commit identical bytes.
fn merge_and_apply(
    plan: AggregationPlan,
    secagg_seed: u64,
    intermediates: Vec<FedAvgAccumulator>,
    current_params: &[f32],
) -> Result<(Vec<f32>, usize), ShardError> {
    let mut merged = FedAvgAccumulator::new(plan.dim);
    for intermediate in intermediates {
        if intermediate.contributors() > 0 {
            merged.merge(&intermediate).map_err(ShardError::Core)?;
        }
    }
    if let Some(dp) = plan.dp {
        // One calibrated Gaussian perturbation of the round's sum.
        let mut noise_rng = fl_ml::rng::seeded(dp.noise_seed ^ secagg_seed);
        merged.perturb(dp.sigma(), &mut noise_rng);
    }
    let contributors = merged.contributors();
    let params = merged.apply_to(current_params).map_err(ShardError::Core)?;
    Ok((params, contributors))
}

/// Messages handled by one [`AggregatorActor`] shard.
#[derive(Debug)]
pub enum ShardMsg {
    /// One device's encoded report for this shard.
    Accept {
        /// The reporting device.
        device: DeviceId,
        /// Codec-encoded update bytes.
        update_bytes: Vec<u8>,
        /// The device's example count (FedAvg weight).
        weight: u64,
    },
    /// Close the shard: run SecAgg (when enabled) minus `dropouts` and
    /// reply with the intermediate accumulator. The actor stops after
    /// replying — shards are ephemeral, they die with the round.
    Close {
        /// Devices that dropped out mid-round.
        dropouts: Vec<DeviceId>,
        /// Where to deliver the intermediate accumulator.
        reply: Sender<Result<FedAvgAccumulator, String>>,
    },
}

/// One Aggregator of the paper's actor tree (Sec. 4.1/4.2): an ephemeral
/// actor wrapping an [`AggregatorShard`], spawned by its
/// [`MasterAggregatorActor`] parent at round start and dead by round end.
#[derive(Debug)]
pub struct AggregatorActor {
    shard: Option<AggregatorShard>,
    secagg_seed: u64,
}

impl AggregatorActor {
    /// Wraps a shard with its per-shard SecAgg seed.
    pub fn new(shard: AggregatorShard, secagg_seed: u64) -> Self {
        AggregatorActor {
            shard: Some(shard),
            secagg_seed,
        }
    }
}

impl Actor for AggregatorActor {
    type Msg = ShardMsg;

    fn handle(&mut self, msg: ShardMsg, _ctx: &mut ActorContext<ShardMsg>) -> Flow {
        match msg {
            ShardMsg::Accept {
                device,
                update_bytes,
                weight,
            } => {
                if let Some(shard) = &mut self.shard {
                    // A malformed update is dropped at the shard, exactly
                    // as a decode failure inside one Aggregator loses that
                    // device's contribution without failing the round.
                    let _ = shard.accept(device, &update_bytes, weight);
                }
                Flow::Continue
            }
            ShardMsg::Close { dropouts, reply } => {
                if let Some(shard) = self.shard.take() {
                    let result = shard
                        .close(&dropouts, self.secagg_seed)
                        .map_err(|e| e.to_string());
                    let _ = reply.send(result);
                }
                Flow::Stop
            }
        }
    }
}

/// Messages handled by a [`MasterAggregatorActor`].
///
/// The Coordinator↔Master hop is the Selector↔Aggregator service
/// boundary of the paper's Fig. 3, so both payload-bearing messages are
/// *framed* [`fl_wire::WireMessage`]s rather than in-process structs:
/// the same bytes these mailboxes carry could cross a socket between
/// separately-deployed services. (Master → shard children stay typed
/// [`ShardMsg`]s: the shard subtree is in-process by design, it scales
/// and dies with its master.)
#[derive(Debug)]
pub enum MasterMsg {
    /// A framed [`fl_wire::WireMessage::ShardUpdate`]: one device's
    /// encoded report, routed to the device's shard. Frames that fail to
    /// decode lose that contribution, never the round.
    Update {
        /// The encoded frame.
        frame: Vec<u8>,
    },
    /// A framed [`fl_wire::WireMessage::ShardFinalize`]: close every
    /// shard, merge the survivors' intermediate sums, apply the round's
    /// aggregate, and reply with a framed
    /// [`fl_wire::WireMessage::ShardMerged`]. The actor (and its shard
    /// children) stop afterwards.
    Finalize {
        /// The encoded frame.
        frame: Vec<u8>,
        /// Where to deliver the encoded `ShardMerged` reply frame.
        reply: Sender<Vec<u8>>,
    },
    /// The round ended without a commit (abandoned, evaluation-only):
    /// stop, dropping the shard children so they drain and die.
    Abort,
}

/// The Master Aggregator of the paper's actor tree (Sec. 4.1/4.2): an
/// ephemeral per-round actor that spawns one child [`AggregatorActor`]
/// per shard ("dynamic decisions to spawn one or more Aggregators to
/// which work is delegated"), routes device reports to them, and merges
/// their intermediate results at round end.
///
/// Failure semantics (Sec. 4.2): a shard child that crashes mid-round
/// loses its devices' contributions, but [`MasterMsg::Finalize`] still
/// merges the surviving shards and the round commits — only protocol
/// failures inside a surviving shard (e.g. SecAgg below threshold) fail
/// the round.
#[derive(Debug)]
pub struct MasterAggregatorActor {
    plan: AggregationPlan,
    secagg_seed: u64,
    /// Shard structs staged for spawning, drained in `on_start`.
    staged: Vec<AggregatorShard>,
    /// Child actor handles, filled by `on_start`. Dropping these (stop or
    /// death) closes the children's mailboxes, which reaps them.
    shards: Vec<ActorRef<ShardMsg>>,
    /// device → shard index (devices stick to one shard — one SecAgg
    /// instance each).
    routing: BTreeMap<DeviceId, usize>,
}

impl MasterAggregatorActor {
    /// Builds the actor from a detached [`MasterAggregator`]; the shard
    /// children spawn when the actor starts.
    pub fn new(master: MasterAggregator) -> Self {
        let (plan, staged, secagg_seed) = master.into_parts();
        MasterAggregatorActor {
            plan,
            secagg_seed,
            staged,
            shards: Vec::new(),
            routing: BTreeMap::new(),
        }
    }
}

impl Actor for MasterAggregatorActor {
    type Msg = MasterMsg;

    fn on_start(&mut self, ctx: &mut ActorContext<MasterMsg>) {
        for (i, shard) in self.staged.drain(..).enumerate() {
            let child = ctx.spawn_child(
                format!("agg-{i}"),
                AggregatorActor::new(shard, shard_seed(self.secagg_seed, i)),
            );
            self.shards.push(child);
        }
    }

    fn handle(&mut self, msg: MasterMsg, _ctx: &mut ActorContext<MasterMsg>) -> Flow {
        match msg {
            MasterMsg::Update { frame } => {
                // A frame that is not a well-formed ShardUpdate loses that
                // device's contribution — the same semantics as a decode
                // failure inside an Aggregator (Sec. 4.2), never a panic.
                let Ok(fl_wire::WireMessage::ShardUpdate {
                    device,
                    update_bytes,
                    weight,
                }) = fl_wire::decode(&frame)
                else {
                    return Flow::Continue;
                };
                let count = self.shards.len().max(1);
                let idx = *self
                    .routing
                    .entry(device)
                    .or_insert_with(|| (device.0 % count as u64) as usize);
                if let Some(shard) = self.shards.get(idx) {
                    // A dead shard loses this contribution; the round
                    // continues on the survivors.
                    let _ = shard.send(ShardMsg::Accept {
                        device,
                        update_bytes,
                        weight,
                    });
                }
                Flow::Continue
            }
            MasterMsg::Finalize { frame, reply } => {
                let (current_params, dropouts) = match fl_wire::decode(&frame) {
                    Ok(fl_wire::WireMessage::ShardFinalize {
                        current_params,
                        dropouts,
                    }) => (current_params, dropouts),
                    _ => {
                        // A malformed close is a protocol failure: the
                        // round is lost (framed error reply), the subtree
                        // still tears down cleanly.
                        let _ = reply.send(fl_wire::encode(&fl_wire::WireMessage::ShardMerged {
                            merged: Err("malformed ShardFinalize frame".to_string()),
                        }));
                        return Flow::Stop;
                    }
                };
                let mut pending = Vec::new();
                for shard in std::mem::take(&mut self.shards) {
                    let (tx, rx) = unbounded();
                    // A send error means the shard is already dead: its
                    // contributions are lost, the merge proceeds without it.
                    if shard
                        .send(ShardMsg::Close {
                            dropouts: dropouts.clone(),
                            reply: tx,
                        })
                        .is_ok()
                    {
                        pending.push(rx);
                    }
                }
                let mut intermediates = Vec::with_capacity(pending.len());
                let mut shard_error = None;
                for rx in pending {
                    // If the shard dies before (or while) handling Close,
                    // its reply sender is dropped and `recv` errors — the
                    // crashed shard's sum is lost, not the round.
                    match rx.recv() {
                        Ok(Ok(acc)) => intermediates.push(acc),
                        Ok(Err(e)) => shard_error = Some(e),
                        Err(_) => {}
                    }
                }
                let result = match shard_error {
                    // A *protocol* failure in a live shard (SecAgg below
                    // threshold) fails the round, as in the struct driver.
                    Some(e) => Err(e),
                    None => merge_and_apply(
                        self.plan,
                        self.secagg_seed,
                        intermediates,
                        &current_params,
                    )
                    .map_err(|e| e.to_string()),
                };
                let merged = result.map(|(params, n)| (params, n as u64));
                let _ = reply.send(fl_wire::encode(&fl_wire::WireMessage::ShardMerged {
                    merged,
                }));
                Flow::Stop
            }
            MasterMsg::Abort => Flow::Stop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(update: &[f32], codec: CodecSpec) -> Vec<u8> {
        codec.build().encode(update)
    }

    #[test]
    fn shard_count_scales_with_devices() {
        let plan = AggregationPlan::plain(10, 100);
        assert_eq!(plan.shard_count(50), 1);
        assert_eq!(plan.shard_count(100), 1);
        assert_eq!(plan.shard_count(101), 2);
        assert_eq!(plan.shard_count(1000), 10);
    }

    #[test]
    fn secagg_shards_respect_group_minimum() {
        let plan = AggregationPlan::with_secagg(10, 100, 50);
        // 120 devices / capacity 100 → 2 shards of 60 ≥ k=50. OK.
        assert_eq!(plan.shard_count(120), 2);
        // 60 devices: capacity would allow 1 shard; k forces ≤ 1 shard.
        assert_eq!(plan.shard_count(60), 1);
        // 450 devices, capacity 100 → 5 shards of 90 ≥ 50.
        assert_eq!(plan.shard_count(450), 5);
    }

    #[test]
    fn plain_master_matches_direct_fedavg() {
        let dim = 8;
        let codec = CodecSpec::Identity;
        let mut master =
            MasterAggregator::new(AggregationPlan::plain(dim, 3), codec, 10, 1);
        assert!(master.shard_count() > 1);
        let mut reference = FedAvgAccumulator::new(dim);
        for i in 0..10u64 {
            let update: Vec<f32> = (0..dim).map(|d| (i as f32) * 0.1 + d as f32).collect();
            let weight = i + 1;
            master
                .accept(DeviceId(i), &encode(&update, codec), weight)
                .unwrap();
            reference
                .accumulate(WeightedUpdate {
                    delta: update,
                    weight,
                })
                .unwrap();
        }
        let current = vec![1.0f32; dim];
        let (params, n) = master.finalize(&current, &[]).unwrap();
        assert_eq!(n, 10);
        let expected = reference.apply_to(&current).unwrap();
        for (a, b) in params.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn quantized_codec_round_trips_through_master() {
        let dim = 64;
        let codec = CodecSpec::Quantize { block: 32 };
        let mut master =
            MasterAggregator::new(AggregationPlan::plain(dim, 100), codec, 5, 2);
        for i in 0..5u64 {
            let update: Vec<f32> = (0..dim).map(|d| ((d + i as usize) as f32).sin() * 0.1).collect();
            master
                .accept(DeviceId(i), &encode(&update, codec), 10)
                .unwrap();
        }
        let (params, n) = master.finalize(&vec![0.0; dim], &[]).unwrap();
        assert_eq!(n, 5);
        // Quantization error is small relative to update magnitude.
        assert!(params.iter().all(|p| p.abs() < 0.2));
        assert!(params.iter().any(|p| p.abs() > 1e-4));
    }

    #[test]
    fn secagg_master_sums_match_plain_within_quantization() {
        let dim = 16;
        let codec = CodecSpec::Identity;
        let updates: Vec<Vec<f32>> = (0..8)
            .map(|i| (0..dim).map(|d| 0.01 * (i * dim + d) as f32).collect())
            .collect();

        let run = |secagg: bool| -> Vec<f32> {
            let plan = if secagg {
                AggregationPlan::with_secagg(dim, 100, 4)
            } else {
                AggregationPlan::plain(dim, 100)
            };
            let mut master = MasterAggregator::new(plan, codec, 8, 3);
            for (i, u) in updates.iter().enumerate() {
                master
                    .accept(DeviceId(i as u64), &encode(u, codec), 5)
                    .unwrap();
            }
            master.finalize(&vec![0.0; dim], &[]).unwrap().0
        };

        let plain = run(false);
        let secure = run(true);
        for (a, b) in plain.iter().zip(&secure) {
            assert!((a - b).abs() < 1e-3, "plain {a} vs secagg {b}");
        }
    }

    #[test]
    fn secagg_tolerates_dropouts_below_threshold() {
        let dim = 4;
        let codec = CodecSpec::Identity;
        let plan = AggregationPlan::with_secagg(dim, 100, 4);
        let mut master = MasterAggregator::new(plan, codec, 9, 7);
        for i in 0..9u64 {
            let update = vec![0.5f32; dim];
            master
                .accept(DeviceId(i), &encode(&update, codec), 2)
                .unwrap();
        }
        // Two of nine drop after staging (within the 1/3 tolerance).
        let (params, n) = master
            .finalize(&vec![0.0; dim], &[DeviceId(3), DeviceId(6)])
            .unwrap();
        assert_eq!(n, 7);
        // Mean delta of survivors is still 0.5/2-weighted: each update is
        // 0.5 with weight 2, so the average delta = (7*0.5)/(7*2) = 0.25.
        for p in params {
            assert!((p - 0.25).abs() < 1e-3, "{p}");
        }
    }

    #[test]
    fn secagg_fails_when_dropouts_exceed_tolerance() {
        let dim = 4;
        let codec = CodecSpec::Identity;
        let plan = AggregationPlan::with_secagg(dim, 100, 4);
        let mut master = MasterAggregator::new(plan, codec, 6, 7);
        for i in 0..6u64 {
            master
                .accept(DeviceId(i), &encode(&vec![0.1; dim], codec), 1)
                .unwrap();
        }
        // 3 of 6 drop — below the 2/3 threshold.
        let result = master.finalize(
            &vec![0.0; dim],
            &[DeviceId(0), DeviceId(1), DeviceId(2)],
        );
        assert!(matches!(result, Err(ShardError::SecAgg(_))));
    }

    #[test]
    fn dp_clipping_bounds_each_contribution() {
        use fl_core::privacy::DpConfig;
        let dim = 4;
        let codec = CodecSpec::Identity;
        let plan =
            AggregationPlan::plain(dim, 100).with_dp(DpConfig::new(1.0, 0.0, 9));
        let mut master = MasterAggregator::new(plan, codec, 2, 1);
        // One enormous update and one tiny one, equal weights.
        master
            .accept(DeviceId(0), &encode(&[100.0, 0.0, 0.0, 0.0], codec), 1)
            .unwrap();
        master
            .accept(DeviceId(1), &encode(&[0.0, 0.1, 0.0, 0.0], codec), 1)
            .unwrap();
        let (params, _) = master.finalize(&vec![0.0; dim], &[]).unwrap();
        // The huge update was clipped to L2 norm 1: average[0] = 0.5.
        assert!((params[0] - 0.5).abs() < 1e-5, "clipped mean {}", params[0]);
        assert!((params[1] - 0.05).abs() < 1e-5);
    }

    #[test]
    fn dp_noise_is_seeded_and_zero_noise_matches_plain() {
        use fl_core::privacy::DpConfig;
        let dim = 8;
        let codec = CodecSpec::Identity;
        let update = vec![0.1f32; dim];
        let run = |dp: Option<DpConfig>| -> Vec<f32> {
            let mut plan = AggregationPlan::plain(dim, 100);
            if let Some(dp) = dp {
                plan = plan.with_dp(dp);
            }
            let mut master = MasterAggregator::new(plan, codec, 4, 1);
            for i in 0..4u64 {
                master
                    .accept(DeviceId(i), &encode(&update, codec), 5)
                    .unwrap();
            }
            master.finalize(&vec![0.0; dim], &[]).unwrap().0
        };
        let plain = run(None);
        // Huge clip + zero noise: identical to plain aggregation.
        let dp_zero = run(Some(DpConfig::new(1e6, 0.0, 7)));
        assert_eq!(plain, dp_zero);
        // Non-zero noise perturbs, deterministically per seed.
        let noisy_a = run(Some(DpConfig::new(1e6, 0.5, 7)));
        let noisy_b = run(Some(DpConfig::new(1e6, 0.5, 7)));
        let noisy_c = run(Some(DpConfig::new(1e6, 0.5, 8)));
        assert_eq!(noisy_a, noisy_b);
        assert_ne!(noisy_a, noisy_c);
        assert_ne!(noisy_a, plain);
    }

    #[test]
    fn malformed_update_bytes_are_rejected() {
        let mut master = MasterAggregator::new(
            AggregationPlan::plain(4, 10),
            CodecSpec::Identity,
            2,
            1,
        );
        assert!(master.accept(DeviceId(0), &[1, 2, 3], 1).is_err());
    }

    #[test]
    fn empty_master_finalize_errors() {
        let master = MasterAggregator::new(
            AggregationPlan::plain(4, 10),
            CodecSpec::Identity,
            2,
            1,
        );
        assert!(master.finalize(&[0.0; 4], &[]).is_err());
    }

    use fl_actors::{ActorSystem, DeathReason, ScriptedFaults};

    fn drive_master_actor(
        system: &ActorSystem,
        updates: usize,
    ) -> Result<(Vec<f32>, usize), String> {
        let dim = 8;
        let codec = CodecSpec::Identity;
        let master = MasterAggregator::new(AggregationPlan::plain(dim, 3), codec, 10, 1);
        let actor = system.spawn("master", MasterAggregatorActor::new(master));
        for i in 0..updates as u64 {
            let update: Vec<f32> = (0..dim).map(|d| (i as f32) * 0.1 + d as f32).collect();
            actor
                .send(MasterMsg::Update {
                    frame: fl_wire::encode(&fl_wire::WireMessage::ShardUpdate {
                        device: DeviceId(i),
                        update_bytes: encode(&update, codec),
                        weight: i + 1,
                    }),
                })
                .unwrap();
        }
        let (tx, rx) = unbounded();
        actor
            .send(MasterMsg::Finalize {
                frame: fl_wire::encode(&fl_wire::WireMessage::ShardFinalize {
                    current_params: vec![1.0f32; dim],
                    dropouts: Vec::new(),
                }),
                reply: tx,
            })
            .unwrap();
        let reply_frame = rx.recv().unwrap();
        let result = match fl_wire::decode(&reply_frame).unwrap() {
            fl_wire::WireMessage::ShardMerged { merged } => {
                merged.map(|(params, n)| (params, n as usize))
            }
            other => panic!("expected ShardMerged, got {other:?}"),
        };
        system.join();
        result
    }

    /// The actor tree (master + shard children over real threads) commits
    /// byte-identical parameters to the struct driver, and every actor in
    /// the tree dies with the round (observable via obituaries).
    #[test]
    fn actor_master_matches_struct_master_and_dies_with_round() {
        let dim = 8;
        let codec = CodecSpec::Identity;
        let mut reference =
            MasterAggregator::new(AggregationPlan::plain(dim, 3), codec, 10, 1);
        assert!(reference.shard_count() > 1);
        for i in 0..10u64 {
            let update: Vec<f32> = (0..dim).map(|d| (i as f32) * 0.1 + d as f32).collect();
            reference
                .accept(DeviceId(i), &encode(&update, codec), i + 1)
                .unwrap();
        }
        let expected = reference
            .finalize(&vec![1.0f32; dim], &[])
            .unwrap();

        let system = ActorSystem::new();
        let (params, n) = drive_master_actor(&system, 10).unwrap();
        assert_eq!(n, expected.1);
        assert_eq!(params, expected.0, "actor and struct drivers disagree");

        // The whole ephemeral subtree is dead: master + 4 shards, all
        // normal deaths.
        let obits: Vec<_> = system.deaths().try_iter().collect();
        let names: Vec<&str> = obits.iter().map(|o| o.name.as_str()).collect();
        assert!(names.contains(&"master"), "{names:?}");
        for i in 0..4 {
            let shard = format!("master/agg-{i}");
            assert!(names.iter().any(|n| **n == shard), "{names:?}");
        }
        assert!(obits.iter().all(|o| o.reason == DeathReason::Normal));
    }

    /// Sec. 4.2: an Aggregator crash loses its devices' contributions but
    /// the Master still merges the surviving shards and the round commits.
    #[test]
    fn shard_crash_loses_its_devices_but_finalize_succeeds() {
        let system = ActorSystem::new();
        // Crash shard 1 on its first message: devices routed to it are
        // lost, the other shards survive.
        system.install_fault_injector(std::sync::Arc::new(ScriptedFaults::new().with(
            "master/agg-1",
            1,
            fl_actors::FaultAction::Crash,
        )));
        let (params, n) = drive_master_actor(&system, 10).unwrap();
        // 10 devices round-robin over 4 shards: shard 1 owned devices
        // 1, 5, 9 — the survivors carry the other 7.
        assert_eq!(n, 7);
        assert!(params.iter().all(|p| p.is_finite()));
        let panicked: Vec<_> = system
            .deaths()
            .try_iter()
            .filter(|o| matches!(o.reason, DeathReason::Panicked(_)))
            .map(|o| o.name)
            .collect();
        assert_eq!(panicked, vec!["master/agg-1".to_string()]);
    }
}
