//! Overload protection for the Selector layer (Sec. 2.3, Sec. 4.2).
//!
//! The paper's Selectors "make local decisions about whether or not to
//! accept each device" and pace steering "regulat[es] the pattern of
//! device connections" — but both are open loops if the server never
//! looks at what actually arrives. This module closes the loops:
//!
//! * [`AdmissionController`] — a per-Selector admission gate: a token
//!   bucket caps the sustained *accept rate* and a bounded inflight queue
//!   caps how many held connections a Selector may accumulate. Every shed
//!   decision is a deterministic function of `(state, now_ms)`, so
//!   simulated overload replays byte-for-byte.
//! * [`PaceController`] — closed-loop pace steering: observed check-in
//!   arrival counts per window are folded into P² sketches
//!   ([`fl_ml::metrics`]) and into an exponentially-smoothed *effective
//!   population estimate* that replaces the static estimate
//!   [`PaceSteering`] was previously given. A flash crowd inflates the
//!   estimate, which stretches the suggested reconnect horizon, which
//!   brings the arrival rate back to the target — the SRE-style back
//!   pressure the paper's production deployment relies on.

use crate::pace::{PaceSteering, SMALL_POPULATION};
use fl_core::PopulationName;
use fl_ml::metrics::MetricSummary;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Why a check-in was shed rather than considered for admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The token bucket is empty: the sustained accept rate is at its cap.
    RateExceeded,
    /// The inflight queue (held connections) is at its bound.
    QueueFull,
    /// The fleet-wide admission budget shared across Selectors is spent
    /// for the current window ([`GlobalAdmissionBudget`]).
    GlobalBudget,
}

/// Outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The check-in may proceed to quota/selection logic.
    Admit,
    /// The check-in is shed before any further work.
    Shed(ShedReason),
}

/// Admission-control knobs for one Selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Sustained accepts per second the token bucket refills at.
    pub accepts_per_sec: f64,
    /// Bucket capacity: momentary burst the Selector absorbs without
    /// shedding (also the initial fill).
    pub burst: u32,
    /// Bound on held (inflight) connections; admissions beyond it are
    /// shed with [`ShedReason::QueueFull`].
    pub max_inflight: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            accepts_per_sec: 100.0,
            burst: 200,
            max_inflight: 1_000,
        }
    }
}

impl AdmissionConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.accepts_per_sec.is_finite() && self.accepts_per_sec > 0.0) {
            return Err("accepts_per_sec must be positive and finite".into());
        }
        if self.burst == 0 {
            return Err("burst must be positive".into());
        }
        if self.max_inflight == 0 {
            return Err("max_inflight must be positive".into());
        }
        Ok(())
    }
}

/// Deterministic token-bucket + bounded-queue admission gate.
///
/// The caller owns the inflight queue (for a Selector: its set of held
/// connections) and passes its current depth to [`offer`], keeping a
/// single source of truth for queue depth.
///
/// [`offer`]: AdmissionController::offer
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    tokens: f64,
    last_refill_ms: u64,
    admitted_total: u64,
    shed_rate_total: u64,
    shed_queue_total: u64,
}

impl AdmissionController {
    /// Creates a controller with a full bucket.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`AdmissionConfig::validate`]) — admission control is wired at
    /// topology-construction time, before any device traffic exists.
    pub fn new(config: AdmissionConfig) -> Self {
        assert!(
            config.validate().is_ok(),
            "invalid admission config: {:?}",
            config.validate()
        );
        AdmissionController {
            config,
            tokens: config.burst as f64,
            last_refill_ms: 0,
            admitted_total: 0,
            shed_rate_total: 0,
            shed_queue_total: 0,
        }
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    fn refill(&mut self, now_ms: u64) {
        let elapsed = now_ms.saturating_sub(self.last_refill_ms);
        if elapsed > 0 {
            let refill = elapsed as f64 * self.config.accepts_per_sec / 1_000.0;
            self.tokens = (self.tokens + refill).min(self.config.burst as f64);
            self.last_refill_ms = now_ms;
        }
    }

    /// Decides whether a check-in arriving at `now_ms` may proceed, given
    /// the caller's current inflight queue depth. Admission consumes one
    /// token. Deterministic: the decision depends only on controller
    /// state, `now_ms`, and `inflight`.
    pub fn offer(&mut self, now_ms: u64, inflight: usize) -> AdmissionDecision {
        self.refill(now_ms);
        if inflight >= self.config.max_inflight {
            self.shed_queue_total += 1;
            return AdmissionDecision::Shed(ShedReason::QueueFull);
        }
        if self.tokens < 1.0 {
            self.shed_rate_total += 1;
            return AdmissionDecision::Shed(ShedReason::RateExceeded);
        }
        self.tokens -= 1.0;
        self.admitted_total += 1;
        AdmissionDecision::Admit
    }

    /// Tokens currently available (diagnostics).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Total check-ins admitted.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Total check-ins shed, by reason `(rate_exceeded, queue_full)`.
    pub fn shed_totals(&self) -> (u64, u64) {
        (self.shed_rate_total, self.shed_queue_total)
    }
}

/// Configuration for the fleet-wide admission budget shared by every
/// Selector under one Coordinator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalAdmissionConfig {
    /// Width of the budget window (ms).
    pub window_ms: u64,
    /// Maximum admissions across *all* Selectors per window.
    pub max_admits_per_window: u64,
}

impl GlobalAdmissionConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_ms == 0 {
            return Err("window_ms must be positive".into());
        }
        if self.max_admits_per_window == 0 {
            return Err("max_admits_per_window must be positive".into());
        }
        Ok(())
    }
}

#[derive(Debug)]
struct GlobalBudgetState {
    config: GlobalAdmissionConfig,
    window_start_ms: u64,
    admitted_in_window: u64,
    admitted_total: u64,
    shed_total: u64,
    /// Populations contending on this budget (registered explicitly by
    /// the topology or lazily on first [`GlobalAdmissionBudget::try_admit_for`]).
    registered: BTreeSet<PopulationName>,
    /// Admissions per population in the *current* window (cleared on
    /// window roll) — the fair-share accounting.
    admitted_by_pop: BTreeMap<PopulationName, u64>,
    /// Lifetime admissions per population.
    admitted_total_by_pop: BTreeMap<PopulationName, u64>,
    /// Lifetime global-budget sheds per population.
    shed_total_by_pop: BTreeMap<PopulationName, u64>,
}

impl GlobalBudgetState {
    /// Jumps to the window containing `now_ms`; intervening empty
    /// windows carry no budget forward.
    fn roll(&mut self, now_ms: u64) {
        let elapsed = now_ms.saturating_sub(self.window_start_ms);
        if elapsed >= self.config.window_ms {
            let windows = elapsed / self.config.window_ms;
            self.window_start_ms += windows * self.config.window_ms;
            self.admitted_in_window = 0;
            self.admitted_by_pop.clear();
        }
    }
}

/// A shared, windowed cap on total admissions across every Selector in a
/// topology. Per-Selector [`AdmissionController`]s protect each shard
/// from its own arrival stream; the global budget protects the Master
/// Aggregator fan-in behind them — the paper's tiered Selector→Master
/// topology implies both layers (Sec. 4.2).
///
/// Cheap to clone; all clones share state. Decisions are deterministic
/// functions of `now_ms` and the sequence of prior calls, so simulated
/// overload replays byte-for-byte.
#[derive(Debug, Clone)]
pub struct GlobalAdmissionBudget {
    inner: Arc<fl_race::Mutex<GlobalBudgetState>>,
}

/// Admission decisions touch only this lock — a leaf site (rank table
/// in DESIGN.md §7).
const GLOBAL_BUDGET: fl_race::Site = fl_race::Site::new("server/shedding.global_budget", 62);

impl GlobalAdmissionBudget {
    /// Creates a budget with a full first window starting at time 0.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — budgets are wired at
    /// topology-construction time, before any device traffic exists.
    pub fn new(config: GlobalAdmissionConfig) -> Self {
        assert!(
            config.validate().is_ok(),
            "invalid global admission config: {:?}",
            config.validate()
        );
        GlobalAdmissionBudget {
            inner: Arc::new(fl_race::Mutex::new(GLOBAL_BUDGET, GlobalBudgetState {
                config,
                window_start_ms: 0,
                admitted_in_window: 0,
                admitted_total: 0,
                shed_total: 0,
                registered: BTreeSet::new(),
                admitted_by_pop: BTreeMap::new(),
                admitted_total_by_pop: BTreeMap::new(),
                shed_total_by_pop: BTreeMap::new(),
            })),
        }
    }

    /// The configuration this budget enforces.
    pub fn config(&self) -> GlobalAdmissionConfig {
        self.inner.lock().config
    }

    /// Tries to take one admission slot at `now_ms`, with no population
    /// attribution — the single-tenant path. Returns `false` — shed with
    /// [`ShedReason::GlobalBudget`] — when the current window's budget is
    /// spent. Population-less admissions consume window budget but never
    /// touch the fair-share reservations, so an n=1 topology behaves
    /// exactly as it did before multi-tenancy existed.
    pub fn try_admit(&self, now_ms: u64) -> bool {
        let mut s = self.inner.lock();
        s.roll(now_ms);
        if s.admitted_in_window < s.config.max_admits_per_window {
            s.admitted_in_window += 1;
            s.admitted_total += 1;
            true
        } else {
            s.shed_total += 1;
            false
        }
    }

    /// Pre-declares a population contending on this budget, so its
    /// fair-share slots are reserved from the first window — before its
    /// first check-in ever arrives. The topology registers every
    /// population it spawns a Coordinator for.
    pub fn register_population(&self, population: &PopulationName) {
        self.inner
            .lock()
            .registered
            .insert(population.clone());
    }

    /// Tries to take one admission slot at `now_ms` on behalf of
    /// `population`, enforcing cross-population fairness: with `n`
    /// registered populations each is reserved a fair share of
    /// `max(1, max_admits_per_window / n)` slots per window, and may
    /// exceed its share only out of slack no other population's
    /// reservation still covers. A flash-crowd population therefore
    /// cannot starve a steady one — the steady population's share stays
    /// held for it all window — while an idle population's slots (beyond
    /// the reservation) are not wasted. A population seen here for the
    /// first time is registered automatically.
    pub fn try_admit_for(&self, now_ms: u64, population: &PopulationName) -> bool {
        let mut s = self.inner.lock();
        s.roll(now_ms);
        if !s.registered.contains(population) {
            s.registered.insert(population.clone());
        }
        let max = s.config.max_admits_per_window;
        let fair = (max / s.registered.len() as u64).max(1);
        let mine = s.admitted_by_pop.get(population).copied().unwrap_or(0);
        // Slots still owed to the *other* populations' reservations.
        let others_reserved: u64 = s
            .registered
            .iter()
            .filter(|p| *p != population)
            .map(|p| fair.saturating_sub(s.admitted_by_pop.get(p).copied().unwrap_or(0)))
            .sum();
        let admit = s.admitted_in_window < max
            && (mine < fair || s.admitted_in_window + others_reserved < max);
        if admit {
            s.admitted_in_window += 1;
            s.admitted_total += 1;
            *s.admitted_by_pop.entry(population.clone()).or_insert(0) += 1;
            *s
                .admitted_total_by_pop
                .entry(population.clone())
                .or_insert(0) += 1;
            true
        } else {
            s.shed_total += 1;
            *s.shed_total_by_pop.entry(population.clone()).or_insert(0) += 1;
            false
        }
    }

    /// Total admissions granted over the budget's lifetime.
    pub fn admitted_total(&self) -> u64 {
        self.inner.lock().admitted_total
    }

    /// Total admissions refused over the budget's lifetime.
    pub fn shed_total(&self) -> u64 {
        self.inner.lock().shed_total
    }

    /// Lifetime admissions attributed to `population`.
    pub fn admitted_total_for(&self, population: &PopulationName) -> u64 {
        self.inner
            .lock()
            .admitted_total_by_pop
            .get(population)
            .copied()
            .unwrap_or(0)
    }

    /// Lifetime global-budget sheds attributed to `population`.
    pub fn shed_total_for(&self, population: &PopulationName) -> u64 {
        self.inner
            .lock()
            .shed_total_by_pop
            .get(population)
            .copied()
            .unwrap_or(0)
    }

    /// The populations currently contending on this budget.
    pub fn registered_populations(&self) -> Vec<PopulationName> {
        self.inner.lock().registered.iter().cloned().collect()
    }
}

/// Closed-loop pace-steering knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaceControllerConfig {
    /// Observation window width (ms). Defaults to the pace policy's
    /// rendezvous period so "arrivals per window" and "check-ins per
    /// period" are the same unit.
    pub window_ms: u64,
    /// Smoothing gain in `(0, 1]` applied when folding the implied
    /// population into the running estimate (1.0 = trust each window
    /// fully; lower = smoother, slower).
    pub gain: f64,
    /// Floor for the population estimate.
    pub min_population: u64,
    /// Ceiling for the population estimate.
    pub max_population: u64,
    /// Cap on how far a single window may pull the estimate upward: the
    /// implied population is clipped to `estimate × max_growth_per_window`
    /// before smoothing. The `implied = arrivals × periods_per_return`
    /// law assumes arrivals are *paced* by the current policy; during a
    /// flash crowd the newcomers are unpaced, so one hot window would
    /// otherwise ramp the estimate far above the true population
    /// (ROADMAP: estimate overshoot). Growth-capping bounds the transient
    /// while leaving convergence (and decay, which is uncapped) intact.
    pub max_growth_per_window: f64,
}

impl PaceControllerConfig {
    /// A configuration windowed on the given pace policy's rendezvous
    /// period, with defaults suitable for flash-crowd response within a
    /// handful of windows.
    pub fn for_pace(pace: &PaceSteering) -> Self {
        PaceControllerConfig {
            window_ms: pace.rendezvous_period_ms,
            gain: 0.5,
            min_population: 1,
            max_population: 1 << 40,
            max_growth_per_window: 4.0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_ms == 0 {
            return Err("window_ms must be positive".into());
        }
        if !(self.gain > 0.0 && self.gain <= 1.0) {
            return Err("gain must be in (0, 1]".into());
        }
        if self.min_population == 0 || self.min_population > self.max_population {
            return Err("population bounds must satisfy 0 < min <= max".into());
        }
        if !(self.max_growth_per_window > 1.0 && self.max_growth_per_window.is_finite()) {
            return Err("max_growth_per_window must be finite and > 1".into());
        }
        Ok(())
    }
}

/// Closed-loop pace steering: folds observed check-in arrival rates back
/// into [`PaceSteering`]'s window sizing.
///
/// Every check-in (accepted, rejected, or shed) is an arrival
/// observation. At each window boundary the window's arrival count `A`
/// is folded into P² sketches and converted into the population it
/// *implies* under the current policy: devices spread over a horizon of
/// `max(estimate / target, 1)` periods arrive at
/// `target × population / estimate` per period, so
/// `implied = A × max(estimate / target, 1)`. The estimate then moves
/// toward the implied value by the configured gain — a fixed-point
/// iteration that converges to the true arrival-generating population
/// and therefore sizes reconnect horizons from what the fleet actually
/// does, not from a static guess.
#[derive(Debug, Clone)]
pub struct PaceController {
    pace: PaceSteering,
    config: PaceControllerConfig,
    estimate: f64,
    window_start_ms: u64,
    window_arrivals: u64,
    windows_observed: u64,
    /// Per-window arrival counts (moments + P² p50/p90), for analytics.
    arrival_sketch: MetricSummary,
}

impl PaceController {
    /// Creates a controller seeded with an initial population estimate.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid — controllers are wired at
    /// topology-construction time.
    pub fn new(pace: PaceSteering, initial_population: u64, config: PaceControllerConfig) -> Self {
        assert!(
            config.validate().is_ok(),
            "invalid pace-controller config: {:?}",
            config.validate()
        );
        let estimate = (initial_population.max(config.min_population) as f64)
            .min(config.max_population as f64);
        PaceController {
            pace,
            config,
            estimate,
            window_start_ms: 0,
            window_arrivals: 0,
            windows_observed: 0,
            arrival_sketch: MetricSummary::new("checkin_arrivals_per_window"),
        }
    }

    /// The underlying open-loop policy.
    pub fn pace(&self) -> &PaceSteering {
        &self.pace
    }

    /// Advances the window clock to `now_ms`, folding every completed
    /// window (including empty ones — silence is evidence of a shrinking
    /// population) into the sketch and the estimate.
    fn roll_to(&mut self, now_ms: u64) {
        while now_ms >= self.window_start_ms + self.config.window_ms {
            let arrivals = self.window_arrivals as f64;
            self.arrival_sketch.push(arrivals);
            self.windows_observed += 1;
            let periods_per_return =
                (self.estimate / self.pace.target_checkins as f64).max(1.0);
            let implied = (arrivals * periods_per_return)
                .min(self.estimate * self.config.max_growth_per_window);
            self.estimate = (self.estimate + self.config.gain * (implied - self.estimate))
                .clamp(self.config.min_population as f64, self.config.max_population as f64);
            self.window_start_ms += self.config.window_ms;
            self.window_arrivals = 0;
        }
    }

    /// Records one check-in arrival at `now_ms` (call for every check-in,
    /// whatever its fate — the arrival *rate* is what overloads the
    /// Selector, not the accept rate).
    pub fn on_arrival(&mut self, now_ms: u64) {
        self.roll_to(now_ms);
        self.window_arrivals += 1;
    }

    /// Suggests a reconnect time for a device rejected or shed at
    /// `now_ms`, using the observed-rate population estimate.
    pub fn suggest_reconnect<R: rand::Rng>(
        &mut self,
        now_ms: u64,
        activity_factor: f64,
        rng: &mut R,
    ) -> u64 {
        self.roll_to(now_ms);
        self.pace
            .suggest_reconnect(now_ms, self.population_estimate(), activity_factor, rng)
    }

    /// The current effective population estimate.
    pub fn population_estimate(&self) -> u64 {
        self.estimate.round().max(1.0) as u64
    }

    /// Overrides the estimate (a Coordinator pushing census data). The
    /// closed loop keeps adjusting from the new value.
    pub fn set_population_estimate(&mut self, estimate: u64) {
        self.estimate = (estimate.max(self.config.min_population) as f64)
            .min(self.config.max_population as f64);
    }

    /// Completed observation windows so far.
    pub fn windows_observed(&self) -> u64 {
        self.windows_observed
    }

    /// Whether the estimate currently sits in the spread (large
    /// population) regime rather than the rendezvous (small) regime.
    pub fn in_spread_regime(&self) -> bool {
        self.population_estimate() > SMALL_POPULATION
    }

    /// The per-window arrival-count sketch (moments + P² quantiles).
    pub fn arrival_sketch(&self) -> &MetricSummary {
        &self.arrival_sketch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_ml::rng::seeded;

    #[test]
    fn bucket_admits_burst_then_sheds_on_rate() {
        let mut a = AdmissionController::new(AdmissionConfig {
            accepts_per_sec: 10.0,
            burst: 5,
            max_inflight: 100,
        });
        for _ in 0..5 {
            assert_eq!(a.offer(0, 0), AdmissionDecision::Admit);
        }
        assert_eq!(
            a.offer(0, 0),
            AdmissionDecision::Shed(ShedReason::RateExceeded)
        );
        // 100 ms later one token has refilled.
        assert_eq!(a.offer(100, 0), AdmissionDecision::Admit);
        assert_eq!(
            a.offer(100, 0),
            AdmissionDecision::Shed(ShedReason::RateExceeded)
        );
        assert_eq!(a.admitted_total(), 6);
        assert_eq!(a.shed_totals(), (2, 0));
    }

    #[test]
    fn full_queue_sheds_regardless_of_tokens() {
        let mut a = AdmissionController::new(AdmissionConfig {
            accepts_per_sec: 1_000.0,
            burst: 1_000,
            max_inflight: 3,
        });
        assert_eq!(
            a.offer(0, 3),
            AdmissionDecision::Shed(ShedReason::QueueFull)
        );
        assert_eq!(a.offer(0, 2), AdmissionDecision::Admit);
        assert_eq!(a.shed_totals(), (0, 1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut a = AdmissionController::new(AdmissionConfig {
            accepts_per_sec: 100.0,
            burst: 10,
            max_inflight: 100,
        });
        // Long idle period: bucket holds at burst, not unbounded.
        let mut admitted = 0;
        for _ in 0..50 {
            if a.offer(3_600_000, 0) == AdmissionDecision::Admit {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10);
    }

    #[test]
    fn admission_decisions_are_deterministic() {
        let run = || {
            let mut a = AdmissionController::new(AdmissionConfig {
                accepts_per_sec: 7.0,
                burst: 4,
                max_inflight: 6,
            });
            (0..200)
                .map(|i| a.offer(i * 37, (i % 8) as usize))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    fn controller(initial: u64) -> PaceController {
        let pace = PaceSteering::new(60_000, 100);
        let config = PaceControllerConfig::for_pace(&pace);
        PaceController::new(pace, initial, config)
    }

    #[test]
    fn steady_arrivals_hold_the_estimate() {
        let mut c = controller(10_000);
        // 10k devices, target 100/period → 100 arrivals per window.
        for w in 0..20u64 {
            for i in 0..100u64 {
                c.on_arrival(w * 60_000 + i * 600);
            }
        }
        let est = c.population_estimate();
        assert!(
            (8_000..=12_000).contains(&est),
            "estimate {est} drifted from 10k"
        );
    }

    #[test]
    fn flash_crowd_inflates_the_estimate_within_five_windows() {
        let mut c = controller(10_000);
        // Warm up at the steady rate.
        for w in 0..5u64 {
            for i in 0..100u64 {
                c.on_arrival(w * 60_000 + i * 600);
            }
        }
        // 10× step: 1000 arrivals per window.
        for w in 5..10u64 {
            for i in 0..1_000u64 {
                c.on_arrival(w * 60_000 + i * 60);
            }
        }
        c.on_arrival(10 * 60_000); // close window 9
        let est = c.population_estimate();
        assert!(
            est > 60_000,
            "estimate {est} failed to track a 10× flash crowd"
        );
    }

    #[test]
    fn silence_decays_the_estimate() {
        let mut c = controller(500_000);
        for i in 0..100u64 {
            c.on_arrival(i);
        }
        // Long silence: rolling forward folds empty windows in.
        c.on_arrival(40 * 60_000);
        assert!(
            c.population_estimate() < 10_000,
            "estimate {} did not decay over silent windows",
            c.population_estimate()
        );
        assert!(c.windows_observed() >= 40);
    }

    #[test]
    fn stretched_horizon_cuts_the_arrival_rate() {
        // End to end: a herd's worth of rejected devices given closed-loop
        // suggestions land spread over a much longer horizon than the
        // static estimate would produce.
        let mut c = controller(1_000);
        let mut rng = seeded(11);
        // Observe a herd: 20k arrivals in one window.
        for i in 0..20_000u64 {
            c.on_arrival(i * 3);
        }
        c.on_arrival(60_000); // close the window
        assert!(c.in_spread_regime());
        let horizon_end = {
            let mut max_t = 0;
            for _ in 0..2_000 {
                max_t = max_t.max(c.suggest_reconnect(60_000, 1.0, &mut rng));
            }
            max_t
        };
        // Static estimate of 1_000 would concentrate everyone on the next
        // 60 s tick; the controller spreads them over > 10 periods.
        assert!(
            horizon_end > 60_000 * 10,
            "horizon end {horizon_end} too close — no back pressure"
        );
    }

    #[test]
    fn sketch_records_every_window() {
        let mut c = controller(100);
        for w in 0..7u64 {
            c.on_arrival(w * 60_000);
        }
        assert_eq!(c.arrival_sketch().moments.count(), 6);
        assert_eq!(c.windows_observed(), 6);
    }

    /// Regression (ROADMAP estimate overshoot): one unpaced hot window
    /// used to multiply the estimate by `gain × arrivals/target` — a 10×
    /// flash window from 10k pushed the estimate to 55k immediately. The
    /// growth cap bounds a single window's pull to
    /// `estimate × max_growth_per_window`.
    #[test]
    fn single_hot_window_growth_is_capped() {
        let mut c = controller(10_000);
        for i in 0..1_000u64 {
            c.on_arrival(i * 60);
        }
        c.on_arrival(60_000); // close the hot window
        let est = c.population_estimate();
        // gain 0.5, cap 4×: 10_000 + 0.5 × (40_000 − 10_000) = 25_000.
        assert!(
            est <= 25_000,
            "estimate {est} ramped past the growth cap after one window"
        );
        assert!(est > 20_000, "estimate {est} failed to move at all");
    }

    #[test]
    fn growth_cap_does_not_slow_decay() {
        let mut c = controller(500_000);
        c.on_arrival(0);
        c.on_arrival(10 * 60_000);
        assert!(
            c.population_estimate() < 5_000,
            "decay must stay uncapped, got {}",
            c.population_estimate()
        );
    }

    #[test]
    fn global_budget_caps_admits_per_window_across_callers() {
        let budget = GlobalAdmissionBudget::new(GlobalAdmissionConfig {
            window_ms: 1_000,
            max_admits_per_window: 3,
        });
        let clone = budget.clone();
        // Clones share the same window budget.
        assert!(budget.try_admit(0));
        assert!(clone.try_admit(10));
        assert!(budget.try_admit(20));
        assert!(!clone.try_admit(30));
        assert!(!budget.try_admit(999));
        // Next window refills; empty windows carry nothing forward.
        assert!(budget.try_admit(5_500));
        assert_eq!(budget.admitted_total(), 4);
        assert_eq!(clone.shed_total(), 2);
    }

    #[test]
    fn fair_share_reserves_slots_for_the_quiet_population() {
        let budget = GlobalAdmissionBudget::new(GlobalAdmissionConfig {
            window_ms: 1_000,
            max_admits_per_window: 10,
        });
        let greedy = PopulationName::new("pop/greedy");
        let steady = PopulationName::new("pop/steady");
        budget.register_population(&greedy);
        budget.register_population(&steady);
        // The greedy population floods first: it may take only its fair
        // share (5) — the rest of the window is held for the other.
        let admitted: u64 = (0..20)
            .map(|i| u64::from(budget.try_admit_for(i, &greedy)))
            .sum();
        assert_eq!(admitted, 5);
        // The steady population's reserved slots are all still there.
        let admitted: u64 = (0..5)
            .map(|i| u64::from(budget.try_admit_for(500 + i, &steady)))
            .sum();
        assert_eq!(admitted, 5);
        assert_eq!(budget.admitted_total_for(&greedy), 5);
        assert_eq!(budget.admitted_total_for(&steady), 5);
        assert!(budget.shed_total_for(&greedy) > 0);
        assert_eq!(budget.shed_total_for(&steady), 0);
    }

    #[test]
    fn slack_beyond_reservations_is_work_conserving() {
        let budget = GlobalAdmissionBudget::new(GlobalAdmissionConfig {
            window_ms: 1_000,
            max_admits_per_window: 10,
        });
        let a = PopulationName::new("pop/a");
        let b = PopulationName::new("pop/b");
        budget.register_population(&a);
        budget.register_population(&b);
        // B consumes its full share early; A may then run past its own
        // share into the freed slack, up to the window cap.
        for i in 0..5 {
            assert!(budget.try_admit_for(i, &b));
        }
        let admitted: u64 = (0..20)
            .map(|i| u64::from(budget.try_admit_for(100 + i, &a)))
            .sum();
        assert_eq!(admitted, 5);
        assert_eq!(budget.admitted_total(), 10);
    }

    #[test]
    fn lone_population_gets_the_full_window() {
        let budget = GlobalAdmissionBudget::new(GlobalAdmissionConfig {
            window_ms: 1_000,
            max_admits_per_window: 4,
        });
        let only = PopulationName::new("pop/only");
        // Lazy registration on first call; with no one else contending,
        // fairness never binds and the behavior matches `try_admit`.
        let admitted: u64 = (0..6)
            .map(|i| u64::from(budget.try_admit_for(i, &only)))
            .sum();
        assert_eq!(admitted, 4);
        assert_eq!(budget.registered_populations(), vec![only]);
    }

    #[test]
    fn fair_share_resets_each_window() {
        let budget = GlobalAdmissionBudget::new(GlobalAdmissionConfig {
            window_ms: 1_000,
            max_admits_per_window: 4,
        });
        let a = PopulationName::new("pop/a");
        let b = PopulationName::new("pop/b");
        budget.register_population(&a);
        budget.register_population(&b);
        for i in 0..4 {
            let _ = budget.try_admit_for(i, &a);
        }
        // Next window: A's share is fresh again.
        assert!(budget.try_admit_for(1_500, &a));
    }

    #[test]
    fn set_estimate_overrides_and_clamps() {
        let mut c = controller(100);
        c.set_population_estimate(0);
        assert_eq!(c.population_estimate(), 1);
        c.set_population_estimate(42_000);
        assert_eq!(c.population_estimate(), 42_000);
    }
}
