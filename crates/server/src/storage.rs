//! Persistent checkpoint storage (Sec. 4.2, Fig. 1 steps 2 and 6).
//!
//! "Server reads model checkpoint from persistent storage" at round start
//! and "writes global model checkpoint into persistent storage" only after
//! full aggregation. The store's write counter lets tests assert the
//! paper's key property: *per-device updates are never persisted* — one
//! write per committed round, nothing else.

use fl_core::{CoreError, FlCheckpoint};
use fl_race::{Mutex, Site};
use std::collections::HashMap;
use std::sync::Arc;

/// The shared store's lock is a leaf: commits and audits run while
/// holding no other site (rank table in DESIGN.md §7).
const CHECKPOINT_STORE: Site = Site::new("server/storage.checkpoint_store", 50);

/// Abstract checkpoint storage.
pub trait CheckpointStore {
    /// Commits a round's fully-aggregated checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StorageFailure`] if the write did not take
    /// effect. A failed commit must leave the previously committed
    /// checkpoint intact and must not increment [`write_count`]
    /// (`CheckpointStore::write_count`): the caller treats the round as
    /// lost and the last successful checkpoint stays authoritative.
    fn commit(&mut self, checkpoint: FlCheckpoint) -> Result<(), CoreError>;

    /// Loads the latest committed checkpoint for a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] if nothing was ever committed.
    fn latest(&self, task_name: &str) -> Result<FlCheckpoint, CoreError>;

    /// Number of commit operations performed (the audit counter).
    fn write_count(&self) -> u64;
}

/// In-memory store keeping the latest checkpoint per task plus history
/// length, standing in for the production system's distributed storage.
#[derive(Debug, Default)]
pub struct InMemoryCheckpointStore {
    latest: HashMap<String, FlCheckpoint>,
    writes: u64,
    history_len: HashMap<String, u64>,
}

impl InMemoryCheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed rounds for a task.
    pub fn rounds_committed(&self, task_name: &str) -> u64 {
        self.history_len.get(task_name).copied().unwrap_or(0)
    }
}

impl CheckpointStore for InMemoryCheckpointStore {
    fn commit(&mut self, checkpoint: FlCheckpoint) -> Result<(), CoreError> {
        self.writes += 1;
        *self
            .history_len
            .entry(checkpoint.task_name.clone())
            .or_insert(0) += 1;
        self.latest.insert(checkpoint.task_name.clone(), checkpoint);
        Ok(())
    }

    fn latest(&self, task_name: &str) -> Result<FlCheckpoint, CoreError> {
        self.latest
            .get(task_name)
            .cloned()
            .ok_or_else(|| CoreError::UnknownTask(task_name.to_string()))
    }

    fn write_count(&self) -> u64 {
        self.writes
    }
}

/// A cloneable, thread-safe handle to a checkpoint store. The production
/// system's persistent storage is external to any actor (Sec. 4.2), so it
/// survives coordinator crashes; this wrapper gives the live topology the
/// same property — every clone (each coordinator incarnation, plus the
/// test harness) sees one underlying store.
#[derive(Debug, Default)]
pub struct SharedCheckpointStore<S> {
    inner: Arc<Mutex<S>>,
}

impl<S> Clone for SharedCheckpointStore<S> {
    fn clone(&self) -> Self {
        SharedCheckpointStore {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: CheckpointStore> SharedCheckpointStore<S> {
    /// Wraps `inner` in a shared handle.
    pub fn new(inner: S) -> Self {
        SharedCheckpointStore {
            inner: Arc::new(Mutex::new(CHECKPOINT_STORE, inner)),
        }
    }

    /// Runs `f` with read access to the underlying store (for audits the
    /// [`CheckpointStore`] trait does not expose, e.g.
    /// [`InMemoryCheckpointStore::rounds_committed`]).
    pub fn with<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.inner.lock())
    }
}

impl<S: CheckpointStore> CheckpointStore for SharedCheckpointStore<S> {
    fn commit(&mut self, checkpoint: FlCheckpoint) -> Result<(), CoreError> {
        self.inner.lock().commit(checkpoint)
    }

    fn latest(&self, task_name: &str) -> Result<FlCheckpoint, CoreError> {
        self.inner.lock().latest(task_name)
    }

    fn write_count(&self) -> u64 {
        self.inner.lock().write_count()
    }
}

/// A fault-injecting wrapper over any [`CheckpointStore`]: a scripted set
/// of write attempts fail with [`CoreError::StorageFailure`] while leaving
/// the inner store untouched (the write never happened). Attempts are
/// 1-based and count *calls to `commit`*, successful or not, so a chaos
/// plan like "fail the 2nd write" replays identically from a seed.
#[derive(Debug)]
pub struct FaultyCheckpointStore<S> {
    inner: S,
    attempts: u64,
    fail_on: std::collections::BTreeSet<u64>,
}

impl<S: CheckpointStore> FaultyCheckpointStore<S> {
    /// Wraps `inner`; `fail_on` lists the 1-based commit attempts that
    /// must fail.
    pub fn new(inner: S, fail_on: impl IntoIterator<Item = u64>) -> Self {
        FaultyCheckpointStore {
            inner,
            attempts: 0,
            fail_on: fail_on.into_iter().collect(),
        }
    }

    /// Total commit attempts observed so far (successes + failures).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Read access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps back into the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: CheckpointStore> CheckpointStore for FaultyCheckpointStore<S> {
    fn commit(&mut self, checkpoint: FlCheckpoint) -> Result<(), CoreError> {
        self.attempts += 1;
        if self.fail_on.contains(&self.attempts) {
            return Err(CoreError::StorageFailure(format!(
                "injected write failure on attempt {}",
                self.attempts
            )));
        }
        self.inner.commit(checkpoint)
    }

    fn latest(&self, task_name: &str) -> Result<FlCheckpoint, CoreError> {
        self.inner.latest(task_name)
    }

    fn write_count(&self) -> u64 {
        self.inner.write_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_core::RoundId;

    #[test]
    fn commit_then_latest_round_trips() {
        let mut store = InMemoryCheckpointStore::new();
        let ck = FlCheckpoint::new("t", RoundId(3), vec![1.0, 2.0]);
        store.commit(ck.clone()).unwrap();
        assert_eq!(store.latest("t").unwrap(), ck);
        assert_eq!(store.write_count(), 1);
        assert_eq!(store.rounds_committed("t"), 1);
    }

    #[test]
    fn latest_returns_most_recent() {
        let mut store = InMemoryCheckpointStore::new();
        store.commit(FlCheckpoint::new("t", RoundId(1), vec![1.0])).unwrap();
        store.commit(FlCheckpoint::new("t", RoundId(2), vec![2.0])).unwrap();
        assert_eq!(store.latest("t").unwrap().round, RoundId(2));
        assert_eq!(store.rounds_committed("t"), 2);
    }

    #[test]
    fn unknown_task_errors() {
        let store = InMemoryCheckpointStore::new();
        assert!(matches!(
            store.latest("nope"),
            Err(CoreError::UnknownTask(_))
        ));
    }

    #[test]
    fn faulty_store_fails_scripted_attempts_without_side_effects() {
        let mut store = FaultyCheckpointStore::new(InMemoryCheckpointStore::new(), [2]);
        store
            .commit(FlCheckpoint::new("t", RoundId(1), vec![1.0]))
            .unwrap();
        let err = store
            .commit(FlCheckpoint::new("t", RoundId(2), vec![2.0]))
            .unwrap_err();
        assert!(matches!(err, CoreError::StorageFailure(_)));
        // The failed write left no trace: counter unchanged, latest intact.
        assert_eq!(store.write_count(), 1);
        assert_eq!(store.latest("t").unwrap().round, RoundId(1));
        // Attempt 3 is unscripted and succeeds.
        store
            .commit(FlCheckpoint::new("t", RoundId(2), vec![2.0]))
            .unwrap();
        assert_eq!(store.attempts(), 3);
        assert_eq!(store.into_inner().rounds_committed("t"), 2);
    }

    #[test]
    fn tasks_are_isolated() {
        let mut store = InMemoryCheckpointStore::new();
        store.commit(FlCheckpoint::new("a", RoundId(1), vec![1.0])).unwrap();
        store.commit(FlCheckpoint::new("b", RoundId(9), vec![2.0])).unwrap();
        assert_eq!(store.latest("a").unwrap().round, RoundId(1));
        assert_eq!(store.latest("b").unwrap().round, RoundId(9));
    }
}
