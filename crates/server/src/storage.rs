//! Persistent checkpoint storage (Sec. 4.2, Fig. 1 steps 2 and 6).
//!
//! "Server reads model checkpoint from persistent storage" at round start
//! and "writes global model checkpoint into persistent storage" only after
//! full aggregation. The store's write counter lets tests assert the
//! paper's key property: *per-device updates are never persisted* — one
//! write per committed round, nothing else.

use fl_core::{CoreError, FlCheckpoint};
use std::collections::HashMap;

/// Abstract checkpoint storage.
pub trait CheckpointStore {
    /// Commits a round's fully-aggregated checkpoint.
    fn commit(&mut self, checkpoint: FlCheckpoint);

    /// Loads the latest committed checkpoint for a task.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTask`] if nothing was ever committed.
    fn latest(&self, task_name: &str) -> Result<FlCheckpoint, CoreError>;

    /// Number of commit operations performed (the audit counter).
    fn write_count(&self) -> u64;
}

/// In-memory store keeping the latest checkpoint per task plus history
/// length, standing in for the production system's distributed storage.
#[derive(Debug, Default)]
pub struct InMemoryCheckpointStore {
    latest: HashMap<String, FlCheckpoint>,
    writes: u64,
    history_len: HashMap<String, u64>,
}

impl InMemoryCheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed rounds for a task.
    pub fn rounds_committed(&self, task_name: &str) -> u64 {
        self.history_len.get(task_name).copied().unwrap_or(0)
    }
}

impl CheckpointStore for InMemoryCheckpointStore {
    fn commit(&mut self, checkpoint: FlCheckpoint) {
        self.writes += 1;
        *self
            .history_len
            .entry(checkpoint.task_name.clone())
            .or_insert(0) += 1;
        self.latest.insert(checkpoint.task_name.clone(), checkpoint);
    }

    fn latest(&self, task_name: &str) -> Result<FlCheckpoint, CoreError> {
        self.latest
            .get(task_name)
            .cloned()
            .ok_or_else(|| CoreError::UnknownTask(task_name.to_string()))
    }

    fn write_count(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_core::RoundId;

    #[test]
    fn commit_then_latest_round_trips() {
        let mut store = InMemoryCheckpointStore::new();
        let ck = FlCheckpoint::new("t", RoundId(3), vec![1.0, 2.0]);
        store.commit(ck.clone());
        assert_eq!(store.latest("t").unwrap(), ck);
        assert_eq!(store.write_count(), 1);
        assert_eq!(store.rounds_committed("t"), 1);
    }

    #[test]
    fn latest_returns_most_recent() {
        let mut store = InMemoryCheckpointStore::new();
        store.commit(FlCheckpoint::new("t", RoundId(1), vec![1.0]));
        store.commit(FlCheckpoint::new("t", RoundId(2), vec![2.0]));
        assert_eq!(store.latest("t").unwrap().round, RoundId(2));
        assert_eq!(store.rounds_committed("t"), 2);
    }

    #[test]
    fn unknown_task_errors() {
        let store = InMemoryCheckpointStore::new();
        assert!(matches!(
            store.latest("nope"),
            Err(CoreError::UnknownTask(_))
        ));
    }

    #[test]
    fn tasks_are_isolated() {
        let mut store = InMemoryCheckpointStore::new();
        store.commit(FlCheckpoint::new("a", RoundId(1), vec![1.0]));
        store.commit(FlCheckpoint::new("b", RoundId(9), vec![2.0]));
        assert_eq!(store.latest("a").unwrap().round, RoundId(1));
        assert_eq!(store.latest("b").unwrap().round, RoundId(9));
    }
}
