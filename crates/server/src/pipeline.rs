//! Pipelining of Selection with Configuration/Reporting (Sec. 4.3).
//!
//! "While Selection, Configuration and Reporting phases of a round are
//! sequential, the Selection phase doesn't depend on any input from a
//! previous round. This enables latency optimization by running the
//! Selection phase of the next round of the protocol in parallel with the
//! Configuration/Reporting phases of a previous round. Our system
//! architecture enables such pipelining without adding extra complexity,
//! as parallelism is achieved simply by the virtue of Selector actors
//! running the selection process continuously."
//!
//! The mechanism here is the [`SelectionPool`]: a continuously-filled
//! buffer of checked-in devices, decoupled from any specific round.
//! When a round finishes, the next round drains the pool instantly instead
//! of waiting a full selection window. [`estimate_wallclock`] captures the
//! analytic latency model; `fl-sim` exercises the real overlapped
//! execution.

use fl_core::DeviceId;
use std::collections::VecDeque;

/// A continuously-filled pool of devices waiting for the next round —
/// the Selector layer's contribution to pipelining.
#[derive(Debug, Default)]
pub struct SelectionPool {
    /// (device, checked_in_at_ms), FIFO.
    waiting: VecDeque<(DeviceId, u64)>,
    /// Devices whose check-in is older than this are considered stale
    /// (likely no longer idle/charging) and dropped at drain time.
    staleness_ms: u64,
}

impl SelectionPool {
    /// Creates a pool with the given staleness bound.
    pub fn new(staleness_ms: u64) -> Self {
        SelectionPool {
            waiting: VecDeque::new(),
            staleness_ms,
        }
    }

    /// A device checks in while some round is mid-flight.
    pub fn add(&mut self, device: DeviceId, now_ms: u64) {
        self.waiting.push_back((device, now_ms));
    }

    /// Number of devices currently pooled (stale ones included until the
    /// next drain). For capacity/pipelining decisions use
    /// [`fresh_len`](SelectionPool::fresh_len): this raw count
    /// overestimates available devices once entries age past the
    /// staleness bound.
    pub fn len(&self) -> usize {
        self.waiting.len()
    }

    /// Number of devices that would actually survive a drain at `now_ms`
    /// — the count capacity and pipelining decisions must use, since
    /// stale entries still sit in the queue until the next drain but
    /// contribute no participants.
    pub fn fresh_len(&self, now_ms: u64) -> usize {
        self.waiting
            .iter()
            .filter(|(_, t)| now_ms.saturating_sub(*t) <= self.staleness_ms)
            .count()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// Drains up to `k` fresh devices for the next round, discarding stale
    /// entries.
    pub fn drain_fresh(&mut self, k: usize, now_ms: u64) -> Vec<DeviceId> {
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match self.waiting.pop_front() {
                Some((d, t)) => {
                    if now_ms.saturating_sub(t) <= self.staleness_ms {
                        out.push(d);
                    }
                    // Stale devices are silently dropped: they would have
                    // disconnected or lost eligibility by now.
                }
                None => break,
            }
        }
        out
    }
}

/// Analytic wall-clock model for `rounds` rounds: selection takes
/// `selection_ms` (time to gather the target at the ambient check-in
/// rate), configuration + reporting take `reporting_ms`.
///
/// Sequential: every round pays both phases. Pipelined: only the first
/// round pays a full selection window; afterwards selection for round
/// *i+1* hides entirely under round *i*'s reporting (when
/// `selection_ms ≤ reporting_ms`; any excess spills over).
pub fn estimate_wallclock(
    rounds: u64,
    selection_ms: u64,
    reporting_ms: u64,
    pipelined: bool,
) -> u64 {
    if rounds == 0 {
        return 0;
    }
    if !pipelined {
        rounds * (selection_ms + reporting_ms)
    } else {
        // Steady state: each round is gated by the slower of (its own
        // reporting) and (the next round's selection running underneath).
        selection_ms + rounds * reporting_ms.max(selection_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_drains_in_fifo_order() {
        let mut pool = SelectionPool::new(1_000);
        for i in 0..5 {
            pool.add(DeviceId(i), 100);
        }
        assert_eq!(pool.len(), 5);
        let drained = pool.drain_fresh(3, 200);
        assert_eq!(drained, vec![DeviceId(0), DeviceId(1), DeviceId(2)]);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn stale_devices_are_dropped() {
        let mut pool = SelectionPool::new(1_000);
        pool.add(DeviceId(0), 0); // will be stale
        pool.add(DeviceId(1), 5_000); // fresh
        let drained = pool.drain_fresh(5, 5_500);
        assert_eq!(drained, vec![DeviceId(1)]);
        assert!(pool.is_empty());
    }

    /// Regression (satellite 3): `len()` counts stale entries until the
    /// next drain, so decisions based on it overestimate available
    /// devices; `fresh_len(now_ms)` reports what a drain would actually
    /// yield.
    #[test]
    fn fresh_len_excludes_stale_entries() {
        let mut pool = SelectionPool::new(1_000);
        pool.add(DeviceId(0), 0); // stale by t=5_500
        pool.add(DeviceId(1), 5_000);
        pool.add(DeviceId(2), 5_400);
        assert_eq!(pool.len(), 3); // raw count still includes the stale one
        assert_eq!(pool.fresh_len(5_500), 2);
        // fresh_len predicts exactly what drain_fresh yields.
        assert_eq!(pool.drain_fresh(10, 5_500).len(), 2);
        assert_eq!(pool.fresh_len(5_500), 0);
    }

    #[test]
    fn drain_caps_at_k() {
        let mut pool = SelectionPool::new(1_000);
        for i in 0..10 {
            pool.add(DeviceId(i), 100);
        }
        assert_eq!(pool.drain_fresh(4, 100).len(), 4);
        assert_eq!(pool.len(), 6);
    }

    #[test]
    fn pipelining_hides_selection_latency() {
        // 60s selection, 120s reporting, 100 rounds.
        let sequential = estimate_wallclock(100, 60_000, 120_000, false);
        let pipelined = estimate_wallclock(100, 60_000, 120_000, true);
        assert_eq!(sequential, 100 * 180_000);
        assert_eq!(pipelined, 60_000 + 100 * 120_000);
        // One-third latency saving, as selection fully hides.
        assert!((pipelined as f64) < sequential as f64 * 0.7);
    }

    #[test]
    fn pipelining_bounded_by_slowest_phase() {
        // Selection slower than reporting: throughput limited by selection.
        let pipelined = estimate_wallclock(10, 100_000, 50_000, true);
        assert_eq!(pipelined, 100_000 + 10 * 100_000);
    }

    #[test]
    fn zero_rounds_cost_nothing() {
        assert_eq!(estimate_wallclock(0, 1, 1, true), 0);
        assert_eq!(estimate_wallclock(0, 1, 1, false), 0);
    }
}
