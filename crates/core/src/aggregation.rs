//! Streaming, in-memory Federated Averaging (Sec. 4.2 + Appendix B).
//!
//! "No information for a round is written to persistent storage until it is
//! fully aggregated by the Master Aggregator. Specifically, all actors keep
//! their state in memory […]. In-memory aggregation also removes the
//! possibility of attacks within the data center that target persistent
//! logs of per-device updates, because no such logs exist."
//!
//! [`FedAvgAccumulator`] folds each `(Δᵏ, nᵏ)` in as it arrives and keeps
//! only the running sums `w̄ₜ = Σ Δᵏ` and `n̄ₜ = Σ nᵏ`; the per-device
//! update is dropped immediately. Accumulators merge associatively, which
//! is what lets Master Aggregators combine intermediate Aggregator results
//! (Sec. 6's hierarchical aggregation).

use crate::error::CoreError;
use fl_ml::optim::WeightedUpdate;
use serde::{Deserialize, Serialize};

/// Streaming accumulator for Federated Averaging.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedAvgAccumulator {
    /// Running `Σ Δᵏ` (`w̄ₜ` in Appendix B).
    sum_delta: Vec<f32>,
    /// Running `Σ nᵏ` (`n̄ₜ`).
    sum_weight: u64,
    /// Number of updates folded in.
    contributors: usize,
}

impl FedAvgAccumulator {
    /// Creates an accumulator for updates of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        FedAvgAccumulator {
            sum_delta: vec![0.0; dim],
            sum_weight: 0,
            contributors: 0,
        }
    }

    /// Update dimension.
    pub fn dim(&self) -> usize {
        self.sum_delta.len()
    }

    /// Number of updates folded in so far.
    pub fn contributors(&self) -> usize {
        self.contributors
    }

    /// Total weight `n̄ₜ` so far.
    pub fn total_weight(&self) -> u64 {
        self.sum_weight
    }

    /// Folds one device update in and drops it — the streaming path the
    /// paper describes ("updates can be processed online as they are
    /// received without a need to store them", Sec. 10).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] or
    /// [`CoreError::ZeroWeightUpdate`].
    pub fn accumulate(&mut self, update: WeightedUpdate) -> Result<(), CoreError> {
        if update.delta.len() != self.sum_delta.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.sum_delta.len(),
                actual: update.delta.len(),
            });
        }
        if update.weight == 0 {
            return Err(CoreError::ZeroWeightUpdate);
        }
        for (s, d) in self.sum_delta.iter_mut().zip(&update.delta) {
            *s += d;
        }
        self.sum_weight += update.weight;
        self.contributors += 1;
        Ok(())
    }

    /// Merges another accumulator in (hierarchical aggregation: Master
    /// Aggregator ← Aggregators).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if dimensions differ.
    pub fn merge(&mut self, other: &FedAvgAccumulator) -> Result<(), CoreError> {
        if other.sum_delta.len() != self.sum_delta.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.sum_delta.len(),
                actual: other.sum_delta.len(),
            });
        }
        for (s, d) in self.sum_delta.iter_mut().zip(&other.sum_delta) {
            *s += d;
        }
        self.sum_weight += other.sum_weight;
        self.contributors += other.contributors;
        Ok(())
    }

    /// Folds an already-summed masked aggregate in (the Secure Aggregation
    /// path: the server only ever sees the sum, Sec. 6).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] or
    /// [`CoreError::ZeroWeightUpdate`].
    pub fn accumulate_presummed(
        &mut self,
        delta_sum: &[f32],
        weight_sum: u64,
        contributors: usize,
    ) -> Result<(), CoreError> {
        if delta_sum.len() != self.sum_delta.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.sum_delta.len(),
                actual: delta_sum.len(),
            });
        }
        if weight_sum == 0 {
            return Err(CoreError::ZeroWeightUpdate);
        }
        for (s, d) in self.sum_delta.iter_mut().zip(delta_sum) {
            *s += d;
        }
        self.sum_weight += weight_sum;
        self.contributors += contributors;
        Ok(())
    }

    /// Computes the new global parameters `w_{t+1} = w_t + w̄ₜ/n̄ₜ`
    /// (Appendix B) without consuming the accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroWeightUpdate`] if nothing was accumulated,
    /// or a dimension mismatch against `current`.
    pub fn apply_to(&self, current: &[f32]) -> Result<Vec<f32>, CoreError> {
        if current.len() != self.sum_delta.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.sum_delta.len(),
                actual: current.len(),
            });
        }
        if self.sum_weight == 0 {
            return Err(CoreError::ZeroWeightUpdate);
        }
        let inv = 1.0 / self.sum_weight as f32;
        Ok(current
            .iter()
            .zip(&self.sum_delta)
            .map(|(w, d)| w + d * inv)
            .collect())
    }

    /// Adds zero-mean Gaussian noise with standard deviation `sigma` to
    /// every coordinate of the running sum — the server-side DP-FedAvg
    /// perturbation (see [`crate::privacy`]). Applied once per round,
    /// after all updates are folded in.
    pub fn perturb<R: rand::Rng>(&mut self, sigma: f64, rng: &mut R) {
        if sigma <= 0.0 {
            return;
        }
        for s in &mut self.sum_delta {
            *s += fl_ml::rng::normal_with_std(rng, sigma) as f32;
        }
    }

    /// The average update direction `w̄ₜ/n̄ₜ` itself.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroWeightUpdate`] if nothing was accumulated.
    pub fn average_delta(&self) -> Result<Vec<f32>, CoreError> {
        if self.sum_weight == 0 {
            return Err(CoreError::ZeroWeightUpdate);
        }
        let inv = 1.0 / self.sum_weight as f32;
        Ok(self.sum_delta.iter().map(|d| d * inv).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(delta: Vec<f32>, weight: u64) -> WeightedUpdate {
        WeightedUpdate { delta, weight }
    }

    #[test]
    fn single_update_averages_to_itself() {
        let mut acc = FedAvgAccumulator::new(2);
        acc.accumulate(update(vec![2.0, 4.0], 2)).unwrap();
        assert_eq!(acc.average_delta().unwrap(), vec![1.0, 2.0]);
        assert_eq!(acc.apply_to(&[10.0, 10.0]).unwrap(), vec![11.0, 12.0]);
    }

    #[test]
    fn weighting_matches_appendix_b() {
        // Client A: n=1, local delta per-example [1, 0] → Δ = [1, 0].
        // Client B: n=3, local delta per-example [0, 1] → Δ = [0, 3].
        // Average = (Δa + Δb) / (1+3) = [0.25, 0.75].
        let mut acc = FedAvgAccumulator::new(2);
        acc.accumulate(update(vec![1.0, 0.0], 1)).unwrap();
        acc.accumulate(update(vec![0.0, 3.0], 3)).unwrap();
        assert_eq!(acc.average_delta().unwrap(), vec![0.25, 0.75]);
        assert_eq!(acc.contributors(), 2);
        assert_eq!(acc.total_weight(), 4);
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let updates: Vec<WeightedUpdate> = (1..=10)
            .map(|i| update(vec![i as f32, -(i as f32)], i))
            .collect();
        let mut sequential = FedAvgAccumulator::new(2);
        for u in &updates {
            sequential.accumulate(u.clone()).unwrap();
        }
        let mut left = FedAvgAccumulator::new(2);
        let mut right = FedAvgAccumulator::new(2);
        for u in &updates[..4] {
            left.accumulate(u.clone()).unwrap();
        }
        for u in &updates[4..] {
            right.accumulate(u.clone()).unwrap();
        }
        left.merge(&right).unwrap();
        assert_eq!(left, sequential);
    }

    #[test]
    fn presummed_path_matches_streaming_path() {
        let mut streaming = FedAvgAccumulator::new(2);
        streaming.accumulate(update(vec![1.0, 2.0], 1)).unwrap();
        streaming.accumulate(update(vec![3.0, 4.0], 2)).unwrap();
        let mut presummed = FedAvgAccumulator::new(2);
        presummed
            .accumulate_presummed(&[4.0, 6.0], 3, 2)
            .unwrap();
        assert_eq!(streaming, presummed);
    }

    #[test]
    fn rejects_dimension_mismatch_and_zero_weight() {
        let mut acc = FedAvgAccumulator::new(2);
        assert!(matches!(
            acc.accumulate(update(vec![1.0], 1)),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            acc.accumulate(update(vec![1.0, 2.0], 0)),
            Err(CoreError::ZeroWeightUpdate)
        ));
        assert!(matches!(
            acc.average_delta(),
            Err(CoreError::ZeroWeightUpdate)
        ));
    }

    #[test]
    fn merge_rejects_mismatched_dims() {
        let mut a = FedAvgAccumulator::new(2);
        let b = FedAvgAccumulator::new(3);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn order_invariance_within_float_tolerance() {
        let updates: Vec<WeightedUpdate> = (0..50)
            .map(|i| update(vec![(i as f32).sin(), (i as f32).cos()], (i % 7 + 1) as u64))
            .collect();
        let mut forward = FedAvgAccumulator::new(2);
        for u in &updates {
            forward.accumulate(u.clone()).unwrap();
        }
        let mut backward = FedAvgAccumulator::new(2);
        for u in updates.iter().rev() {
            backward.accumulate(u.clone()).unwrap();
        }
        let f = forward.average_delta().unwrap();
        let b = backward.average_delta().unwrap();
        for (x, y) in f.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
