//! `fl-core` — the Federated Learning protocol vocabulary.
//!
//! This crate defines the nouns of Bonawitz et al.'s system, shared by the
//! server (`fl-server`), the device runtime (`fl-device`), the simulator
//! (`fl-sim`), and the tooling (`fl-tools`):
//!
//! * [`population`] — *FL populations* (globally-unique learning problems)
//!   and *FL tasks* (specific computations: training or evaluation), plus
//!   the dynamic task-selection strategies of Sec. 7.1;
//! * [`plan`] — *FL plans* (Sec. 7.2): the device part (model graph stand-in,
//!   data selection criteria, batching/epoch instructions) and server part
//!   (aggregation logic), with the plan versioning of Sec. 7.3;
//! * [`checkpoint`] — *FL checkpoints*: serialized global model state that
//!   travels between server and devices;
//! * [`round`] — round configuration (goal counts, timeouts, over-selection)
//!   and outcomes;
//! * [`events`] — device phase events and the session-shape strings of the
//!   analytics layer (Table 1);
//! * [`aggregation`] — the streaming, in-memory Federated Averaging
//!   accumulator (Sec. 4.2: updates are folded in as they arrive and never
//!   persisted individually);
//! * [`privacy`] — simplified DP-FedAvg clipping/noise configuration
//!   (Sec. 6, footnote 2);
//! * [`retry`] — the device-side reconnect discipline (jittered backoff,
//!   per-task retry budgets) that makes pace steering (Sec. 2.3)
//!   cooperative rather than advisory;
//! * [`traffic`] — download/upload byte accounting (Fig. 9);
//! * [`error`] — the shared error type.

#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

/// Streaming, in-memory Federated Averaging accumulation (Sec. 4.2).
pub mod aggregation;
/// FL checkpoints: serialized global model state (Sec. 7.2).
pub mod checkpoint;
/// The shared error type for protocol-vocabulary operations.
pub mod error;
/// Device phase events and analytics session shapes (Table 1).
pub mod events;
/// FL plans: device and server halves, with versioning (Sec. 7.2–7.3).
pub mod plan;
/// FL populations, tasks, and task-selection strategies (Sec. 7.1).
pub mod population;
/// DP-FedAvg clipping and noise configuration (Sec. 6).
pub mod privacy;
/// Device-side retry discipline: backoff and retry budgets (Sec. 2.3).
pub mod retry;
/// Round configuration (goals, timeouts, over-selection) and outcomes.
pub mod round;
/// Download/upload byte accounting by direction and category (Fig. 9).
pub mod traffic;

pub use checkpoint::FlCheckpoint;
pub use error::CoreError;
pub use events::{DeviceEvent, SessionLog};
pub use plan::FlPlan;
pub use population::{FlTask, PopulationName, TaskKind};
pub use retry::RetryPolicy;
pub use round::{RoundConfig, RoundOutcome};

/// Identifies a device across the protocol. Devices are anonymous (Sec. 3,
/// *Attestation*): the id is an ephemeral handle for a connection, not a
/// user identity.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct DeviceId(pub u64);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device-{}", self.0)
    }
}

/// A round index within an FL task.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct RoundId(pub u64);

impl RoundId {
    /// The next round.
    pub fn next(self) -> RoundId {
        RoundId(self.0 + 1)
    }
}

impl std::fmt::Display for RoundId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "round-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_id_advances() {
        assert_eq!(RoundId(0).next(), RoundId(1));
        assert_eq!(RoundId(41).next().to_string(), "round-42");
    }

    #[test]
    fn device_id_displays() {
        assert_eq!(DeviceId(7).to_string(), "device-7");
    }
}
