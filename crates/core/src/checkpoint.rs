//! FL checkpoints (Sec. 2.1).
//!
//! "The server next sends to each participant the current global model
//! parameters and any other necessary state as an *FL checkpoint*
//! (essentially the serialized state of a TensorFlow session)."
//!
//! Our checkpoint is a named, versioned flat parameter vector with a
//! compact binary wire format, so download/upload byte counts (Fig. 9) are
//! measured on real encodings rather than estimates.

use crate::{CoreError, RoundId};
use serde::{Deserialize, Serialize};

/// Magic bytes identifying the checkpoint wire format.
const MAGIC: &[u8; 4] = b"FLCK";
/// Wire-format version.
const WIRE_VERSION: u8 = 1;

/// The serialized state of the global model, exchanged between server and
/// devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlCheckpoint {
    /// Name of the FL task this checkpoint belongs to.
    pub task_name: String,
    /// Round that produced these parameters.
    pub round: RoundId,
    /// Flat model parameters.
    params: Vec<f32>,
}

impl FlCheckpoint {
    /// Creates a checkpoint.
    pub fn new(task_name: impl Into<String>, round: RoundId, params: Vec<f32>) -> Self {
        FlCheckpoint {
            task_name: task_name.into(),
            round,
            params,
        }
    }

    /// The flat parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the checkpoint holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Consumes the checkpoint, returning the parameters.
    pub fn into_params(self) -> Vec<f32> {
        self.params
    }

    /// Encodes to the compact binary wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let name = self.task_name.as_bytes();
        let mut out = Vec::with_capacity(4 + 1 + 2 + name.len() + 8 + 4 + self.params.len() * 4);
        out.extend_from_slice(MAGIC);
        out.push(WIRE_VERSION);
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.round.0.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        for p in &self.params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Decodes from the binary wire format.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedCheckpoint`] on truncation, bad magic,
    /// unknown wire version, or invalid UTF-8 in the task name.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let bad = |why: &str| CoreError::MalformedCheckpoint(why.to_string());
        if bytes.len() < 7 {
            return Err(bad("too short for header"));
        }
        if &bytes[..4] != MAGIC {
            return Err(bad("bad magic"));
        }
        if bytes[4] != WIRE_VERSION {
            return Err(bad("unknown wire version"));
        }
        let name_len = u16::from_le_bytes([bytes[5], bytes[6]]) as usize;
        let mut at = 7;
        let name_bytes = bytes.get(at..at + name_len).ok_or_else(|| bad("truncated name"))?;
        let task_name = std::str::from_utf8(name_bytes)
            .map_err(|_| bad("task name is not UTF-8"))?
            .to_string();
        at += name_len;
        let round_bytes = bytes.get(at..at + 8).ok_or_else(|| bad("truncated round"))?;
        let round = RoundId(u64::from_le_bytes(round_bytes.try_into().unwrap()));
        at += 8;
        let count_bytes = bytes.get(at..at + 4).ok_or_else(|| bad("truncated count"))?;
        let count = u32::from_le_bytes(count_bytes.try_into().unwrap()) as usize;
        at += 4;
        let mut params = Vec::with_capacity(count);
        for i in 0..count {
            let p = bytes
                .get(at + i * 4..at + (i + 1) * 4)
                .ok_or_else(|| bad("truncated params"))?;
            params.push(f32::from_le_bytes(p.try_into().unwrap()));
        }
        Ok(FlCheckpoint {
            task_name,
            round,
            params,
        })
    }

    /// Size of the encoded checkpoint in bytes (without encoding it).
    pub fn encoded_size(&self) -> usize {
        4 + 1 + 2 + self.task_name.len() + 8 + 4 + self.params.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_bytes() {
        let ck = FlCheckpoint::new("nwp-train", RoundId(17), vec![1.0, -2.5, 0.0, 1e-9]);
        let bytes = ck.to_bytes();
        assert_eq!(bytes.len(), ck.encoded_size());
        let back = FlCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn empty_params_round_trip() {
        let ck = FlCheckpoint::new("t", RoundId(0), vec![]);
        let back = FlCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn detects_bad_magic() {
        let mut bytes = FlCheckpoint::new("t", RoundId(0), vec![1.0]).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            FlCheckpoint::from_bytes(&bytes),
            Err(CoreError::MalformedCheckpoint(_))
        ));
    }

    #[test]
    fn detects_truncation_at_every_boundary() {
        let full = FlCheckpoint::new("task", RoundId(3), vec![1.0, 2.0]).to_bytes();
        for cut in [0, 3, 6, 8, 12, 16, full.len() - 1] {
            assert!(
                FlCheckpoint::from_bytes(&full[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn detects_wrong_wire_version() {
        let mut bytes = FlCheckpoint::new("t", RoundId(0), vec![]).to_bytes();
        bytes[4] = 99;
        assert!(FlCheckpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn into_params_moves_data() {
        let ck = FlCheckpoint::new("t", RoundId(1), vec![3.0, 4.0]);
        assert_eq!(ck.into_params(), vec![3.0, 4.0]);
    }
}
