//! The shared error type for protocol-level operations.

use std::fmt;

/// Errors produced by `fl-core` operations and re-used by the server and
/// device crates.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A checkpoint byte stream is malformed.
    MalformedCheckpoint(String),
    /// An update's dimension does not match the accumulator/model.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Provided dimension.
        actual: usize,
    },
    /// An update with zero weight was submitted.
    ZeroWeightUpdate,
    /// A round was finalized without reaching its minimum participant count.
    InsufficientParticipants {
        /// Devices that reported in time.
        reported: usize,
        /// Minimum required.
        required: usize,
    },
    /// A plan references a runtime version the transform registry cannot
    /// lower to.
    UnsupportedVersion {
        /// The version requested.
        requested: u32,
        /// The oldest version reachable through transformations.
        oldest_supported: u32,
    },
    /// A task or population lookup failed.
    UnknownTask(String),
    /// A persistent-storage write failed (Sec. 4.2: the round's result is
    /// lost but the previously committed checkpoint remains authoritative;
    /// the coordinator must not advance round state past the failure).
    StorageFailure(String),
    /// An internal invariant was violated. Surfaced as an error (the
    /// round is abandoned and its resources reclaimed, Sec. 2.2) rather
    /// than a panic, so a bad round cannot take down the control plane.
    InvariantViolated(String),
    /// Underlying ML error.
    Ml(fl_ml::MlError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MalformedCheckpoint(why) => write!(f, "malformed checkpoint: {why}"),
            CoreError::DimensionMismatch { expected, actual } => {
                write!(f, "update dimension mismatch: expected {expected}, got {actual}")
            }
            CoreError::ZeroWeightUpdate => write!(f, "update has zero weight"),
            CoreError::InsufficientParticipants { reported, required } => write!(
                f,
                "round abandoned: {reported} devices reported, {required} required"
            ),
            CoreError::UnsupportedVersion {
                requested,
                oldest_supported,
            } => write!(
                f,
                "runtime version {requested} unsupported (oldest reachable: {oldest_supported})"
            ),
            CoreError::UnknownTask(name) => write!(f, "unknown task or population: {name}"),
            CoreError::StorageFailure(why) => write!(f, "checkpoint storage failure: {why}"),
            CoreError::InvariantViolated(what) => write!(f, "invariant violated: {what}"),
            CoreError::Ml(e) => write!(f, "ml error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fl_ml::MlError> for CoreError {
    fn from(e: fl_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CoreError::InsufficientParticipants {
            reported: 3,
            required: 10,
        };
        assert!(e.to_string().contains("3 devices"));
        let e = CoreError::from(fl_ml::MlError::EmptyBatch);
        assert!(e.to_string().contains("ml error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
