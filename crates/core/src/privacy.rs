//! Differential-privacy configuration (Sec. 6, footnote 2).
//!
//! "Privacy is enhanced by the ephemeral and focused nature of the FL
//! updates, and can be further augmented with Secure Aggregation and/or
//! differential privacy — e.g., the techniques of McMahan et al. (2018)
//! are currently implemented."
//!
//! This module provides the *simplified DP-FedAvg* server-side mechanism:
//! each device's weighted update is clipped to a fixed L2 norm as it is
//! folded into the (ephemeral, in-memory) aggregate, and calibrated
//! Gaussian noise is added to the sum once, before the average is applied
//! to the global model. As with the rest of the reproduction, the
//! *mechanism* is real; formal ε/δ accounting across rounds is out of
//! scope (the paper likewise defers concrete guarantees to the
//! application).

use serde::{Deserialize, Serialize};

/// Server-side DP-FedAvg parameters for a task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// L2 clip norm applied to each device's weighted update.
    pub clip_norm: f32,
    /// Noise standard deviation as a multiple of the clip norm; the
    /// Gaussian added to the *sum* has `σ = noise_multiplier × clip_norm`.
    pub noise_multiplier: f64,
    /// Seed for the (simulated) noise source, so experiments reproduce.
    pub noise_seed: u64,
}

impl DpConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `clip_norm <= 0` or `noise_multiplier < 0`.
    pub fn new(clip_norm: f32, noise_multiplier: f64, noise_seed: u64) -> Self {
        assert!(clip_norm > 0.0, "clip norm must be positive");
        assert!(noise_multiplier >= 0.0, "noise multiplier must be non-negative");
        DpConfig {
            clip_norm,
            noise_multiplier,
            noise_seed,
        }
    }

    /// The noise standard deviation applied to the aggregate sum.
    pub fn sigma(&self) -> f64 {
        self.noise_multiplier * f64::from(self.clip_norm)
    }
}

/// Clips `v` in place to L2 norm at most `clip`, returning the original
/// norm. A no-op if the vector is already within the ball.
pub fn clip_l2(v: &mut [f32], clip: f32) -> f32 {
    let norm = fl_ml::linalg::l2_norm(v);
    if norm > clip && norm > 0.0 {
        let scale = clip / norm;
        for x in v {
            *x *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_leaves_small_vectors_alone() {
        let mut v = vec![0.3f32, 0.4];
        let norm = clip_l2(&mut v, 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(v, vec![0.3, 0.4]);
    }

    #[test]
    fn clip_scales_large_vectors_onto_the_ball() {
        let mut v = vec![3.0f32, 4.0];
        let norm = clip_l2(&mut v, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let new_norm = fl_ml::linalg::l2_norm(&v);
        assert!((new_norm - 1.0).abs() < 1e-5);
        // Direction preserved.
        assert!((v[0] / v[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn sigma_scales_with_both_parameters() {
        let dp = DpConfig::new(2.0, 1.5, 0);
        assert!((dp.sigma() - 3.0).abs() < 1e-12);
        assert_eq!(DpConfig::new(2.0, 0.0, 0).sigma(), 0.0);
    }

    #[test]
    #[should_panic(expected = "clip norm must be positive")]
    fn rejects_bad_clip() {
        let _ = DpConfig::new(0.0, 1.0, 0);
    }

    #[test]
    fn zero_vector_is_untouched() {
        let mut v = vec![0.0f32; 4];
        assert_eq!(clip_l2(&mut v, 1.0), 0.0);
        assert_eq!(v, vec![0.0; 4]);
    }
}
