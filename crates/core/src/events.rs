//! Device phase events and session shapes (Sec. 5, Table 1).
//!
//! "We also log an event for every state in a training round, and use these
//! logs to generate ASCII visualizations of the sequence of state
//! transitions happening across all devices."
//!
//! Table 1's legend: `-` = FL server checkin, `v` = downloaded plan,
//! `[` = training started, `]` = training completed, `+` = upload started,
//! `^` = upload completed, `#` = upload rejected, `!` = interrupted,
//! `*` = error.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One state transition in a device's training-round session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceEvent {
    /// Device checked in with the FL server.
    CheckIn,
    /// Plan (and checkpoint) downloaded.
    PlanDownloaded,
    /// On-device training started.
    TrainingStarted,
    /// On-device training completed.
    TrainingCompleted,
    /// Result upload started.
    UploadStarted,
    /// Result upload completed and accepted.
    UploadCompleted,
    /// Result upload rejected (reporting window already closed).
    UploadRejected,
    /// Session interrupted (device left the idle/charging state, was
    /// aborted by the server, or lost connectivity).
    Interrupted,
    /// An error occurred (computation or network).
    Error,
}

impl DeviceEvent {
    /// The single-character glyph used in session-shape strings (Table 1).
    pub fn glyph(&self) -> char {
        match self {
            DeviceEvent::CheckIn => '-',
            DeviceEvent::PlanDownloaded => 'v',
            DeviceEvent::TrainingStarted => '[',
            DeviceEvent::TrainingCompleted => ']',
            DeviceEvent::UploadStarted => '+',
            DeviceEvent::UploadCompleted => '^',
            DeviceEvent::UploadRejected => '#',
            DeviceEvent::Interrupted => '!',
            DeviceEvent::Error => '*',
        }
    }

    /// Whether the event terminates a session.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            DeviceEvent::UploadCompleted
                | DeviceEvent::UploadRejected
                | DeviceEvent::Interrupted
                | DeviceEvent::Error
        )
    }
}

impl fmt::Display for DeviceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.glyph())
    }
}

/// The ordered event log of one device's participation in one round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionLog {
    events: Vec<(u64, DeviceEvent)>,
}

impl SessionLog {
    /// Creates an empty session log.
    pub fn new() -> Self {
        SessionLog::default()
    }

    /// Records an event at the given time. Events after a terminal event
    /// are ignored (the session is over).
    pub fn record(&mut self, now_ms: u64, event: DeviceEvent) {
        if self.is_finished() {
            return;
        }
        self.events.push((now_ms, event));
    }

    /// The events recorded so far.
    pub fn events(&self) -> impl Iterator<Item = &(u64, DeviceEvent)> {
        self.events.iter()
    }

    /// Whether the session has reached a terminal event.
    pub fn is_finished(&self) -> bool {
        self.events
            .last()
            .is_some_and(|(_, e)| e.is_terminal())
    }

    /// The session-shape string, e.g. `-v[]+^` (Table 1).
    pub fn shape(&self) -> String {
        self.events.iter().map(|(_, e)| e.glyph()).collect()
    }

    /// Time between the first and last event, if at least two events exist.
    pub fn duration_ms(&self) -> Option<u64> {
        match (self.events.first(), self.events.last()) {
            (Some((start, _)), Some((end, _))) if self.events.len() >= 2 => Some(end - start),
            _ => None,
        }
    }

    /// Whether this session contributed an accepted update.
    pub fn completed_successfully(&self) -> bool {
        self.events
            .last()
            .is_some_and(|(_, e)| *e == DeviceEvent::UploadCompleted)
    }
}

impl fmt::Display for SessionLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(events: &[DeviceEvent]) -> SessionLog {
        let mut log = SessionLog::new();
        for (i, &e) in events.iter().enumerate() {
            log.record(i as u64 * 100, e);
        }
        log
    }

    #[test]
    fn successful_session_shape_matches_table_1() {
        let log = log_of(&[
            DeviceEvent::CheckIn,
            DeviceEvent::PlanDownloaded,
            DeviceEvent::TrainingStarted,
            DeviceEvent::TrainingCompleted,
            DeviceEvent::UploadStarted,
            DeviceEvent::UploadCompleted,
        ]);
        assert_eq!(log.shape(), "-v[]+^");
        assert!(log.completed_successfully());
        assert!(log.is_finished());
    }

    #[test]
    fn rejected_upload_shape_matches_table_1() {
        let log = log_of(&[
            DeviceEvent::CheckIn,
            DeviceEvent::PlanDownloaded,
            DeviceEvent::TrainingStarted,
            DeviceEvent::TrainingCompleted,
            DeviceEvent::UploadStarted,
            DeviceEvent::UploadRejected,
        ]);
        assert_eq!(log.shape(), "-v[]+#");
        assert!(!log.completed_successfully());
    }

    #[test]
    fn interrupted_shape_matches_table_1() {
        let log = log_of(&[
            DeviceEvent::CheckIn,
            DeviceEvent::PlanDownloaded,
            DeviceEvent::TrainingStarted,
            DeviceEvent::Interrupted,
        ]);
        assert_eq!(log.shape(), "-v[!");
    }

    #[test]
    fn paper_example_shapes_from_sec_5() {
        // "-v[]+*": trained fine, upload failed (network issue).
        let network_issue = log_of(&[
            DeviceEvent::CheckIn,
            DeviceEvent::PlanDownloaded,
            DeviceEvent::TrainingStarted,
            DeviceEvent::TrainingCompleted,
            DeviceEvent::UploadStarted,
            DeviceEvent::Error,
        ]);
        assert_eq!(network_issue.shape(), "-v[]+*");
        // "-v[*": failed right after loading the model (model issue).
        let model_issue = log_of(&[
            DeviceEvent::CheckIn,
            DeviceEvent::PlanDownloaded,
            DeviceEvent::TrainingStarted,
            DeviceEvent::Error,
        ]);
        assert_eq!(model_issue.shape(), "-v[*");
    }

    #[test]
    fn events_after_terminal_are_ignored() {
        let mut log = log_of(&[DeviceEvent::CheckIn, DeviceEvent::Error]);
        log.record(999, DeviceEvent::UploadCompleted);
        assert_eq!(log.shape(), "-*");
    }

    #[test]
    fn duration_spans_first_to_last() {
        let log = log_of(&[
            DeviceEvent::CheckIn,
            DeviceEvent::PlanDownloaded,
            DeviceEvent::Interrupted,
        ]);
        assert_eq!(log.duration_ms(), Some(200));
        assert_eq!(SessionLog::new().duration_ms(), None);
    }
}
