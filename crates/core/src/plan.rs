//! FL plans and plan versioning (Sec. 7.2, Sec. 7.3).
//!
//! "An FL plan consists of two parts: one for the device and one for the
//! server. The device portion […] contains, among other things: the
//! TensorFlow graph itself, selection criteria for training data in the
//! example store, instructions on how to batch data and how many epochs to
//! run on the device, labels for the nodes in the graph which represent
//! certain computations […]. The server part contains the aggregation
//! logic."
//!
//! Our graph stand-in is a [`ModelSpec`] (which the device runtime can
//! instantiate into an `fl_ml` model) plus an op list ([`PlanOp`]) the
//! runtime interprets. Sec. 7.3's *versioned plans* are reproduced
//! faithfully: each op carries the runtime version that introduced it, and
//! [`DevicePlan::lower_to_version`] rewrites newer ops into sequences of
//! older ones ("derived from the default (unversioned) FL plan by
//! transforming its computation graph to achieve compatibility with a
//! deployed TensorFlow version").

use crate::error::CoreError;
use fl_ml::compress::{IdentityCodec, PipelineCodec, QuantizeCodec, SubsampleCodec, UpdateCodec};
use fl_ml::models::{EmbeddingLm, LinearRegression, LogisticRegression, Mlp};
use fl_ml::Model;
use serde::{Deserialize, Serialize};

/// The newest runtime version this workspace knows about.
pub const CURRENT_RUNTIME_VERSION: u32 = 3;
/// The oldest runtime version reachable through plan transformations.
pub const OLDEST_SUPPORTED_VERSION: u32 = 1;

/// A declarative model description — the reproduction's "TensorFlow graph".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Linear regression over `dim` features.
    Linear {
        /// Feature dimension.
        dim: usize,
    },
    /// Softmax classifier.
    Logistic {
        /// Feature dimension.
        dim: usize,
        /// Number of classes.
        classes: usize,
        /// Initialization seed.
        seed: u64,
    },
    /// One-hidden-layer MLP.
    Mlp {
        /// Feature dimension.
        dim: usize,
        /// Hidden width.
        hidden: usize,
        /// Number of classes.
        classes: usize,
        /// Initialization seed.
        seed: u64,
    },
    /// CBOW next-word predictor.
    EmbeddingLm {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding dimension.
        dim: usize,
        /// Initialization seed.
        seed: u64,
    },
}

impl ModelSpec {
    /// Instantiates the model described by the spec.
    pub fn instantiate(&self) -> Box<dyn Model + Send> {
        match *self {
            ModelSpec::Linear { dim } => Box::new(LinearRegression::new(dim)),
            ModelSpec::Logistic { dim, classes, seed } => {
                Box::new(LogisticRegression::new(dim, classes, seed))
            }
            ModelSpec::Mlp {
                dim,
                hidden,
                classes,
                seed,
            } => Box::new(Mlp::new(dim, hidden, classes, seed)),
            ModelSpec::EmbeddingLm { vocab, dim, seed } => {
                Box::new(EmbeddingLm::new(vocab, dim, seed))
            }
        }
    }

    /// Number of parameters the instantiated model will have.
    pub fn num_params(&self) -> usize {
        match *self {
            ModelSpec::Linear { dim } => dim + 1,
            ModelSpec::Logistic { dim, classes, .. } => classes * dim + classes,
            ModelSpec::Mlp {
                dim,
                hidden,
                classes,
                ..
            } => hidden * dim + hidden + classes * hidden + classes,
            ModelSpec::EmbeddingLm { vocab, dim, .. } => 2 * vocab * dim + vocab,
        }
    }
}

/// A serializable description of an update-compression codec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CodecSpec {
    /// No compression.
    Identity,
    /// Int8 block quantization.
    Quantize {
        /// Block size for per-block scales.
        block: usize,
    },
    /// Seeded random subsampling.
    Subsample {
        /// Fraction of coordinates kept.
        keep: f64,
        /// Mask seed (shared with the server).
        seed: u64,
    },
    /// Subsample then quantize.
    Pipeline {
        /// Fraction of coordinates kept.
        keep: f64,
        /// Mask seed.
        seed: u64,
        /// Quantization block size.
        block: usize,
    },
}

impl CodecSpec {
    /// Builds the codec.
    pub fn build(&self) -> Box<dyn UpdateCodec + Send + Sync> {
        match *self {
            CodecSpec::Identity => Box::new(IdentityCodec),
            CodecSpec::Quantize { block } => Box::new(QuantizeCodec::new(block)),
            CodecSpec::Subsample { keep, seed } => Box::new(SubsampleCodec::new(keep, seed)),
            CodecSpec::Pipeline { keep, seed, block } => {
                Box::new(PipelineCodec::new(keep, seed, block))
            }
        }
    }
}

/// One instruction in the device portion of a plan.
///
/// Each op records the runtime version that introduced it; see
/// [`DevicePlan::lower_to_version`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanOp {
    /// Load the global model parameters from the received checkpoint. (v1)
    LoadCheckpoint,
    /// Query the example store. (v1)
    QueryExamples {
        /// Maximum examples to use (`None` = all).
        limit: Option<usize>,
        /// Query the held-out slice (evaluation tasks).
        held_out: bool,
    },
    /// One epoch of minibatch SGD. (v1)
    TrainEpoch {
        /// Minibatch size.
        batch_size: usize,
        /// Learning rate.
        learning_rate: f32,
    },
    /// Fused multi-epoch training loop. (v3 — newer runtimes fuse the loop;
    /// lowering rewrites it into `epochs` × [`PlanOp::TrainEpoch`].)
    Train {
        /// Number of local epochs.
        epochs: usize,
        /// Minibatch size.
        batch_size: usize,
        /// Learning rate.
        learning_rate: f32,
    },
    /// Compute loss over the selected examples. (v1)
    ComputeLoss,
    /// Compute top-1 accuracy over the selected examples. (v1)
    ComputeAccuracy,
    /// Combined metrics op. (v2 — lowers to `ComputeLoss; ComputeAccuracy`.)
    ComputeMetrics,
    /// Build the weighted update `Δ = n(w − w₀)`. (v1)
    BuildUpdate,
}

impl PlanOp {
    /// The runtime version that introduced this op.
    pub fn min_version(&self) -> u32 {
        match self {
            PlanOp::Train { .. } => 3,
            PlanOp::ComputeMetrics => 2,
            _ => 1,
        }
    }

    /// Rewrites this op into semantically equivalent ops available at
    /// `version`, or `None` if no rewrite exists.
    fn lower(&self, version: u32) -> Option<Vec<PlanOp>> {
        if self.min_version() <= version {
            return Some(vec![self.clone()]);
        }
        match self {
            PlanOp::Train {
                epochs,
                batch_size,
                learning_rate,
            } => {
                // v3 fused loop → repeated v1 epochs.
                let lowered = vec![
                    PlanOp::TrainEpoch {
                        batch_size: *batch_size,
                        learning_rate: *learning_rate,
                    };
                    (*epochs).max(1)
                ];
                Some(lowered)
            }
            PlanOp::ComputeMetrics => {
                Some(vec![PlanOp::ComputeLoss, PlanOp::ComputeAccuracy])
            }
            _ => None,
        }
    }
}

/// The device portion of an FL plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePlan {
    /// The model to instantiate (the "TensorFlow graph").
    pub model: ModelSpec,
    /// The op sequence the runtime interprets.
    pub ops: Vec<PlanOp>,
    /// Codec for the reported update.
    pub update_codec: CodecSpec,
    /// Size of the serialized graph payload in bytes. In the production
    /// system the plan "is comparable with the global model" in size
    /// (Appendix A, Fig. 9 discussion); plan builders default this to the
    /// model's parameter byte count.
    pub graph_payload_bytes: usize,
}

impl DevicePlan {
    /// The runtime version this plan requires (max over its ops).
    pub fn required_version(&self) -> u32 {
        self.ops
            .iter()
            .map(PlanOp::min_version)
            .max()
            .unwrap_or(OLDEST_SUPPORTED_VERSION)
    }

    /// Produces a versioned plan executable by runtimes at `version`
    /// (Sec. 7.3). Ops newer than `version` are rewritten via the transform
    /// registry; the result is semantically equivalent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedVersion`] if an op cannot be lowered
    /// to `version`.
    pub fn lower_to_version(&self, version: u32) -> Result<DevicePlan, CoreError> {
        if version < OLDEST_SUPPORTED_VERSION {
            return Err(CoreError::UnsupportedVersion {
                requested: version,
                oldest_supported: OLDEST_SUPPORTED_VERSION,
            });
        }
        let mut ops = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            // Lower repeatedly until fixed point (a v3 op may lower to v2
            // ops that themselves need lowering to v1).
            let mut pending = vec![op.clone()];
            loop {
                let mut next = Vec::with_capacity(pending.len());
                let mut changed = false;
                for p in &pending {
                    match p.lower(version) {
                        Some(replacement) => {
                            changed |= replacement.len() != 1 || replacement[0] != *p;
                            next.extend(replacement);
                        }
                        None => {
                            return Err(CoreError::UnsupportedVersion {
                                requested: version,
                                oldest_supported: OLDEST_SUPPORTED_VERSION,
                            })
                        }
                    }
                }
                pending = next;
                if !changed {
                    break;
                }
            }
            ops.extend(pending);
        }
        Ok(DevicePlan {
            model: self.model,
            ops,
            update_codec: self.update_codec,
            graph_payload_bytes: self.graph_payload_bytes,
        })
    }

    /// Approximate wire size of the plan: graph payload + a small fixed
    /// cost per op.
    pub fn encoded_size(&self) -> usize {
        self.graph_payload_bytes + self.ops.len() * 16 + 64
    }
}

/// The server portion of an FL plan: the aggregation logic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerPlan {
    /// Expected update dimension (must equal the model's parameter count).
    pub expected_dim: usize,
    /// Codec the server uses to decode reported updates.
    pub update_codec: CodecSpec,
}

/// A complete FL plan: device part + server part.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlPlan {
    /// The device portion.
    pub device: DevicePlan,
    /// The server portion.
    pub server: ServerPlan,
}

impl FlPlan {
    /// Builds the standard training plan for a model: load, query, train,
    /// metrics, update. This mirrors what `fl-tools`' plan generator emits;
    /// it lives here so server/device tests don't depend on the tooling
    /// crate.
    pub fn standard_training(
        model: ModelSpec,
        epochs: usize,
        batch_size: usize,
        learning_rate: f32,
        codec: CodecSpec,
    ) -> Self {
        let device = DevicePlan {
            model,
            ops: vec![
                PlanOp::LoadCheckpoint,
                PlanOp::QueryExamples {
                    limit: None,
                    held_out: false,
                },
                PlanOp::Train {
                    epochs,
                    batch_size,
                    learning_rate,
                },
                PlanOp::ComputeMetrics,
                PlanOp::BuildUpdate,
            ],
            update_codec: codec,
            graph_payload_bytes: model.num_params() * 4,
        };
        let server = ServerPlan {
            expected_dim: model.num_params(),
            update_codec: codec,
        };
        FlPlan { device, server }
    }

    /// Builds the standard evaluation plan: load, query held-out, metrics.
    pub fn standard_evaluation(model: ModelSpec) -> Self {
        let device = DevicePlan {
            model,
            ops: vec![
                PlanOp::LoadCheckpoint,
                PlanOp::QueryExamples {
                    limit: None,
                    held_out: true,
                },
                PlanOp::ComputeMetrics,
            ],
            update_codec: CodecSpec::Identity,
            graph_payload_bytes: model.num_params() * 4,
        };
        let server = ServerPlan {
            expected_dim: model.num_params(),
            update_codec: CodecSpec::Identity,
        };
        FlPlan { device, server }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ModelSpec {
        ModelSpec::Logistic {
            dim: 4,
            classes: 3,
            seed: 0,
        }
    }

    #[test]
    fn model_spec_param_counts_match_instances() {
        for s in [
            ModelSpec::Linear { dim: 7 },
            spec(),
            ModelSpec::Mlp {
                dim: 5,
                hidden: 9,
                classes: 3,
                seed: 1,
            },
            ModelSpec::EmbeddingLm {
                vocab: 20,
                dim: 4,
                seed: 2,
            },
        ] {
            assert_eq!(s.instantiate().num_params(), s.num_params());
        }
    }

    #[test]
    fn standard_training_plan_requires_v3() {
        let plan = FlPlan::standard_training(spec(), 2, 8, 0.1, CodecSpec::Identity);
        assert_eq!(plan.device.required_version(), 3);
        assert_eq!(plan.server.expected_dim, spec().num_params());
    }

    #[test]
    fn lowering_to_v1_expands_train_and_metrics() {
        let plan = FlPlan::standard_training(spec(), 3, 8, 0.1, CodecSpec::Identity);
        let lowered = plan.device.lower_to_version(1).unwrap();
        assert_eq!(lowered.required_version(), 1);
        let epochs = lowered
            .ops
            .iter()
            .filter(|op| matches!(op, PlanOp::TrainEpoch { .. }))
            .count();
        assert_eq!(epochs, 3);
        assert!(lowered.ops.contains(&PlanOp::ComputeLoss));
        assert!(lowered.ops.contains(&PlanOp::ComputeAccuracy));
        assert!(!lowered.ops.iter().any(|op| matches!(op, PlanOp::Train { .. })));
    }

    #[test]
    fn lowering_to_v2_keeps_metrics_fused() {
        let plan = FlPlan::standard_training(spec(), 2, 8, 0.1, CodecSpec::Identity);
        let lowered = plan.device.lower_to_version(2).unwrap();
        assert!(lowered.ops.contains(&PlanOp::ComputeMetrics));
        assert!(!lowered.ops.iter().any(|op| matches!(op, PlanOp::Train { .. })));
    }

    #[test]
    fn lowering_to_current_version_is_identity() {
        let plan = FlPlan::standard_training(spec(), 2, 8, 0.1, CodecSpec::Identity);
        let lowered = plan.device.lower_to_version(CURRENT_RUNTIME_VERSION).unwrap();
        assert_eq!(lowered, plan.device);
    }

    #[test]
    fn lowering_below_v1_fails() {
        let plan = FlPlan::standard_training(spec(), 1, 8, 0.1, CodecSpec::Identity);
        assert!(matches!(
            plan.device.lower_to_version(0),
            Err(CoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn plan_size_is_comparable_to_model_size() {
        let plan = FlPlan::standard_training(
            ModelSpec::EmbeddingLm {
                vocab: 1000,
                dim: 16,
                seed: 0,
            },
            1,
            16,
            0.1,
            CodecSpec::Identity,
        );
        let model_bytes = plan.server.expected_dim * 4;
        let plan_bytes = plan.device.encoded_size();
        let ratio = plan_bytes as f64 / model_bytes as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn codec_specs_build_working_codecs() {
        let update = vec![0.5f32; 100];
        for spec in [
            CodecSpec::Identity,
            CodecSpec::Quantize { block: 32 },
            CodecSpec::Subsample { keep: 0.5, seed: 1 },
            CodecSpec::Pipeline {
                keep: 0.5,
                seed: 1,
                block: 32,
            },
        ] {
            let codec = spec.build();
            let enc = codec.encode(&update);
            let dec = codec.decode(&enc, 100).unwrap();
            assert_eq!(dec.len(), 100);
        }
    }

    #[test]
    fn evaluation_plan_has_no_training_ops() {
        let plan = FlPlan::standard_evaluation(spec());
        assert!(!plan
            .device
            .ops
            .iter()
            .any(|op| matches!(op, PlanOp::Train { .. } | PlanOp::TrainEpoch { .. })));
        assert!(!plan
            .device
            .ops
            .iter()
            .any(|op| matches!(op, PlanOp::BuildUpdate)));
    }
}
