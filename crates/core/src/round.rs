//! Round configuration and outcomes (Sec. 2.2, Sec. 9).
//!
//! "The selection and reporting phases are specified by a set of parameters
//! which spawn flexible time windows. For example, for the selection phase
//! the server considers a device participant goal count, a timeout, and a
//! minimal percentage of the goal count which is required to run the round."
//!
//! Sec. 9 adds the production numbers: "the server typically selects 130%
//! of the target number of devices to initially participate" to compensate
//! for 6–10% drop-out and to allow stragglers to be discarded, and device
//! participation time is capped.

use serde::{Deserialize, Serialize};

/// Parameters governing one FL round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundConfig {
    /// Target number of devices whose updates should be incorporated
    /// (`K` in Appendix B).
    pub goal_count: usize,
    /// Over-selection factor; the server configures
    /// `goal_count × overselection` devices (1.3 in production).
    pub overselection: f64,
    /// Minimum fraction of `goal_count` that must check in before the
    /// selection timeout for the round to start.
    pub min_goal_fraction: f64,
    /// Selection-phase timeout in milliseconds.
    pub selection_timeout_ms: u64,
    /// Reporting window in milliseconds; devices reporting later are
    /// rejected ("upload rejected" in Table 1).
    pub report_window_ms: u64,
    /// Cap on a single device's participation time (Fig. 8: "device
    /// participation time is capped […] to deal with straggler devices").
    pub device_cap_ms: u64,
}

impl Default for RoundConfig {
    fn default() -> Self {
        RoundConfig {
            goal_count: 100,
            overselection: 1.3,
            min_goal_fraction: 0.8,
            selection_timeout_ms: 60_000,
            report_window_ms: 180_000,
            device_cap_ms: 150_000,
        }
    }
}

impl RoundConfig {
    /// Number of devices the server tries to configure for the round
    /// (`⌈goal × overselection⌉`).
    pub fn selection_target(&self) -> usize {
        (self.goal_count as f64 * self.overselection).ceil() as usize
    }

    /// Minimum check-ins needed at selection timeout for the round to start.
    pub fn min_to_start(&self) -> usize {
        ((self.goal_count as f64) * self.min_goal_fraction).ceil() as usize
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.goal_count == 0 {
            return Err("goal_count must be positive".into());
        }
        if self.overselection < 1.0 {
            return Err("overselection must be >= 1.0".into());
        }
        if !(0.0..=1.0).contains(&self.min_goal_fraction) {
            return Err("min_goal_fraction must be in [0, 1]".into());
        }
        if self.report_window_ms == 0 || self.selection_timeout_ms == 0 {
            return Err("time windows must be positive".into());
        }
        if self.device_cap_ms > self.report_window_ms {
            return Err("device cap cannot exceed the reporting window".into());
        }
        Ok(())
    }
}

/// Why a round ended the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundOutcome {
    /// Enough devices reported; the global model was updated and committed.
    Committed {
        /// Updates incorporated into the global model.
        incorporated: usize,
        /// Devices aborted after the goal was reached (Fig. 7's "aborted").
        aborted: usize,
        /// Devices that dropped out (computation error, network failure,
        /// eligibility change).
        dropped_out: usize,
    },
    /// Too few devices checked in before the selection timeout.
    AbandonedInSelection {
        /// Devices that had checked in.
        checked_in: usize,
        /// Minimum required to start.
        required: usize,
    },
    /// The round started but too few devices reported before the window
    /// closed.
    AbandonedInReporting {
        /// Devices that reported in time.
        reported: usize,
        /// Goal count.
        required: usize,
    },
}

impl RoundOutcome {
    /// Whether the round updated the global model.
    pub fn is_committed(&self) -> bool {
        matches!(self, RoundOutcome::Committed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_numbers() {
        let c = RoundConfig::default();
        assert_eq!(c.goal_count, 100);
        assert!((c.overselection - 1.3).abs() < 1e-9);
        assert_eq!(c.selection_target(), 130);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn selection_target_rounds_up() {
        let c = RoundConfig {
            goal_count: 3,
            overselection: 1.3,
            ..Default::default()
        };
        assert_eq!(c.selection_target(), 4);
    }

    #[test]
    fn min_to_start_uses_fraction() {
        let c = RoundConfig {
            goal_count: 100,
            min_goal_fraction: 0.75,
            ..Default::default()
        };
        assert_eq!(c.min_to_start(), 75);
    }

    #[test]
    fn validate_catches_bad_configs() {
        let bad = RoundConfig {
            goal_count: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = RoundConfig {
            overselection: 0.9,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = RoundConfig {
            device_cap_ms: 999_999_999,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn outcome_commit_flag() {
        assert!(RoundOutcome::Committed {
            incorporated: 100,
            aborted: 20,
            dropped_out: 10
        }
        .is_committed());
        assert!(!RoundOutcome::AbandonedInSelection {
            checked_in: 5,
            required: 80
        }
        .is_committed());
    }
}
