//! FL populations and FL tasks (Sec. 2.1, Sec. 7.1).
//!
//! "An *FL population* is specified by a globally unique name which
//! identifies the learning problem […]. An *FL task* is a specific
//! computation for an FL population, such as training to be performed with
//! given hyperparameters, or evaluation of trained models on local device
//! data."
//!
//! When multiple tasks are deployed in one population, "the FL service
//! chooses among them using a dynamic strategy that allows alternating
//! between training and evaluation of a single model or A/B comparisons
//! between models" — implemented here as [`TaskSelectionStrategy`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique name of an FL population (a learning problem).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PopulationName(String);

impl PopulationName {
    /// Creates a population name.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty (population names are globally unique
    /// identifiers; an empty one is always a bug).
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "population name must be non-empty");
        PopulationName(name)
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PopulationName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PopulationName {
    fn from(s: &str) -> Self {
        PopulationName::new(s)
    }
}

/// What kind of computation a task runs on device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Local training producing a model update.
    Training,
    /// Evaluation on held-out local data producing metrics only.
    Evaluation,
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskKind::Training => f.write_str("training"),
            TaskKind::Evaluation => f.write_str("evaluation"),
        }
    }
}

/// A specific computation for an FL population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlTask {
    /// Unique task name within the population.
    pub name: String,
    /// The population this task belongs to.
    pub population: PopulationName,
    /// Training or evaluation.
    pub kind: TaskKind,
    /// Round configuration (goal counts, timeouts, …).
    pub round: crate::round::RoundConfig,
    /// Minimum Secure Aggregation group size `k` (Sec. 6); `None` disables
    /// Secure Aggregation for this task.
    pub secagg_group_size: Option<usize>,
    /// Server-side differential-privacy mechanism (Sec. 6, footnote 2);
    /// `None` disables clipping and noise.
    pub dp: Option<crate::privacy::DpConfig>,
    /// Which task's global checkpoint this task reads. `None` = its own.
    /// Evaluation tasks point at their paired training task so they
    /// evaluate the *trained* model (Sec. 7.1's alternating strategy).
    pub checkpoint_source: Option<String>,
}

impl FlTask {
    /// Creates a training task with default round configuration.
    pub fn training(name: impl Into<String>, population: impl Into<PopulationName>) -> Self {
        FlTask {
            name: name.into(),
            population: population.into(),
            kind: TaskKind::Training,
            round: crate::round::RoundConfig::default(),
            secagg_group_size: None,
            dp: None,
            checkpoint_source: None,
        }
    }

    /// Creates an evaluation task with default round configuration.
    pub fn evaluation(name: impl Into<String>, population: impl Into<PopulationName>) -> Self {
        FlTask {
            name: name.into(),
            population: population.into(),
            kind: TaskKind::Evaluation,
            round: crate::round::RoundConfig::default(),
            secagg_group_size: None,
            dp: None,
            checkpoint_source: None,
        }
    }

    /// Sets the round configuration.
    pub fn with_round(mut self, round: crate::round::RoundConfig) -> Self {
        self.round = round;
        self
    }

    /// Enables Secure Aggregation with minimum group size `k`.
    pub fn with_secagg(mut self, k: usize) -> Self {
        self.secagg_group_size = Some(k);
        self
    }

    /// Enables the server-side DP-FedAvg mechanism.
    pub fn with_dp(mut self, dp: crate::privacy::DpConfig) -> Self {
        self.dp = Some(dp);
        self
    }

    /// Points this task at another task's global checkpoint (evaluation
    /// tasks evaluate their training task's model).
    pub fn with_checkpoint_source(mut self, source: impl Into<String>) -> Self {
        self.checkpoint_source = Some(source.into());
        self
    }
}

impl From<String> for PopulationName {
    fn from(s: String) -> Self {
        PopulationName::new(s)
    }
}

/// How the FL service chooses among multiple tasks deployed in one
/// population (Sec. 7.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskSelectionStrategy {
    /// Always run the single configured task.
    Single,
    /// Alternate between training and evaluation of one model: run
    /// `train_rounds` training rounds, then one evaluation round.
    AlternateTrainEval {
        /// Training rounds between evaluation rounds.
        train_rounds: u64,
    },
    /// A/B comparison: interleave the listed task indices round-robin.
    AbComparison {
        /// Task indices to rotate through.
        arms: Vec<usize>,
    },
}

/// A population's deployed task group plus its selection strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGroup {
    tasks: Vec<FlTask>,
    strategy: TaskSelectionStrategy,
}

impl TaskGroup {
    /// Creates a task group.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty, if an `AbComparison` arm index is out of
    /// range, or if `AlternateTrainEval` is used without exactly one
    /// training and one evaluation task.
    pub fn new(tasks: Vec<FlTask>, strategy: TaskSelectionStrategy) -> Self {
        assert!(!tasks.is_empty(), "task group must contain at least one task");
        match &strategy {
            TaskSelectionStrategy::Single => {}
            TaskSelectionStrategy::AlternateTrainEval { .. } => {
                let train = tasks.iter().filter(|t| t.kind == TaskKind::Training).count();
                let eval = tasks
                    .iter()
                    .filter(|t| t.kind == TaskKind::Evaluation)
                    .count();
                assert!(
                    train == 1 && eval == 1,
                    "alternate strategy needs exactly one training and one evaluation task"
                );
            }
            TaskSelectionStrategy::AbComparison { arms } => {
                assert!(!arms.is_empty(), "A/B comparison needs at least one arm");
                for &a in arms {
                    assert!(a < tasks.len(), "arm index {a} out of range");
                }
            }
        }
        TaskGroup { tasks, strategy }
    }

    /// The tasks in the group.
    pub fn tasks(&self) -> &[FlTask] {
        &self.tasks
    }

    /// Chooses the task to run for the given global round counter.
    pub fn select(&self, round_counter: u64) -> &FlTask {
        match &self.strategy {
            TaskSelectionStrategy::Single => &self.tasks[0],
            TaskSelectionStrategy::AlternateTrainEval { train_rounds } => {
                let cycle = train_rounds + 1;
                let pos = round_counter % cycle;
                let want = if pos < *train_rounds {
                    TaskKind::Training
                } else {
                    TaskKind::Evaluation
                };
                self.tasks
                    .iter()
                    .find(|t| t.kind == want)
                    .expect("validated at construction")
            }
            TaskSelectionStrategy::AbComparison { arms } => {
                let arm = arms[(round_counter % arms.len() as u64) as usize];
                &self.tasks[arm]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_name_round_trips() {
        let p = PopulationName::new("gboard/next-word");
        assert_eq!(p.as_str(), "gboard/next-word");
        assert_eq!(p.to_string(), "gboard/next-word");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_name_rejected() {
        let _ = PopulationName::new("");
    }

    #[test]
    fn single_strategy_always_picks_first() {
        let g = TaskGroup::new(
            vec![FlTask::training("t", "pop")],
            TaskSelectionStrategy::Single,
        );
        assert_eq!(g.select(0).name, "t");
        assert_eq!(g.select(99).name, "t");
    }

    #[test]
    fn alternate_strategy_cycles_train_then_eval() {
        let g = TaskGroup::new(
            vec![
                FlTask::training("train", "pop"),
                FlTask::evaluation("eval", "pop"),
            ],
            TaskSelectionStrategy::AlternateTrainEval { train_rounds: 3 },
        );
        let kinds: Vec<TaskKind> = (0..8).map(|r| g.select(r).kind).collect();
        assert_eq!(
            kinds,
            vec![
                TaskKind::Training,
                TaskKind::Training,
                TaskKind::Training,
                TaskKind::Evaluation,
                TaskKind::Training,
                TaskKind::Training,
                TaskKind::Training,
                TaskKind::Evaluation,
            ]
        );
    }

    #[test]
    fn ab_comparison_rotates_arms() {
        let g = TaskGroup::new(
            vec![
                FlTask::training("a", "pop"),
                FlTask::training("b", "pop"),
            ],
            TaskSelectionStrategy::AbComparison { arms: vec![0, 1, 1] },
        );
        assert_eq!(g.select(0).name, "a");
        assert_eq!(g.select(1).name, "b");
        assert_eq!(g.select(2).name, "b");
        assert_eq!(g.select(3).name, "a");
    }

    #[test]
    #[should_panic(expected = "exactly one training")]
    fn alternate_strategy_validates_composition() {
        let _ = TaskGroup::new(
            vec![FlTask::training("t", "pop")],
            TaskSelectionStrategy::AlternateTrainEval { train_rounds: 1 },
        );
    }

    #[test]
    fn task_builders_set_fields() {
        let t = FlTask::training("t", "pop").with_secagg(100);
        assert_eq!(t.kind, TaskKind::Training);
        assert_eq!(t.secagg_group_size, Some(100));
    }
}
