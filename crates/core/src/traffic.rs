//! Server network-traffic accounting (Fig. 9, Appendix A).
//!
//! "Fig. 9 illustrates the asymmetry in server network traffic,
//! specifically that download from server dominates upload. […] each device
//! downloads both an FL task plan and current global model (plan size is
//! comparable with the global model) whereas it uploads only updates to the
//! global model; the model updates are inherently more compressible."
//!
//! [`TrafficCounter`] tallies bytes by direction and category so the FIG9
//! harness reports real encoded sizes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a transfer carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficKind {
    /// FL plan sent to a device (download).
    Plan,
    /// Global-model checkpoint sent to a device (download).
    Checkpoint,
    /// Model update reported by a device (upload).
    Update,
    /// Device metrics reported alongside updates (upload).
    Metrics,
    /// Protocol control messages (either direction).
    Control,
}

/// Direction relative to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Server → device.
    Download,
    /// Device → server.
    Upload,
}

impl TrafficKind {
    /// The direction this kind of payload travels (control is counted by
    /// the caller's explicit direction).
    pub fn natural_direction(&self) -> Direction {
        match self {
            TrafficKind::Plan | TrafficKind::Checkpoint => Direction::Download,
            TrafficKind::Update | TrafficKind::Metrics => Direction::Upload,
            TrafficKind::Control => Direction::Download,
        }
    }
}

/// Byte tallies per direction and kind.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficCounter {
    plan_bytes: u64,
    checkpoint_bytes: u64,
    update_bytes: u64,
    metrics_bytes: u64,
    control_download_bytes: u64,
    control_upload_bytes: u64,
}

impl TrafficCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        TrafficCounter::default()
    }

    /// Records a transfer of `bytes` of the given kind in its natural
    /// direction.
    pub fn record(&mut self, kind: TrafficKind, bytes: usize) {
        let bytes = bytes as u64;
        match kind {
            TrafficKind::Plan => self.plan_bytes += bytes,
            TrafficKind::Checkpoint => self.checkpoint_bytes += bytes,
            TrafficKind::Update => self.update_bytes += bytes,
            TrafficKind::Metrics => self.metrics_bytes += bytes,
            TrafficKind::Control => self.control_download_bytes += bytes,
        }
    }

    /// Records a control message with an explicit direction.
    pub fn record_control(&mut self, direction: Direction, bytes: usize) {
        match direction {
            Direction::Download => self.control_download_bytes += bytes as u64,
            Direction::Upload => self.control_upload_bytes += bytes as u64,
        }
    }

    /// Total bytes sent server → devices.
    pub fn download_bytes(&self) -> u64 {
        self.plan_bytes + self.checkpoint_bytes + self.control_download_bytes
    }

    /// Total bytes sent devices → server.
    pub fn upload_bytes(&self) -> u64 {
        self.update_bytes + self.metrics_bytes + self.control_upload_bytes
    }

    /// Download ÷ upload ratio (∞ ⇒ `f64::INFINITY`, 0/0 ⇒ 0).
    pub fn asymmetry(&self) -> f64 {
        let up = self.upload_bytes();
        let down = self.download_bytes();
        if up == 0 {
            if down == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            down as f64 / up as f64
        }
    }

    /// Plan bytes downloaded.
    pub fn plan_bytes(&self) -> u64 {
        self.plan_bytes
    }

    /// Checkpoint bytes downloaded.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.checkpoint_bytes
    }

    /// Update bytes uploaded.
    pub fn update_bytes(&self) -> u64 {
        self.update_bytes
    }

    /// Merges another counter in.
    pub fn merge(&mut self, other: &TrafficCounter) {
        self.plan_bytes += other.plan_bytes;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.update_bytes += other.update_bytes;
        self.metrics_bytes += other.metrics_bytes;
        self.control_download_bytes += other.control_download_bytes;
        self.control_upload_bytes += other.control_upload_bytes;
    }
}

impl fmt::Display for TrafficCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "down {} B (plan {}, ckpt {}), up {} B (update {}, metrics {}), ratio {:.2}",
            self.download_bytes(),
            self.plan_bytes,
            self.checkpoint_bytes,
            self.upload_bytes(),
            self.update_bytes,
            self.metrics_bytes,
            self.asymmetry()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_kind_and_direction() {
        let mut t = TrafficCounter::new();
        t.record(TrafficKind::Plan, 1000);
        t.record(TrafficKind::Checkpoint, 1000);
        t.record(TrafficKind::Update, 400);
        t.record(TrafficKind::Metrics, 100);
        t.record_control(Direction::Upload, 50);
        assert_eq!(t.download_bytes(), 2000);
        assert_eq!(t.upload_bytes(), 550);
    }

    #[test]
    fn asymmetry_reflects_paper_shape() {
        // Plan ≈ model; update compressed 4×: download should dominate.
        let mut t = TrafficCounter::new();
        let model = 4_000_000;
        t.record(TrafficKind::Plan, model);
        t.record(TrafficKind::Checkpoint, model);
        t.record(TrafficKind::Update, model / 4);
        assert!(t.asymmetry() > 4.0);
    }

    #[test]
    fn asymmetry_edge_cases() {
        let t = TrafficCounter::new();
        assert_eq!(t.asymmetry(), 0.0);
        let mut t = TrafficCounter::new();
        t.record(TrafficKind::Plan, 1);
        assert!(t.asymmetry().is_infinite());
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = TrafficCounter::new();
        a.record(TrafficKind::Plan, 10);
        let mut b = TrafficCounter::new();
        b.record(TrafficKind::Update, 5);
        b.record_control(Direction::Download, 2);
        a.merge(&b);
        assert_eq!(a.download_bytes(), 12);
        assert_eq!(a.upload_bytes(), 5);
    }

    #[test]
    fn display_is_informative() {
        let mut t = TrafficCounter::new();
        t.record(TrafficKind::Plan, 10);
        assert!(format!("{t}").contains("down 10 B"));
    }
}
