//! Device retry policy (Sec. 2.3 flow control, device side).
//!
//! Pace steering only works if devices *cooperate* with the server's
//! "come back later" suggestions instead of hammering the Selector layer
//! on their own schedule. [`RetryPolicy`] is the shared configuration for
//! that cooperation: jittered exponential backoff between attempts, a
//! per-task retry *budget* so a single device cannot retry without bound
//! during an outage or flash crowd, and the rule that a server-suggested
//! reconnect window always takes precedence over a locally-computed
//! backoff when it is later.
//!
//! The policy lives in `fl-core` because three layers share it: the
//! device runtime enforces it (`fl-device::connectivity`), the simulator
//! subjects fleets to it (`fl-sim::overload`), and server-side capacity
//! planning reasons about it (worst-case reconnect rate of a population
//! is bounded by `budget_per_window / budget_window_ms`).

use serde::{Deserialize, Serialize};

/// Client-side reconnect discipline: jittered exponential backoff plus a
/// per-task retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Backoff delay after the first failed/rejected attempt (ms).
    pub base_delay_ms: u64,
    /// Multiplier applied to the delay on each further attempt.
    pub multiplier: f64,
    /// Upper bound for the computed backoff delay (ms).
    pub max_delay_ms: u64,
    /// Fraction of the delay added as uniform random jitter (`0.0..=1.0`);
    /// jitter decorrelates devices that failed at the same instant, which
    /// is exactly the synchronized-wake population a thundering herd is
    /// made of.
    pub jitter_frac: f64,
    /// Retry attempts a device may spend per task per budget window.
    pub budget_per_window: u32,
    /// Width of the budget window (ms). When the budget is exhausted the
    /// device goes quiet until the window rolls over.
    pub budget_window_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay_ms: 60_000,
            multiplier: 2.0,
            max_delay_ms: 60 * 60_000,
            jitter_frac: 0.5,
            budget_per_window: 8,
            budget_window_ms: 6 * 3_600_000,
        }
    }
}

impl RetryPolicy {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.base_delay_ms == 0 {
            return Err("base_delay_ms must be positive".into());
        }
        if self.multiplier < 1.0 || !self.multiplier.is_finite() {
            return Err("multiplier must be finite and >= 1.0".into());
        }
        if self.max_delay_ms < self.base_delay_ms {
            return Err("max_delay_ms must be >= base_delay_ms".into());
        }
        if !(0.0..=1.0).contains(&self.jitter_frac) {
            return Err("jitter_frac must be in [0, 1]".into());
        }
        if self.budget_per_window == 0 {
            return Err("budget_per_window must be positive".into());
        }
        if self.budget_window_ms == 0 {
            return Err("budget_window_ms must be positive".into());
        }
        Ok(())
    }

    /// The deterministic (pre-jitter) backoff delay for a 1-based retry
    /// attempt: `base × multiplier^(attempt−1)`, capped at
    /// [`max_delay_ms`](RetryPolicy::max_delay_ms). Attempt 0 is treated
    /// as attempt 1.
    pub fn nominal_delay_ms(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(63);
        let scaled = self.base_delay_ms as f64 * self.multiplier.powi(exp as i32);
        if scaled >= self.max_delay_ms as f64 {
            self.max_delay_ms
        } else {
            (scaled as u64).max(1)
        }
    }

    /// Worst-case sustained reconnect attempts per millisecond one device
    /// can direct at the server under this policy (capacity planning).
    pub fn max_attempt_rate_per_ms(&self) -> f64 {
        self.budget_per_window as f64 / self.budget_window_ms as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        assert_eq!(RetryPolicy::default().validate(), Ok(()));
    }

    #[test]
    fn nominal_delay_grows_exponentially_then_caps() {
        let p = RetryPolicy {
            base_delay_ms: 1_000,
            multiplier: 2.0,
            max_delay_ms: 10_000,
            ..RetryPolicy::default()
        };
        assert_eq!(p.nominal_delay_ms(1), 1_000);
        assert_eq!(p.nominal_delay_ms(2), 2_000);
        assert_eq!(p.nominal_delay_ms(3), 4_000);
        assert_eq!(p.nominal_delay_ms(4), 8_000);
        assert_eq!(p.nominal_delay_ms(5), 10_000); // capped
        assert_eq!(p.nominal_delay_ms(60), 10_000); // no overflow
        // Attempt 0 behaves like attempt 1.
        assert_eq!(p.nominal_delay_ms(0), 1_000);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let ok = RetryPolicy::default();
        assert!(RetryPolicy { base_delay_ms: 0, ..ok }.validate().is_err());
        assert!(RetryPolicy { multiplier: 0.5, ..ok }.validate().is_err());
        assert!(RetryPolicy { max_delay_ms: 1, ..ok }.validate().is_err());
        assert!(RetryPolicy { jitter_frac: 1.5, ..ok }.validate().is_err());
        assert!(RetryPolicy { budget_per_window: 0, ..ok }.validate().is_err());
        assert!(RetryPolicy { budget_window_ms: 0, ..ok }.validate().is_err());
    }

    #[test]
    fn attempt_rate_bounds_capacity() {
        let p = RetryPolicy {
            budget_per_window: 6,
            budget_window_ms: 60_000,
            ..RetryPolicy::default()
        };
        assert!((p.max_attempt_rate_per_ms() - 0.0001).abs() < 1e-12);
    }
}
