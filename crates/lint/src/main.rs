//! CLI for the `fl-lint` release gate.
//!
//! Usage: `cargo run -p fl-lint [-- --root <dir>] [--json] [--rules]`
//!
//! Prints one machine-readable finding per line
//! (`file:line: [rule] message (fix: hint)`) and exits non-zero if any
//! violation survives the `fl-lint: allow` annotations.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = true,
            "--rules" => {
                for rule in fl_lint::rules::RULES {
                    println!("{:<16} {}", rule.id, rule.hint);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("fl-lint: workspace static-analysis release gate");
                println!("options: --root <dir>  workspace root (default: auto-detected)");
                println!("         --json        one JSON object per finding");
                println!("         --rules       list rule ids and hints");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fl-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(fl_lint::workspace_root);
    let (findings, scanned) = fl_lint::lint_workspace(&root);
    for finding in &findings {
        if json {
            println!("{}", finding.to_json());
        } else {
            println!("{finding}");
        }
    }
    eprintln!(
        "fl-lint: {} file(s) scanned, {} finding(s)",
        scanned,
        findings.len()
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
