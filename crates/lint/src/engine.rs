//! File walking, per-file lexical context (test-block detection,
//! `fl-lint: allow` parsing), rule scoping, and finding assembly.

use crate::rules::{Rule, RULES};
use crate::tokens::{self, Token, TokenKind};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// A confirmed rule violation at a workspace location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id.
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (fix: {})",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

impl Finding {
    /// Serializes the finding as a single JSON object (hand-rolled;
    /// fl-lint is dependency-free by design).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\"hint\":\"{}\"}}",
            json_escape(&self.file),
            self.line,
            self.rule,
            json_escape(&self.message),
            json_escape(self.hint)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lexed file plus the derived facts rules need: significant-token
/// index, test-code line spans, and allow annotations.
pub struct FileContext {
    src: String,
    tokens: Vec<Token>,
    sig: Vec<usize>,
    test_lines: HashSet<u32>,
    allows: HashMap<u32, Vec<String>>,
}

impl fmt::Debug for FileContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileContext")
            .field("tokens", &self.tokens.len())
            .finish_non_exhaustive()
    }
}

impl FileContext {
    /// Lexes `src` and derives test spans + allow annotations.
    pub fn new(src: &str) -> Self {
        let tokens = tokens::tokenize(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let mut ctx = FileContext {
            src: src.to_string(),
            tokens,
            sig,
            test_lines: HashSet::new(),
            allows: HashMap::new(),
        };
        ctx.test_lines = ctx.compute_test_lines();
        ctx.allows = ctx.compute_allows();
        ctx
    }

    /// Indices (into the raw token vec) of non-comment tokens.
    pub fn sig(&self) -> &[usize] {
        &self.sig
    }

    /// Sliding windows of `n` significant-token indices.
    pub fn sig_windows(&self, n: usize) -> impl Iterator<Item = &[usize]> {
        self.sig.windows(n)
    }

    /// The raw token at index `i` (clamped to the last token).
    pub fn tok(&self, i: usize) -> &Token {
        let last = self.tokens.len().saturating_sub(1);
        &self.tokens[i.min(last)]
    }

    /// Source text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.tok(i).text(&self.src)
    }

    /// Whether token `i` is an identifier with text `s`.
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        self.tok(i).kind == TokenKind::Ident && self.text(i) == s
    }

    /// Whether token `i` is the punctuation char `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).kind == TokenKind::Punct && self.text(i).chars().next() == Some(c)
    }

    /// 1-based line of token `i`.
    pub fn line_of(&self, i: usize) -> u32 {
        self.tok(i).line
    }

    /// Whether `line` falls inside a `#[cfg(test)]` module or a
    /// `#[test]` function body.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// Whether a doc comment (or `#[doc = …]` attribute) immediately
    /// precedes raw token `idx`, looking through attributes and plain
    /// comments.
    pub fn has_doc_before(&self, idx: usize) -> bool {
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let t = &self.tokens[j];
            match t.kind {
                TokenKind::DocComment => {
                    // Inner docs (`//!`, `/*!`) document the enclosing
                    // module, not the following item.
                    let text = t.text(&self.src);
                    return !(text.starts_with("//!") || text.starts_with("/*!"));
                }
                TokenKind::LineComment | TokenKind::BlockComment => continue,
                TokenKind::Punct if t.text(&self.src) == "]" => {
                    // Skip the attribute `#[ … ]`; `#[doc = …]` counts
                    // as documentation.
                    let mut depth = 1i32;
                    let mut saw_doc = false;
                    while j > 0 && depth > 0 {
                        j -= 1;
                        let u = &self.tokens[j];
                        match u.text(&self.src) {
                            "]" if u.kind == TokenKind::Punct => depth += 1,
                            "[" if u.kind == TokenKind::Punct => depth -= 1,
                            "doc" if u.kind == TokenKind::Ident => saw_doc = true,
                            _ => {}
                        }
                    }
                    if saw_doc {
                        return true;
                    }
                    // Step over the leading `#`.
                    if j > 0 && self.tokens[j - 1].text(&self.src) == "#" {
                        j -= 1;
                    }
                }
                _ => return false,
            }
        }
        false
    }

    /// Marks every line inside `#[cfg(test)] mod … { … }` blocks and
    /// `#[test]`/`#[cfg(test)]`-gated fn bodies as test code.
    fn compute_test_lines(&self) -> HashSet<u32> {
        let mut lines = HashSet::new();
        let sig = &self.sig;
        let mut i = 0usize;
        while i + 3 < sig.len() {
            // Match `#[cfg(test…` or `#[test]`.
            let is_attr_start = self.is_punct(sig[i], '#') && self.is_punct(sig[i + 1], '[');
            if !is_attr_start {
                i += 1;
                continue;
            }
            let gated = (self.is_ident(sig[i + 2], "cfg")
                && self.is_punct(sig[i + 3], '(')
                && i + 4 < sig.len()
                && self.is_ident(sig[i + 4], "test"))
                || (self.is_ident(sig[i + 2], "test") && self.is_punct(sig[i + 3], ']'));
            if !gated {
                i += 1;
                continue;
            }
            // Skip to the end of this attribute.
            let mut j = i + 2;
            let mut bracket_depth = 1i32;
            while j < sig.len() && bracket_depth > 0 {
                if self.is_punct(sig[j], '[') {
                    bracket_depth += 1;
                } else if self.is_punct(sig[j], ']') {
                    bracket_depth -= 1;
                }
                j += 1;
            }
            // Scan forward (through further attributes and qualifiers)
            // for the item body `{`; give up at `;` (e.g. a gated
            // `use`).
            let mut body = None;
            let mut k = j;
            while k < sig.len() && k < j + 64 {
                if self.is_punct(sig[k], '{') {
                    body = Some(k);
                    break;
                }
                if self.is_punct(sig[k], ';') {
                    break;
                }
                k += 1;
            }
            let Some(open) = body else {
                i = j;
                continue;
            };
            // Mark the brace-matched span.
            let mut depth = 0i32;
            let mut m = open;
            let start_line = self.line_of(sig[open]);
            let mut end_line = start_line;
            while m < sig.len() {
                if self.is_punct(sig[m], '{') {
                    depth += 1;
                } else if self.is_punct(sig[m], '}') {
                    depth -= 1;
                    if depth == 0 {
                        end_line = self.line_of(sig[m]);
                        break;
                    }
                }
                m += 1;
            }
            if depth != 0 {
                // Unbalanced (shouldn't happen on real code): mark to
                // EOF conservatively.
                end_line = self.tokens.last().map(|t| t.line).unwrap_or(start_line);
            }
            for l in self.line_of(sig[i])..=end_line {
                lines.insert(l);
            }
            i = m.max(j);
        }
        lines
    }

    /// Parses `// fl-lint: allow(rule-a, rule-b): justification`
    /// comments. The annotation applies to its own line and — when the
    /// comment stands alone on its line — to the next line of *code*,
    /// skipping over any continuation comment lines in between.
    fn compute_allows(&self) -> HashMap<u32, Vec<String>> {
        let sig_lines: std::collections::HashSet<u32> =
            self.sig.iter().map(|&i| self.tokens[i].line).collect();
        let comment_lines: std::collections::HashSet<u32> = self
            .tokens
            .iter()
            .filter(|t| {
                matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            })
            .map(|t| t.line)
            .collect();
        let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
        for t in &self.tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let text = t.text(&self.src);
            let Some(at) = text.find("fl-lint: allow(") else {
                continue;
            };
            let after = &text[at + "fl-lint: allow(".len()..];
            let Some(close) = after.find(')') else {
                continue;
            };
            let rules: Vec<String> = after[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if rules.is_empty() {
                continue;
            }
            allows.entry(t.line).or_default().extend(rules.clone());
            // Standalone comment: also cover the next line.
            let line_start = self.src[..t.start]
                .rfind('\n')
                .map(|p| p + 1)
                .unwrap_or(0);
            let standalone = self.src[line_start..t.start]
                .chars()
                .all(char::is_whitespace);
            if standalone {
                // Skip continuation comment lines so a multi-line
                // justification still covers the code it precedes.
                let mut target = t.line + 1;
                while comment_lines.contains(&target) && !sig_lines.contains(&target) {
                    target += 1;
                }
                allows.entry(target).or_default().extend(rules);
            }
        }
        allows
    }

    /// Whether `rule` is allowed (suppressed) on `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }

    /// Allow annotations that matched no finding would be dead — list
    /// every (line, rule) annotation so the engine can cross-check
    /// rule ids are real.
    pub fn annotated_rules(&self) -> impl Iterator<Item = (u32, &str)> {
        self.allows
            .iter()
            .flat_map(|(line, rules)| rules.iter().map(move |r| (*line, r.as_str())))
    }
}

/// Whether `rel` (workspace-relative, `/`-separated) lies in a test or
/// example tree — code that never runs against real devices.
fn in_test_tree(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

fn rule_applies_to_path(rule: &Rule, rel: &str) -> bool {
    if rule.exclude.iter().any(|p| rel.starts_with(p)) {
        return false;
    }
    if !rule.applies_to_tests && in_test_tree(rel) {
        return false;
    }
    rule.include.is_empty() || rule.include.iter().any(|p| rel.starts_with(p))
}

/// Lints one file's source as if it lived at `rel` (workspace-relative
/// path, `/`-separated). This is the unit the fixture tests drive.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let ctx = FileContext::new(src);
    let mut findings = Vec::new();
    for rule in RULES {
        if !rule_applies_to_path(rule, rel) {
            continue;
        }
        for v in (rule.check)(&ctx) {
            if !rule.applies_to_tests && ctx.is_test_line(v.line) {
                continue;
            }
            if ctx.is_allowed(rule.id, v.line) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_string(),
                line: v.line,
                rule: rule.id,
                message: v.message,
                hint: rule.hint,
            });
        }
    }
    // Annotations naming unknown rules are themselves findings: a
    // typo'd allow() silently disables nothing and should not pass
    // review.
    let mut annotated: Vec<(u32, &str)> = ctx.annotated_rules().collect();
    annotated.sort_unstable();
    let mut reported: Vec<(u32, &str)> = Vec::new();
    for (line, rule) in annotated {
        if crate::rules::rule_by_id(rule).is_none() {
            // A standalone annotation registers on its own line and on
            // the line it covers; report the typo once.
            if reported
                .iter()
                .any(|&(l, r)| r == rule && line.abs_diff(l) <= 1)
            {
                continue;
            }
            reported.push((line, rule));
            findings.push(Finding {
                file: rel.to_string(),
                line,
                rule: "unknown-allow",
                message: format!("`fl-lint: allow({rule})` names no known rule"),
                hint: "rule ids: see `fl-lint --rules` or DESIGN.md \"Invariants & release gates\"",
            });
        }
    }
    findings
}

/// Collects the workspace `.rs` files the gate lints: `crates/*/src`,
/// `crates/*/tests`, `src/`, `tests/`, `examples/`. Skips `target/`,
/// `vendor/` (stand-in crates are not workspace code), and lint
/// fixtures (deliberate violations).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Like [`collect_rs`] but *keeping* fixture trees: the wall-clock
/// allowlist audit counts escapes everywhere under `crates/`, fixtures
/// included, because the shell audit it replaced did.
fn collect_rs_with_fixtures(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git") {
                continue;
            }
            collect_rs_with_fixtures(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The allowlist data file, workspace-relative.
pub const WALL_CLOCK_ALLOWLIST: &str = "scripts/wall_clock_allowlist.txt";

/// Audit `allowlist-drift`: every wall-clock lint escape under
/// `crates/` must be accounted for, count-per-file, in
/// `scripts/wall_clock_allowlist.txt`. A new live-clock site needs
/// review — the allowlist must be updated in the same change. This
/// replaces the grep/diff block `scripts/check.sh` used to carry;
/// comparison is content-wise (per-file counts), not positional, so
/// reordering the allowlist is not drift.
pub fn audit_wall_clock_allowlist(root: &Path) -> Vec<Finding> {
    const HINT: &str =
        "review the new live-clock site and update scripts/wall_clock_allowlist.txt in the same change";
    // Built from parts so this file's own source never matches it.
    let needle: String = ["fl-lint: allow", "(wall-clock)"].concat();
    let mut findings = Vec::new();

    let mut files = Vec::new();
    collect_rs_with_fixtures(&root.join("crates"), &mut files);
    files.sort();
    let mut actual: std::collections::BTreeMap<String, u64> = Default::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        match std::fs::read_to_string(&path) {
            Ok(src) => {
                let n = src.lines().filter(|l| l.contains(&needle)).count() as u64;
                if n > 0 {
                    actual.insert(rel, n);
                }
            }
            Err(err) => findings.push(Finding {
                file: rel,
                line: 0,
                rule: "allowlist-drift",
                message: format!("could not read file for the wall-clock audit: {err}"),
                hint: HINT,
            }),
        }
    }

    let listed_src = match std::fs::read_to_string(root.join(WALL_CLOCK_ALLOWLIST)) {
        Ok(s) => s,
        Err(err) => {
            findings.push(Finding {
                file: WALL_CLOCK_ALLOWLIST.to_string(),
                line: 0,
                rule: "allowlist-drift",
                message: format!("could not read the allowlist: {err}"),
                hint: HINT,
            });
            return findings;
        }
    };
    let mut listed: std::collections::BTreeMap<String, u64> = Default::default();
    for (idx, line) in listed_src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line
            .split_once(' ')
            .and_then(|(n, p)| n.parse::<u64>().ok().map(|n| (n, p.trim().to_string())))
        {
            Some((count, path)) if count > 0 => {
                listed.insert(path, count);
            }
            _ => findings.push(Finding {
                file: WALL_CLOCK_ALLOWLIST.to_string(),
                line: idx as u32 + 1,
                rule: "allowlist-drift",
                message: format!("malformed allowlist line `{line}` (want `<count> <path>`)"),
                hint: HINT,
            }),
        }
    }

    for (file, &count) in &actual {
        match listed.get(file) {
            None => findings.push(Finding {
                file: file.clone(),
                line: 0,
                rule: "allowlist-drift",
                message: format!(
                    "{count} unaccounted wall-clock allow escape(s); the allowlist has no entry"
                ),
                hint: HINT,
            }),
            Some(&want) if want != count => findings.push(Finding {
                file: file.clone(),
                line: 0,
                rule: "allowlist-drift",
                message: format!("allowlist says {want} wall-clock allow escape(s), found {count}"),
                hint: HINT,
            }),
            Some(_) => {}
        }
    }
    for file in listed.keys() {
        if !actual.contains_key(file) {
            findings.push(Finding {
                file: WALL_CLOCK_ALLOWLIST.to_string(),
                line: 0,
                rule: "allowlist-drift",
                message: format!("stale allowlist entry: `{file}` has no wall-clock allow escapes"),
                hint: HINT,
            });
        }
    }
    findings
}

/// Lints the whole workspace rooted at `root`. Returns findings plus
/// the number of files scanned; I/O errors on individual files surface
/// as findings rather than aborting the gate.
pub fn lint_workspace(root: &Path) -> (Vec<Finding>, usize) {
    let files = workspace_files(root);
    let scanned = files.len();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        match std::fs::read_to_string(&path) {
            Ok(src) => findings.extend(lint_source(&rel, &src)),
            Err(err) => findings.push(Finding {
                file: rel,
                line: 0,
                rule: "io-error",
                message: format!("could not read file: {err}"),
                hint: "the release gate must see every source file",
            }),
        }
    }
    findings.extend(audit_wall_clock_allowlist(root));
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    (findings, scanned)
}
