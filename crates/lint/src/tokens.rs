//! A lightweight Rust tokenizer: just enough lexical structure to lint
//! against, with exact comment/string awareness so rule patterns never
//! match inside doc comments, string literals, or char literals.
//!
//! Handles: line/block comments (nested, doc vs plain), string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`), byte and
//! C-string prefixes (`b""`, `br#""#`, `c""`, `cr#""#`), raw
//! identifiers (`r#match`), char-literal vs lifetime disambiguation,
//! identifiers, numbers, and single-char punctuation. Line numbers are
//! tracked through multi-line tokens.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// Numeric literal (integer part; `1.5` lexes as Number `.` Number).
    Number,
    /// Single punctuation character.
    Punct,
    /// String literal of any flavor (plain, raw, byte, C).
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Non-doc `//` comment.
    LineComment,
    /// Non-doc `/* */` comment.
    BlockComment,
    /// Doc comment: `///`, `//!`, `/** */`, or `/*! */`.
    DocComment,
}

/// One lexed token: byte span into the source plus the 1-based line it
/// starts on.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens. Never fails: unrecognized bytes become
/// single-char `Punct` tokens, and unterminated literals run to EOF.
pub fn tokenize(src: &str) -> Vec<Token> {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let n = chars.len();
    let eof = src.len();
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;

    let offset = |idx: usize| if idx < n { chars[idx].0 } else { eof };

    while i < n {
        let (pos, c) = chars[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1].1 == '/' => {
                let mut j = i;
                while j < n && chars[j].1 != '\n' {
                    j += 1;
                }
                let end = offset(j);
                let text = src.get(pos..end).unwrap_or("");
                let kind = if (text.starts_with("///") && !text.starts_with("////"))
                    || text.starts_with("//!")
                {
                    TokenKind::DocComment
                } else {
                    TokenKind::LineComment
                };
                tokens.push(Token {
                    kind,
                    start: pos,
                    end,
                    line: start_line,
                });
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1].1 == '*' => {
                // Nested block comment.
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    match chars[j].1 {
                        '\n' => line += 1,
                        '*' if j + 1 < n && chars[j + 1].1 == '/' => {
                            depth -= 1;
                            j += 1;
                        }
                        '/' if j + 1 < n && chars[j + 1].1 == '*' => {
                            depth += 1;
                            j += 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let end = offset(j);
                let text = src.get(pos..end).unwrap_or("");
                let kind = if (text.starts_with("/**") && !text.starts_with("/***"))
                    || text.starts_with("/*!")
                {
                    TokenKind::DocComment
                } else {
                    TokenKind::BlockComment
                };
                tokens.push(Token {
                    kind,
                    start: pos,
                    end,
                    line: start_line,
                });
                i = j;
            }
            '\'' => {
                // Char literal or lifetime. `'\...'` and `'x'` are
                // chars; `'ident` (no closing quote) is a lifetime.
                let is_char = if i + 1 < n && chars[i + 1].1 == '\\' {
                    true
                } else {
                    i + 2 < n && chars[i + 2].1 == '\''
                };
                if is_char {
                    let mut j = i + 1;
                    while j < n {
                        match chars[j].1 {
                            '\\' => j += 2,
                            '\'' => {
                                j += 1;
                                break;
                            }
                            '\n' => {
                                // Unterminated; bail at line end.
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        start: pos,
                        end: offset(j),
                        line: start_line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < n && is_ident_continue(chars[j].1) {
                        j += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        start: pos,
                        end: offset(j),
                        line: start_line,
                    });
                    i = j;
                }
            }
            '"' => {
                let (j, newlines) = scan_plain_string(&chars, i);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    start: pos,
                    end: offset(j),
                    line: start_line,
                });
                line += newlines;
                i = j;
            }
            _ if is_ident_start(c) => {
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j].1) {
                    j += 1;
                }
                let ident = src.get(pos..offset(j)).unwrap_or("");
                let is_string_prefix = matches!(ident, "r" | "b" | "br" | "rb" | "c" | "cr");
                if is_string_prefix && j < n && chars[j].1 == '"' {
                    // Prefixed string: raw only if the prefix contains `r`.
                    let raw = ident.contains('r');
                    let (k, newlines) = if raw {
                        scan_raw_string(&chars, j, 0)
                    } else {
                        scan_plain_string(&chars, j)
                    };
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        start: pos,
                        end: offset(k),
                        line: start_line,
                    });
                    line += newlines;
                    i = k;
                } else if is_string_prefix && j < n && chars[j].1 == '#' {
                    // Count hashes: `r#"…"#` is a raw string,
                    // `r#ident` is a raw identifier.
                    let mut hashes = 0usize;
                    let mut k = j;
                    while k < n && chars[k].1 == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && chars[k].1 == '"' {
                        let (m, newlines) = scan_raw_string(&chars, k, hashes);
                        tokens.push(Token {
                            kind: TokenKind::Str,
                            start: pos,
                            end: offset(m),
                            line: start_line,
                        });
                        line += newlines;
                        i = m;
                    } else if ident == "r" && hashes == 1 && k < n && is_ident_start(chars[k].1) {
                        let mut m = k + 1;
                        while m < n && is_ident_continue(chars[m].1) {
                            m += 1;
                        }
                        tokens.push(Token {
                            kind: TokenKind::Ident,
                            start: pos,
                            end: offset(m),
                            line: start_line,
                        });
                        i = m;
                    } else {
                        tokens.push(Token {
                            kind: TokenKind::Ident,
                            start: pos,
                            end: offset(j),
                            line: start_line,
                        });
                        i = j;
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Ident,
                        start: pos,
                        end: offset(j),
                        line: start_line,
                    });
                    i = j;
                }
            }
            _ if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j].1) {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    start: pos,
                    end: offset(j),
                    line: start_line,
                });
                i = j;
            }
            _ => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    start: pos,
                    end: offset(i + 1),
                    line: start_line,
                });
                i += 1;
            }
        }
    }
    tokens
}

/// Scans a `"…"` string starting at the opening quote index; returns
/// (index one past the closing quote, newline count inside).
fn scan_plain_string(chars: &[(usize, char)], open: usize) -> (usize, u32) {
    let n = chars.len();
    let mut newlines = 0u32;
    let mut j = open + 1;
    while j < n {
        match chars[j].1 {
            '\\' => j += 2,
            '\n' => {
                newlines += 1;
                j += 1;
            }
            '"' => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (n, newlines)
}

/// Scans a raw string whose opening quote is at `open`, expecting
/// `hashes` trailing `#` after the closing quote.
fn scan_raw_string(chars: &[(usize, char)], open: usize, hashes: usize) -> (usize, u32) {
    let n = chars.len();
    let mut newlines = 0u32;
    let mut j = open + 1;
    while j < n {
        match chars[j].1 {
            '\n' => {
                newlines += 1;
                j += 1;
            }
            '"' => {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < n && seen < hashes && chars[k].1 == '#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return (k, newlines);
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (n, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        // The pattern-bearing text lives only inside literals and
        // comments; no Ident token may surface it.
        let src = r###"
let a = "Instant::now() .unwrap() panic!";
let b = r#"thread::sleep println!"#;
// Instant::now() in a line comment
/* .unwrap() in a block comment */
/// doc comment mentioning panic!(..)
let c = 'x';
let d = '\'';
"###;
        let toks = kinds(src);
        for (kind, text) in &toks {
            if *kind == TokenKind::Ident {
                assert!(
                    !["Instant", "unwrap", "panic", "thread", "sleep", "println"]
                        .contains(&text.as_str()),
                    "pattern ident {text:?} leaked out of a literal/comment"
                );
            }
        }
        // The literals themselves are single Str/Comment tokens.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("Instant::now")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("Instant::now")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t.contains(".unwrap()")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::DocComment && t.contains("panic!")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Char));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("/* outer /* inner */ still outer */ after");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "after".to_string()));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "let a = \"multi\nline\nstring\";\nlet b = 2;";
        let toks = tokenize(src);
        let b_tok = toks
            .iter()
            .find(|t| t.text(src) == "b")
            .expect("token b present");
        assert_eq!(b_tok.line, 4);
    }

    #[test]
    fn doc_vs_plain_comment_classification() {
        let toks = kinds("/// doc\n//! inner doc\n// plain\n//// not doc\n/** blockdoc */\n/* plain */");
        let got: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            got,
            vec![
                TokenKind::DocComment,
                TokenKind::DocComment,
                TokenKind::LineComment,
                TokenKind::LineComment,
                TokenKind::DocComment,
                TokenKind::BlockComment,
            ]
        );
    }
}
