//! The lint rules: each is a pure function from a lexed file to
//! findings. Scoping (which paths a rule applies to, whether test code
//! is exempt) lives in [`crate::engine`]; rules only look at tokens.
//!
//! Every rule enforces a paper-derived invariant; see the
//! "Invariants & release gates" section of `DESIGN.md` for the mapping
//! from rule to paper section and the burn-down rationale.

use crate::engine::FileContext;
use crate::tokens::TokenKind;

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// 1-based source line.
    pub line: u32,
    /// What was found.
    pub message: String,
}

/// Static description of a rule: identity, scoping, and fix hint.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule id, used in findings and `fl-lint: allow(<id>)`.
    pub id: &'static str,
    /// Path prefixes (workspace-relative, `/`-separated) the rule
    /// applies to. Empty means every linted file.
    pub include: &'static [&'static str],
    /// Path prefixes exempt from the rule (takes precedence).
    pub exclude: &'static [&'static str],
    /// Whether code inside `#[cfg(test)]`/`#[test]` blocks or
    /// `tests/`/`benches/` trees is linted.
    pub applies_to_tests: bool,
    /// One-line fix guidance attached to findings.
    pub hint: &'static str,
    /// The checker.
    pub check: fn(&FileContext) -> Vec<Violation>,
}

/// The rule set enforced as the release gate.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        include: &[
            "crates/sim/",
            "crates/core/",
            "crates/actors/",
            "crates/server/",
        ],
        exclude: &[],
        applies_to_tests: false,
        hint: "inject time via the sim clock / an epoch parameter so replays are deterministic",
        check: check_wall_clock,
    },
    Rule {
        id: "unwrap",
        include: &["crates/server/", "crates/actors/", "crates/secagg/"],
        exclude: &[],
        applies_to_tests: false,
        hint: "return FlError (or the crate error type) so aggregator/coordinator crashes stay recoverable",
        check: check_unwrap,
    },
    Rule {
        id: "panic",
        include: &["crates/", "src/"],
        exclude: &["crates/bench/"],
        applies_to_tests: false,
        hint: "propagate an error instead; panics in the control plane abort round state the paper requires to survive",
        check: check_panic,
    },
    Rule {
        id: "std-sync-lock",
        include: &[],
        // fl-race is the one place allowed to touch raw primitives: its
        // wrappers are what everyone else must build on.
        exclude: &["crates/race/"],
        applies_to_tests: true,
        hint: "use fl_race::{Mutex, RwLock, Condvar}: site-tagged wrappers feed the lock-graph deadlock gate",
        check: check_std_sync_lock,
    },
    Rule {
        id: "sleep",
        include: &["crates/actors/", "crates/server/", "crates/device/"],
        exclude: &[],
        applies_to_tests: false,
        hint: "use TimerWheel::schedule / recv_timeout so waits are interruptible and simulable",
        check: check_sleep,
    },
    Rule {
        id: "print",
        include: &["crates/", "src/"],
        exclude: &["crates/bench/", "crates/tools/", "crates/lint/"],
        applies_to_tests: false,
        hint: "emit a structured event through the fl-analytics event log instead of stdout",
        check: check_print,
    },
    Rule {
        id: "lock-order",
        include: &["crates/"],
        exclude: &[],
        applies_to_tests: false,
        hint: "narrow the first guard's scope (or drop() it) before acquiring the second lock",
        check: check_lock_order,
    },
    Rule {
        id: "missing-doc",
        // fl-wire and fl-secagg are linted in full (not just their
        // roots): the wire crate is the public protocol surface other
        // processes build against, and the secagg crate is the
        // correctness contract the live shards lean on. The
        // multi-tenancy modules (device lane arbitration, selector
        // demux, per-population telemetry, the multi-population DES)
        // are the cross-population isolation contract and get the same
        // treatment.
        include: &[
            "crates/core/src/lib.rs",
            "crates/server/src/lib.rs",
            "crates/wire/src/",
            "crates/secagg/src/",
            "crates/device/src/tenancy.rs",
            "crates/server/src/selector.rs",
            "crates/analytics/src/overload.rs",
            "crates/sim/src/multi.rs",
        ],
        exclude: &[],
        applies_to_tests: false,
        hint: "add a /// doc comment: crate roots are the API contract other crates build against",
        check: check_missing_doc,
    },
];

/// Looks up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Rule `wall-clock`: `Instant::now()` / `SystemTime::now()` in
/// deterministic paths. Matches the `<Type> :: now` token sequence, so
/// aliased imports (`use std::time::Instant as Clock`) are out of
/// scope by design — the rule is lexical.
fn check_wall_clock(ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    for w in ctx.sig_windows(4) {
        let [a, b, c, d] = [w[0], w[1], w[2], w[3]];
        if (ctx.is_ident(a, "Instant") || ctx.is_ident(a, "SystemTime"))
            && ctx.is_punct(b, ':')
            && ctx.is_punct(c, ':')
            && ctx.is_ident(d, "now")
        {
            out.push(Violation {
                line: ctx.line_of(a),
                message: format!("`{}::now()` reads the wall clock", ctx.text(a)),
            });
        }
    }
    out
}

/// Rule `unwrap`: `.unwrap()` / `.expect(...)` in crash-recovery-
/// critical crates.
fn check_unwrap(ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    for w in ctx.sig_windows(3) {
        let [a, b, c] = [w[0], w[1], w[2]];
        if ctx.is_punct(a, '.')
            && (ctx.is_ident(b, "unwrap") || ctx.is_ident(b, "expect"))
            && ctx.is_punct(c, '(')
        {
            out.push(Violation {
                line: ctx.line_of(b),
                message: format!("`.{}()` can panic the control plane", ctx.text(b)),
            });
        }
    }
    out
}

/// Rule `panic`: `panic!` / `todo!` / `unimplemented!` outside tests.
fn check_panic(ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    for w in ctx.sig_windows(2) {
        let [a, b] = [w[0], w[1]];
        if (ctx.is_ident(a, "panic") || ctx.is_ident(a, "todo") || ctx.is_ident(a, "unimplemented"))
            && ctx.is_punct(b, '!')
        {
            out.push(Violation {
                line: ctx.line_of(a),
                message: format!("`{}!` aborts instead of propagating an error", ctx.text(a)),
            });
        }
    }
    out
}

/// Rule `std-sync-lock`: raw lock primitives bypassing the `fl-race`
/// instrumented wrappers — `std::sync::{Mutex, RwLock, Condvar}` and
/// `parking_lot::{Mutex, RwLock, Condvar}` — either as a full path or
/// grouped (`use std::sync::{Arc, Mutex}`). Raw locks are invisible to
/// the lock graph, so a nesting through one can deadlock without the
/// lock-audit gate ever seeing the edge.
fn check_std_sync_lock(ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    let sig = ctx.sig();
    let mut i = 0usize;
    while i < sig.len() {
        // A `std :: sync` or `parking_lot` prefix opens a path /
        // use-group that may name lock types.
        let (start, origin) = if i + 3 < sig.len()
            && ctx.is_ident(sig[i], "std")
            && ctx.is_punct(sig[i + 1], ':')
            && ctx.is_punct(sig[i + 2], ':')
            && ctx.is_ident(sig[i + 3], "sync")
        {
            (i + 4, "std::sync")
        } else if ctx.is_ident(sig[i], "parking_lot") {
            (i + 1, "parking_lot")
        } else {
            i += 1;
            continue;
        };
        // Walk the remainder of the path / use-group up to the
        // statement end and flag lock types inside it.
        let mut j = start;
        let mut depth = 0i32;
        while j < sig.len() {
            let t = sig[j];
            if ctx.is_punct(t, '{') {
                depth += 1;
            } else if ctx.is_punct(t, '}') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if ctx.is_punct(t, ';') || (depth == 0 && ctx.is_punct(t, '(')) {
                break;
            } else if ctx.is_ident(t, "Mutex")
                || ctx.is_ident(t, "RwLock")
                || ctx.is_ident(t, "Condvar")
            {
                out.push(Violation {
                    line: ctx.line_of(t),
                    message: format!(
                        "raw `{origin}::{}` is invisible to the fl-race lock graph",
                        ctx.text(t)
                    ),
                });
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
    out
}

/// Rule `sleep`: `thread::sleep` in actor/runtime crates.
fn check_sleep(ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    for w in ctx.sig_windows(4) {
        let [a, b, c, d] = [w[0], w[1], w[2], w[3]];
        if ctx.is_ident(a, "thread")
            && ctx.is_punct(b, ':')
            && ctx.is_punct(c, ':')
            && ctx.is_ident(d, "sleep")
        {
            out.push(Violation {
                line: ctx.line_of(a),
                message: "`thread::sleep` blocks the actor thread and skews simulated time".into(),
            });
        }
    }
    out
}

/// Rule `print`: `println!`-family output outside reporting crates.
fn check_print(ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    for w in ctx.sig_windows(2) {
        let [a, b] = [w[0], w[1]];
        if (ctx.is_ident(a, "println")
            || ctx.is_ident(a, "print")
            || ctx.is_ident(a, "eprintln")
            || ctx.is_ident(a, "eprint"))
            && ctx.is_punct(b, '!')
        {
            out.push(Violation {
                line: ctx.line_of(a),
                message: format!("`{}!` bypasses the analytics event log", ctx.text(a)),
            });
        }
    }
    out
}

/// Rule `lock-order`: heuristic two-guards-live detection. A `let`
/// binding whose initializer calls `.lock()` registers a live guard
/// for its enclosing block; any further `.lock()` while a guard is
/// live is a potential lock-ordering inversion. `drop(guard)` retires
/// a guard early. Statement-temporary guards (no `let`) are released
/// at the statement's end.
fn check_lock_order(ctx: &FileContext) -> Vec<Violation> {
    struct Guard {
        name: String,
        depth: i32,
    }
    let mut out = Vec::new();
    let sig = ctx.sig();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // Span (in sig indices) of the `let` statement being scanned, with
    // the bound name, if any.
    let mut active_let: Option<(usize, String)> = None;
    let mut i = 0usize;
    while i < sig.len() {
        let t = sig[i];
        if ctx.is_punct(t, '{') {
            depth += 1;
        } else if ctx.is_punct(t, '}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if ctx.is_punct(t, ';') {
            if let Some((end, _)) = active_let {
                if i >= end {
                    active_let = None;
                }
            }
        } else if ctx.is_ident(t, "let") && active_let.is_none() {
            // Find the bound name (skip `mut`; tuple/struct patterns
            // get a placeholder) and the statement's end.
            let mut name = String::from("_");
            let mut j = i + 1;
            if j < sig.len() && ctx.is_ident(sig[j], "mut") {
                j += 1;
            }
            if j < sig.len() && ctx.tok(sig[j]).kind == TokenKind::Ident {
                name = ctx.text(sig[j]).to_string();
            }
            let mut end = i + 1;
            let mut d = 0i32;
            while end < sig.len() {
                let u = sig[end];
                if ctx.is_punct(u, '{') || ctx.is_punct(u, '(') || ctx.is_punct(u, '[') {
                    d += 1;
                } else if ctx.is_punct(u, '}') || ctx.is_punct(u, ')') || ctx.is_punct(u, ']') {
                    d -= 1;
                    if d < 0 {
                        break;
                    }
                } else if ctx.is_punct(u, ';') && d == 0 {
                    break;
                }
                end += 1;
            }
            active_let = Some((end, name));
        } else if ctx.is_ident(t, "drop")
            && i + 2 < sig.len()
            && ctx.is_punct(sig[i + 1], '(')
            && ctx.tok(sig[i + 2]).kind == TokenKind::Ident
        {
            let victim = ctx.text(sig[i + 2]);
            guards.retain(|g| g.name != victim);
        } else if ctx.is_punct(t, '.')
            && i + 2 < sig.len()
            && ctx.is_ident(sig[i + 1], "lock")
            && ctx.is_punct(sig[i + 2], '(')
        {
            if let Some(holder) = guards.last() {
                out.push(Violation {
                    line: ctx.line_of(sig[i + 1]),
                    message: format!(
                        "`.lock()` while guard `{}` is live: lock-ordering hazard",
                        holder.name
                    ),
                });
            }
            if let Some((end, ref name)) = active_let {
                if i < end {
                    guards.push(Guard {
                        name: name.clone(),
                        depth,
                    });
                }
            }
            i += 2;
        }
        i += 1;
    }
    out
}

/// Rule `missing-doc`: top-level `pub` items in designated crate roots
/// must carry a doc comment (or `#[doc = …]`). `pub use` re-exports
/// and restricted `pub(crate)`/`pub(super)` items are exempt.
fn check_missing_doc(ctx: &FileContext) -> Vec<Violation> {
    const ITEM_KEYWORDS: &[&str] = &[
        "fn", "struct", "enum", "trait", "mod", "type", "const", "static", "union",
    ];
    let mut out = Vec::new();
    let sig = ctx.sig();
    let mut depth = 0i32;
    for (k, &t) in sig.iter().enumerate() {
        if ctx.is_punct(t, '{') {
            depth += 1;
            continue;
        }
        if ctx.is_punct(t, '}') {
            depth -= 1;
            continue;
        }
        if depth != 0 || !ctx.is_ident(t, "pub") {
            continue;
        }
        // Restricted visibility is not public API.
        if k + 1 < sig.len() && ctx.is_punct(sig[k + 1], '(') {
            continue;
        }
        // Find the item keyword, skipping qualifiers.
        let mut j = k + 1;
        let mut item: Option<(&str, usize)> = None;
        while j < sig.len() && j < k + 6 {
            let u = sig[j];
            let text = ctx.text(u);
            if text == "use" {
                break;
            }
            if ITEM_KEYWORDS.contains(&text) {
                item = Some((text, j));
                break;
            }
            if !matches!(text, "unsafe" | "async" | "extern") && ctx.tok(u).kind != TokenKind::Str {
                break;
            }
            j += 1;
        }
        let Some((keyword, kw_idx)) = item else {
            continue;
        };
        let name = sig
            .get(kw_idx + 1)
            .map(|&u| ctx.text(u))
            .unwrap_or("<unnamed>");
        if !ctx.has_doc_before(t) {
            out.push(Violation {
                line: ctx.line_of(t),
                message: format!("public {keyword} `{name}` has no doc comment"),
            });
        }
    }
    out
}
