//! `fl-lint`: the workspace's static-analysis release gate.
//!
//! The paper (Sec. 7) gates every plan release behind automated test
//! predicates before it may touch real devices; `crates/tools`'s
//! release pipeline models the runtime half of that gate. This crate
//! is the code half: a dependency-free lexical analyzer that walks the
//! workspace and enforces the determinism, panic-safety, and
//! concurrency invariants the rest of the system is built on.
//!
//! Architecture:
//! - [`tokens`]: a comment/string-aware Rust tokenizer, so rule
//!   patterns never fire inside doc comments or string literals.
//! - [`rules`]: the rule set — each rule is a pure token-stream
//!   checker plus path scoping and a fix hint.
//! - [`engine`]: file walking, `#[cfg(test)]` span detection, the
//!   `// fl-lint: allow(<rule>): why` escape hatch, and finding
//!   assembly.
//!
//! Run it as `cargo run -p fl-lint` (non-zero exit on violations) or
//! via the integration test that makes it part of tier-1 `cargo test`.
//! `scripts/check.sh` chains build, tests, and this gate.

pub mod engine;
pub mod rules;
pub mod tokens;

pub use engine::{audit_wall_clock_allowlist, lint_source, lint_workspace, Finding};

use std::path::PathBuf;

/// Locates the workspace root: walks up from this crate's manifest dir
/// (compile-time) looking for the directory whose `Cargo.toml` defines
/// the `[workspace]`.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut dir = manifest.clone();
    while let Some(parent) = dir.parent() {
        let candidate = parent.join("Cargo.toml");
        if candidate.is_file() {
            if let Ok(text) = std::fs::read_to_string(&candidate) {
                if text.contains("[workspace]") {
                    return parent.to_path_buf();
                }
            }
        }
        dir = parent.to_path_buf();
    }
    manifest
}
