//! Negative: errors propagate; panics live only in tests or behind allow.
pub fn explode(kind: u8) -> Result<(), String> {
    if kind == 0 {
        return Err("kind must be nonzero".to_string());
    }
    Ok(())
}

pub fn checked_precondition(threshold: usize) {
    // fl-lint: allow(panic): documented `# Panics` precondition
    assert!(threshold >= 2, "threshold must be at least 2");
    if threshold == usize::MAX {
        // fl-lint: allow(panic): unreachable by construction
        panic!("impossible");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic]
    fn panics_in_tests_are_fine() {
        panic!("expected");
    }
}
