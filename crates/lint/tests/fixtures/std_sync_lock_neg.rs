//! Negative: fl-race guards and non-lock std::sync items.
use fl_race::{Mutex, RwLock};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

pub struct Shared {
    pub slot: Arc<Mutex<u64>>,
    pub table: RwLock<Vec<u64>>,
    pub count: AtomicU64,
}

pub fn mentions() {
    // std::sync::Mutex in a comment must not fire,
    let _ = "nor std::sync::Mutex in a string";
}
