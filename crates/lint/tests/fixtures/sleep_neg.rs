//! Negative: interruptible waits.
use std::time::Duration;

pub fn handle_message(rx: &crossbeam::channel::Receiver<u32>) -> Option<u32> {
    rx.recv_timeout(Duration::from_millis(20)).ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn sleep_in_tests_is_exempt() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
