//! Crate-level docs do not document the items below.

pub struct Undocumented {
    pub field: u64,
}

pub fn also_undocumented() {}

pub mod nameless;
