//! Positive: acquiring a second lock while a guard is live.
use fl_race::Mutex;

pub fn transfer(from: &Mutex<u64>, to: &Mutex<u64>, amount: u64) {
    let mut a = from.lock();
    let mut b = to.lock();
    *a -= amount;
    *b += amount;
}
