//! Positive: raw parking_lot primitives, grouped and full-path forms.
use parking_lot::{Mutex, RwLock};

pub struct Shared {
    pub slot: Mutex<u64>,
    pub table: RwLock<Vec<u64>>,
    pub signal: parking_lot::Condvar,
}
