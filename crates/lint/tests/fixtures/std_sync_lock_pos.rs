//! Positive: std::sync lock types, full-path and grouped-import forms.
use std::sync::{Arc, Mutex};

pub struct Shared {
    pub slot: Arc<Mutex<u64>>,
    pub table: std::sync::RwLock<Vec<u64>>,
}
