//! Negative: propagated errors, an allow, and test-code exemption.
pub fn read_config(raw: Option<u32>) -> Result<u32, String> {
    raw.ok_or_else(|| "missing".to_string())
}

pub fn spawn_or_die() {
    std::thread::Builder::new()
        .spawn(|| {})
        // fl-lint: allow(unwrap): spawn failure at wiring time is fatal
        .expect("no threads available");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
