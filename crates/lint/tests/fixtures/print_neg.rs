//! Negative: structured events; prints only in tests or strings.
pub fn report(events: &mut Vec<String>, loss: f64) {
    events.push(format!("loss = {loss}"));
    let _ = "println! in a string must not fire";
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_fine() {
        println!("debugging a test is fine");
    }
}
