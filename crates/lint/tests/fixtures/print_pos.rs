//! Positive: stdout/stderr output in library code.
pub fn report(loss: f64) {
    println!("loss = {loss}");
    eprintln!("warning: high loss");
}
