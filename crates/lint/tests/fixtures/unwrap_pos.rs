//! Positive: panicking result handling in a recovery-critical crate.
pub fn read_config(raw: Option<u32>) -> u32 {
    raw.unwrap()
}

pub fn decode(raw: Result<u32, String>) -> u32 {
    raw.expect("decode failed")
}
