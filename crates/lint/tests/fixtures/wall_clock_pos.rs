//! Positive: wall-clock reads in a deterministic path.
use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch_secs() -> u64 {
    let t = SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}
