//! Negative: fl-race site-tagged wrappers are the workspace standard.
use fl_race::{Condvar, Mutex, RwLock, Site};

/// A leaf lock for this fixture (rank table in DESIGN.md §7).
const SLOT: Site = Site::new("fixture/slot", 200);

pub struct Shared {
    pub slot: Mutex<u64>,
    pub table: RwLock<Vec<u64>>,
    pub signal: Condvar,
}

pub fn build() -> Mutex<u64> {
    Mutex::new(SLOT, 0)
}
