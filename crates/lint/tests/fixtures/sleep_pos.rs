//! Positive: blocking the actor thread.
use std::time::Duration;

pub fn handle_message() {
    std::thread::sleep(Duration::from_millis(20));
}
