//! Negative: injected time, plus one justified allow.
use std::time::Instant;

pub fn deadline(now_ms: u64, window_ms: u64) -> u64 {
    now_ms + window_ms
}

pub fn live_epoch() -> Instant {
    // fl-lint: allow(wall-clock): live-mode epoch, never on the sim path
    Instant::now()
}

pub fn mentions_in_comment() {
    // A comment saying Instant::now() must not fire, nor "Instant::now()"
    let _ = "in a string: Instant::now()";
}
