//! Positive: aborting macros in non-test code.
pub fn explode(kind: u8) {
    if kind == 0 {
        panic!("kind must be nonzero");
    }
}

pub fn later() {
    todo!()
}

pub fn never() {
    unimplemented!()
}
