//! Crate-level docs.

/// A documented struct.
pub struct Documented {
    /// Nested fields are out of scope for the root-item rule.
    pub field: u64,
}

/// A documented function.
pub fn documented() {}

/// A documented module.
pub mod named;

pub use self::named as renamed;

pub(crate) fn internal() {}
