//! Negative: guard scopes never overlap.
use fl_race::Mutex;

pub fn transfer(from: &Mutex<u64>, to: &Mutex<u64>, amount: u64) {
    let taken = {
        let mut a = from.lock();
        *a -= amount;
        amount
    };
    let mut b = to.lock();
    *b += taken;
}

pub fn with_explicit_drop(from: &Mutex<u64>, to: &Mutex<u64>) {
    let a = from.lock();
    let snapshot = *a;
    drop(a);
    let mut b = to.lock();
    *b = snapshot;
}
