//! Per-rule fixture tests: every rule must fire on its positive
//! fixture, stay silent on its negative one (which also exercises the
//! `fl-lint: allow` escape hatch and test-code exemption), and stay
//! silent when the positive source sits outside the rule's path scope.

use fl_lint::lint_source;

/// (rule id, in-scope path, positive fixture, negative fixture,
/// out-of-scope path for the positive source).
const CASES: &[(&str, &str, &str, &str, &str)] = &[
    (
        "wall-clock",
        "crates/server/src/fixture.rs",
        include_str!("fixtures/wall_clock_pos.rs"),
        include_str!("fixtures/wall_clock_neg.rs"),
        "crates/data/src/fixture.rs",
    ),
    (
        "unwrap",
        // An unwrap-included crate that missing-doc does NOT cover
        // (fl-secagg is now doc-linted in full, so its virtual path
        // would flag the fixture's undocumented pub fns).
        "crates/actors/src/fixture.rs",
        include_str!("fixtures/unwrap_pos.rs"),
        include_str!("fixtures/unwrap_neg.rs"),
        "crates/ml/src/fixture.rs",
    ),
    (
        "panic",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/panic_pos.rs"),
        include_str!("fixtures/panic_neg.rs"),
        "crates/bench/src/fixture.rs",
    ),
    (
        "std-sync-lock",
        "crates/ml/src/fixture.rs",
        include_str!("fixtures/std_sync_lock_pos.rs"),
        include_str!("fixtures/std_sync_lock_neg.rs"),
        // Workspace-wide, except the crate that owns the wrappers.
        "crates/race/src/fixture.rs",
    ),
    (
        // Same rule, second face: raw parking_lot primitives bypass
        // the fl-race lock graph just as std::sync ones do.
        "std-sync-lock",
        "crates/server/src/fixture.rs",
        include_str!("fixtures/parking_lot_pos.rs"),
        include_str!("fixtures/parking_lot_neg.rs"),
        "crates/race/src/fixture.rs",
    ),
    (
        "sleep",
        "crates/actors/src/fixture.rs",
        include_str!("fixtures/sleep_pos.rs"),
        include_str!("fixtures/sleep_neg.rs"),
        "crates/sim/src/fixture.rs",
    ),
    (
        "print",
        "crates/data/src/fixture.rs",
        include_str!("fixtures/print_pos.rs"),
        include_str!("fixtures/print_neg.rs"),
        "crates/tools/src/fixture.rs",
    ),
    (
        "lock-order",
        "crates/server/src/fixture.rs",
        include_str!("fixtures/lock_order_pos.rs"),
        include_str!("fixtures/lock_order_neg.rs"),
        "src-other/fixture.rs",
    ),
    (
        "missing-doc",
        "crates/core/src/lib.rs",
        include_str!("fixtures/missing_doc_pos.rs"),
        include_str!("fixtures/missing_doc_neg.rs"),
        "crates/core/src/plan.rs",
    ),
];

fn fired(rel: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> =
        lint_source(rel, src).into_iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn every_rule_fires_on_its_positive_fixture() {
    for (rule, path, pos, _, _) in CASES {
        let rules = fired(path, pos);
        assert!(
            rules.contains(rule),
            "rule `{rule}` did not fire on its positive fixture at {path}; fired: {rules:?}"
        );
    }
}

#[test]
fn negative_fixtures_are_clean() {
    for (rule, path, _, neg, _) in CASES {
        let findings = lint_source(path, neg);
        assert!(
            findings.is_empty(),
            "rule `{rule}`'s negative fixture at {path} produced: {findings:?}"
        );
    }
}

#[test]
fn positive_fixtures_respect_path_scope() {
    for (rule, _, pos, _, out_of_scope) in CASES {
        if out_of_scope.is_empty() {
            continue;
        }
        let rules = fired(out_of_scope, pos);
        assert!(
            !rules.contains(rule),
            "rule `{rule}` fired outside its scope at {out_of_scope}"
        );
    }
}

#[test]
fn allow_suppresses_each_rule() {
    // Annotating every line of the positive fixture with the rule's
    // allow must silence it completely.
    for (rule, path, pos, _, _) in CASES {
        let annotated: String = pos
            .lines()
            .map(|l| format!("{l} // fl-lint: allow({rule})\n"))
            .collect();
        let leftover: Vec<_> = lint_source(path, &annotated)
            .into_iter()
            .filter(|f| f.rule == *rule)
            .collect();
        assert!(
            leftover.is_empty(),
            "allow({rule}) did not suppress: {leftover:?}"
        );
    }
}

#[test]
fn unknown_allow_is_itself_a_finding() {
    let src = "// fl-lint: allow(not-a-rule): oops\npub fn f() {}\n";
    let findings = lint_source("crates/core/src/fixture.rs", src);
    assert!(
        findings.iter().any(|f| f.rule == "unknown-allow"),
        "typo'd allow id should be reported; got {findings:?}"
    );
}
