//! The `allowlist-drift` audit against tiny fake workspace trees:
//! drift must be reported in both directions (unaccounted escapes and
//! stale allowlist entries), counts must match exactly, and a clean
//! tree must stay silent.

use fl_lint::audit_wall_clock_allowlist;
use std::fs;
use std::path::PathBuf;

/// A fresh fake workspace root under the build's `target/` directory
/// (inside the workspace — the audit never reads outside it).
fn scratch(name: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/allowlist-audit")
        .join(name);
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/x/src")).unwrap();
    fs::create_dir_all(root.join("scripts")).unwrap();
    root
}

/// One wall-clock escape line. Assembled from parts so *this* test
/// file never matches the audit's needle when the real workspace is
/// scanned.
fn escape() -> String {
    ["// fl-lint: allow", "(wall-clock): fixture\n"].concat()
}

fn write(root: &PathBuf, rel: &str, content: &str) {
    fs::write(root.join(rel), content).unwrap();
}

#[test]
fn matching_counts_are_silent() {
    let root = scratch("clean");
    write(
        &root,
        "crates/x/src/a.rs",
        &format!("{}fn f() {{}}\n{}", escape(), escape()),
    );
    write(&root, "scripts/wall_clock_allowlist.txt", "2 crates/x/src/a.rs\n");
    let findings = audit_wall_clock_allowlist(&root);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unaccounted_escape_is_drift() {
    let root = scratch("unaccounted");
    write(&root, "crates/x/src/a.rs", &escape());
    write(&root, "scripts/wall_clock_allowlist.txt", "");
    let findings = audit_wall_clock_allowlist(&root);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "allowlist-drift");
    assert_eq!(findings[0].file, "crates/x/src/a.rs");
    assert!(findings[0].message.contains("unaccounted"));
}

#[test]
fn stale_entry_is_drift() {
    let root = scratch("stale");
    write(&root, "crates/x/src/a.rs", "fn f() {}\n");
    write(&root, "scripts/wall_clock_allowlist.txt", "1 crates/x/src/a.rs\n");
    let findings = audit_wall_clock_allowlist(&root);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("stale"), "{findings:?}");
}

#[test]
fn count_mismatch_is_drift() {
    let root = scratch("mismatch");
    write(&root, "crates/x/src/a.rs", &escape().repeat(3));
    write(&root, "scripts/wall_clock_allowlist.txt", "1 crates/x/src/a.rs\n");
    let findings = audit_wall_clock_allowlist(&root);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("says 1") && findings[0].message.contains("found 3"),
        "{findings:?}"
    );
}

#[test]
fn fixture_trees_are_counted() {
    // The shell audit this replaces counted lint fixtures; so must we.
    let root = scratch("fixtures");
    fs::create_dir_all(root.join("crates/x/tests/fixtures")).unwrap();
    write(&root, "crates/x/tests/fixtures/f.rs", &escape());
    write(
        &root,
        "scripts/wall_clock_allowlist.txt",
        "1 crates/x/tests/fixtures/f.rs\n",
    );
    let findings = audit_wall_clock_allowlist(&root);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn malformed_lines_are_reported() {
    let root = scratch("malformed");
    write(&root, "scripts/wall_clock_allowlist.txt", "not-a-count path.rs\n");
    let findings = audit_wall_clock_allowlist(&root);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("malformed"), "{findings:?}");
    assert_eq!(findings[0].line, 1);
}

#[test]
fn missing_allowlist_is_reported() {
    let root = scratch("missing");
    write(&root, "crates/x/src/a.rs", "fn f() {}\n");
    let findings = audit_wall_clock_allowlist(&root);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("could not read the allowlist"));
}
