//! Job scheduling and multi-tenancy (Sec. 3, Sec. 11).
//!
//! "An application configures the FL runtime by providing an FL population
//! name and registering its example stores. This schedules a periodic FL
//! runtime job using Android's JobScheduler." — [`JobScheduler`].
//!
//! "Our implementation provides a multi-tenant architecture, supporting
//! training of multiple FL populations in the same app (or service)" with
//! "a simple worker queue for determining which training session to run
//! next (we avoid running training sessions on-device in parallel because
//! of their high resource consumption)" — [`TrainingQueue`].

use crate::conditions::DeviceConditions;
use fl_core::PopulationName;
use std::collections::VecDeque;

/// Periodic, eligibility-gated job invocation (the JobScheduler stand-in).
#[derive(Debug, Clone)]
pub struct JobScheduler {
    period_ms: u64,
    /// Next time the job may fire; also moved forward by pace steering's
    /// "come back later" instructions.
    next_due_ms: u64,
}

impl JobScheduler {
    /// Creates a scheduler with the given invocation period.
    ///
    /// # Panics
    ///
    /// Panics if `period_ms == 0`.
    pub fn new(period_ms: u64) -> Self {
        assert!(period_ms > 0, "period must be positive");
        JobScheduler {
            period_ms,
            next_due_ms: 0,
        }
    }

    /// Polls the scheduler: returns `true` exactly when the job should run
    /// now (due and eligible). An ineligible poll leaves the job due, so
    /// it fires as soon as conditions allow.
    pub fn poll(&mut self, now_ms: u64, conditions: DeviceConditions) -> bool {
        if now_ms >= self.next_due_ms && conditions.is_eligible() {
            self.next_due_ms = now_ms + self.period_ms;
            true
        } else {
            false
        }
    }

    /// Applies a pace-steering instruction ("come back later"): the next
    /// invocation will not happen before `retry_at_ms`.
    pub fn defer_until(&mut self, retry_at_ms: u64) {
        self.next_due_ms = self.next_due_ms.max(retry_at_ms);
    }

    /// When the next invocation is allowed.
    pub fn next_due_ms(&self) -> u64 {
        self.next_due_ms
    }
}

/// The multi-tenant training queue: populations registered on this device,
/// scheduled one session at a time, FIFO ("blind to aspects like which
/// apps the user has been frequently using" — Sec. 11 flags this as future
/// work).
#[derive(Debug, Clone, Default)]
pub struct TrainingQueue {
    queue: VecDeque<PopulationName>,
    active: Option<PopulationName>,
}

impl TrainingQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TrainingQueue::default()
    }

    /// Registers a population (an app configuring the FL runtime).
    /// Duplicate registrations are ignored.
    pub fn register(&mut self, population: PopulationName) {
        if !self.queue.contains(&population) && self.active.as_ref() != Some(&population) {
            self.queue.push_back(population);
        }
    }

    /// Starts the next session if none is active. Returns the population
    /// to train for, or `None` (empty queue or already busy).
    pub fn start_next(&mut self) -> Option<PopulationName> {
        if self.active.is_some() {
            return None;
        }
        let next = self.queue.pop_front()?;
        self.active = Some(next.clone());
        Some(next)
    }

    /// Finishes the active session, re-queueing the population for its
    /// next periodic run.
    pub fn finish_active(&mut self) {
        if let Some(p) = self.active.take() {
            self.queue.push_back(p);
        }
    }

    /// The currently-training population, if any.
    pub fn active(&self) -> Option<&PopulationName> {
        self.active.as_ref()
    }

    /// Populations waiting.
    pub fn waiting(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_fires_only_when_due_and_eligible() {
        let mut s = JobScheduler::new(1_000);
        assert!(!s.poll(0, DeviceConditions::in_use()));
        assert!(s.poll(0, DeviceConditions::eligible()));
        // Just fired: not due again until +1000.
        assert!(!s.poll(500, DeviceConditions::eligible()));
        assert!(s.poll(1_000, DeviceConditions::eligible()));
    }

    #[test]
    fn ineligible_polls_do_not_consume_the_slot() {
        let mut s = JobScheduler::new(1_000);
        assert!(!s.poll(100, DeviceConditions::in_use()));
        // Becomes eligible later: fires immediately, not at next period.
        assert!(s.poll(200, DeviceConditions::eligible()));
    }

    #[test]
    fn defer_until_respects_pace_steering() {
        let mut s = JobScheduler::new(1_000);
        s.defer_until(5_000);
        assert!(!s.poll(1_000, DeviceConditions::eligible()));
        assert!(!s.poll(4_999, DeviceConditions::eligible()));
        assert!(s.poll(5_000, DeviceConditions::eligible()));
    }

    /// Regression: a pace-steering defer whose due time lands inside an
    /// ineligibility stretch (screen on, off charger…) must not starve the
    /// task forever — the slot stays armed and fires at the first eligible
    /// poll after the deferral, then the normal cadence resumes.
    #[test]
    fn defer_past_eligibility_window_does_not_starve() {
        let mut s = JobScheduler::new(1_000);
        s.defer_until(10_000);
        // Deferred: eligible polls before the window do nothing.
        assert!(!s.poll(500, DeviceConditions::eligible()));
        assert!(!s.poll(9_999, DeviceConditions::eligible()));
        // The window opens while the device is in use — slot not consumed.
        assert!(!s.poll(10_000, DeviceConditions::in_use()));
        assert!(!s.poll(14_000, DeviceConditions::in_use()));
        // First eligible poll after the stretch fires immediately.
        assert!(s.poll(25_000, DeviceConditions::eligible()));
        // And the periodic cadence resumes from there, not from 10_000.
        assert!(!s.poll(25_500, DeviceConditions::eligible()));
        assert!(s.poll(26_000, DeviceConditions::eligible()));
    }

    /// Stacked defers (several "come back later" replies in a row) keep
    /// only the latest window, and eligibility churn across all of them
    /// still cannot lose the job.
    #[test]
    fn repeated_defers_with_eligibility_churn_keep_the_job_alive() {
        let mut s = JobScheduler::new(1_000);
        s.defer_until(5_000);
        s.defer_until(3_000); // earlier suggestion must not pull it back
        assert_eq!(s.next_due_ms(), 5_000);
        assert!(!s.poll(4_000, DeviceConditions::eligible()));
        s.defer_until(8_000);
        // Alternating ineligible/eligible polls around the window.
        assert!(!s.poll(8_000, DeviceConditions::in_use()));
        assert!(!s.poll(8_500, DeviceConditions::in_use()));
        assert!(s.poll(9_000, DeviceConditions::eligible()));
    }

    #[test]
    fn queue_runs_one_session_at_a_time() {
        let mut q = TrainingQueue::new();
        q.register(PopulationName::new("a"));
        q.register(PopulationName::new("b"));
        let first = q.start_next().unwrap();
        assert_eq!(first.as_str(), "a");
        // Busy: no parallel sessions.
        assert!(q.start_next().is_none());
        q.finish_active();
        assert_eq!(q.start_next().unwrap().as_str(), "b");
    }

    #[test]
    fn finished_sessions_requeue_round_robin() {
        let mut q = TrainingQueue::new();
        q.register(PopulationName::new("a"));
        q.register(PopulationName::new("b"));
        let mut order = Vec::new();
        for _ in 0..6 {
            let p = q.start_next().unwrap();
            order.push(p.as_str().to_string());
            q.finish_active();
        }
        assert_eq!(order, vec!["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn duplicate_registration_ignored() {
        let mut q = TrainingQueue::new();
        q.register(PopulationName::new("a"));
        q.register(PopulationName::new("a"));
        assert_eq!(q.waiting(), 1);
        let _ = q.start_next();
        q.register(PopulationName::new("a")); // active, still ignored
        assert_eq!(q.waiting(), 0);
    }
}
