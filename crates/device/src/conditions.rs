//! Device state and eligibility (Sec. 3).
//!
//! "The FL runtime requests that the job scheduler only invoke the job
//! when the phone is idle, charging, and connected to an unmetered network
//! such as WiFi. Once started, the FL runtime will abort, freeing the
//! allocated resources, if these conditions are no longer met."

use serde::{Deserialize, Serialize};

/// The device conditions that gate FL participation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceConditions {
    /// Screen off / no interactive use.
    pub idle: bool,
    /// Plugged in and charging.
    pub charging: bool,
    /// On WiFi or another unmetered network.
    pub unmetered_network: bool,
}

impl DeviceConditions {
    /// All conditions met (the common overnight state).
    pub fn eligible() -> Self {
        DeviceConditions {
            idle: true,
            charging: true,
            unmetered_network: true,
        }
    }

    /// A device in active use.
    pub fn in_use() -> Self {
        DeviceConditions {
            idle: false,
            charging: false,
            unmetered_network: true,
        }
    }

    /// Whether FL work may run (all three conditions).
    pub fn is_eligible(&self) -> bool {
        self.idle && self.charging && self.unmetered_network
    }
}

impl Default for DeviceConditions {
    fn default() -> Self {
        DeviceConditions::in_use()
    }
}

/// Static device capabilities the deployment gates on (Sec. 11 *Bias*:
/// "we limit the deployment of our device code only to certain phones,
/// currently with recent Android versions and at least 2 GB of memory").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCapabilities {
    /// Installed FL runtime version (plans are versioned against this,
    /// Sec. 7.3).
    pub runtime_version: u32,
    /// Device memory in megabytes.
    pub memory_mb: u32,
}

impl DeviceCapabilities {
    /// The deployment floor from Sec. 11.
    pub const MIN_MEMORY_MB: u32 = 2048;

    /// Whether the FL device code is deployed to this device at all.
    pub fn meets_deployment_bar(&self) -> bool {
        self.memory_mb >= Self::MIN_MEMORY_MB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility_requires_all_three() {
        assert!(DeviceConditions::eligible().is_eligible());
        for broken in [
            DeviceConditions {
                idle: false,
                ..DeviceConditions::eligible()
            },
            DeviceConditions {
                charging: false,
                ..DeviceConditions::eligible()
            },
            DeviceConditions {
                unmetered_network: false,
                ..DeviceConditions::eligible()
            },
        ] {
            assert!(!broken.is_eligible(), "{broken:?}");
        }
    }

    #[test]
    fn deployment_bar_matches_paper() {
        assert!(DeviceCapabilities {
            runtime_version: 3,
            memory_mb: 2048
        }
        .meets_deployment_bar());
        assert!(!DeviceCapabilities {
            runtime_version: 3,
            memory_mb: 1024
        }
        .meets_deployment_bar());
    }

    #[test]
    fn default_is_not_eligible() {
        assert!(!DeviceConditions::default().is_eligible());
    }
}
