//! Simulated device attestation (Sec. 3, *Attestation*).
//!
//! "We want devices to participate in FL anonymously, which excludes the
//! possibility of authenticating them via a user identity. […] We do so by
//! using Android's remote attestation mechanism, which helps to ensure
//! that only genuine devices and applications participate in FL."
//!
//! The substitution (see DESIGN.md): instead of SafetyNet, genuine devices
//! hold a factory key derived from a fleet root secret; a token is a keyed
//! hash over a server nonce. The *systems* behaviour is preserved — the
//! server admits anonymous devices whose tokens verify and rejects
//! non-genuine ones — without real hardware-backed attestation.

/// A keyed 64-bit hash (SplitMix-based). Not cryptographically secure;
/// simulation-grade by design.
fn keyed_hash(key: u64, data: u64) -> u64 {
    let mut z = key ^ data.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a genuine device's factory key from the fleet root secret and
/// an opaque hardware id (never sent to the server).
pub fn factory_key(fleet_root: u64, hardware_id: u64) -> u64 {
    keyed_hash(fleet_root, hardware_id ^ 0xA77E_57A7_1073_57ED)
}

/// An attestation token covering a server-issued nonce.
///
/// The token is anonymous: it proves "a genuine device produced this" but
/// carries no stable device identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestationToken {
    /// The hardware id blinded by the nonce (so the server cannot link
    /// sessions); verification only needs the keyed MAC.
    pub blinded_id: u64,
    /// MAC over the nonce under the factory key.
    pub mac: u64,
}

/// Device side: produce a token for the server's nonce.
pub fn attest(factory_key: u64, hardware_id: u64, nonce: u64) -> AttestationToken {
    AttestationToken {
        blinded_id: hardware_id ^ keyed_hash(nonce, nonce),
        mac: keyed_hash(factory_key, nonce),
    }
}

/// Server side: verify a token against the fleet root. The server
/// recovers the (blinded) hardware id, derives what the factory key should
/// be, and checks the MAC.
pub fn verify(fleet_root: u64, token: &AttestationToken, nonce: u64) -> bool {
    let hardware_id = token.blinded_id ^ keyed_hash(nonce, nonce);
    let expected_key = factory_key(fleet_root, hardware_id);
    keyed_hash(expected_key, nonce) == token.mac
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROOT: u64 = 0xDEAD_BEEF_CAFE_F00D;

    #[test]
    fn genuine_device_verifies() {
        let hw = 123_456_789;
        let key = factory_key(ROOT, hw);
        let token = attest(key, hw, 42);
        assert!(verify(ROOT, &token, 42));
    }

    #[test]
    fn wrong_nonce_fails() {
        let hw = 99;
        let key = factory_key(ROOT, hw);
        let token = attest(key, hw, 42);
        assert!(!verify(ROOT, &token, 43));
    }

    #[test]
    fn non_genuine_device_fails() {
        // A compromised device guesses a key instead of holding the
        // factory key.
        let hw = 7;
        let token = attest(0x1234, hw, 42);
        assert!(!verify(ROOT, &token, 42));
    }

    #[test]
    fn replayed_token_fails_fresh_nonce() {
        let hw = 55;
        let key = factory_key(ROOT, hw);
        let old = attest(key, hw, 1);
        // The server issues a fresh nonce per check-in; the replay fails.
        assert!(!verify(ROOT, &old, 2));
    }

    #[test]
    fn tokens_do_not_expose_a_stable_identity() {
        let hw = 1_000_001;
        let key = factory_key(ROOT, hw);
        let t1 = attest(key, hw, 10);
        let t2 = attest(key, hw, 11);
        // The visible fields differ across sessions for the same device.
        assert_ne!(t1.blinded_id, t2.blinded_id);
        assert_ne!(t1.mac, t2.mac);
    }
}
