//! Device-side connectivity discipline (Sec. 2.3, device half).
//!
//! Pace steering is a *cooperative* flow-control loop: the server suggests
//! reconnect windows, and devices must honor them — and must behave well
//! even when the server is too overloaded to answer at all. This module is
//! the device half of that loop:
//!
//! * jittered exponential backoff between failed/rejected attempts, so a
//!   population that failed at the same instant (the raw material of a
//!   thundering herd) decorrelates instead of re-synchronizing;
//! * a per-task retry *budget* ([`fl_core::RetryPolicy`]), bounding how
//!   many attempts one device may spend per window during an outage;
//! * the precedence rule: a server-suggested window always wins over a
//!   locally-computed backoff when it is later — the server knows the
//!   population, the device only knows itself.
//!
//! Decisions are applied to the [`JobScheduler`] via
//! [`RetryDecision::apply_to`], which routes through
//! [`JobScheduler::defer_until`] so eligibility gating keeps working: a
//! deferred job whose due time falls in an ineligible period simply fires
//! at the next eligible poll, it is never lost.

use crate::scheduler::JobScheduler;
use fl_core::RetryPolicy;

/// What a device should do after a failed or rejected connection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Try again at the given absolute time (ms): the later of the local
    /// jittered backoff and any server-suggested reconnect window.
    RetryAt(u64),
    /// The per-window retry budget is spent; go quiet until the budget
    /// window rolls over (or later, if the server said later).
    BudgetExhausted {
        /// Absolute time (ms) at which attempts may resume.
        resume_at_ms: u64,
    },
}

impl RetryDecision {
    /// The absolute time this decision permits the next attempt.
    pub fn effective_at_ms(&self) -> u64 {
        match *self {
            RetryDecision::RetryAt(at) => at,
            RetryDecision::BudgetExhausted { resume_at_ms } => resume_at_ms,
        }
    }

    /// Applies the decision to a scheduler: the job will not fire before
    /// the decision's time, via [`JobScheduler::defer_until`].
    pub fn apply_to(&self, scheduler: &mut JobScheduler) {
        scheduler.defer_until(self.effective_at_ms());
    }
}

/// The at-most-once attempt key for one report upload.
///
/// A device that loses its `ReportAck` on the wire cannot tell whether
/// the upload landed; it must retry, and the retry must carry the *same*
/// `(round, attempt)` key so the coordinator's ledger can replay the
/// original decision instead of evaluating (and possibly summing) the
/// report twice. [`UploadSession::key_for_resend`] keeps the key and
/// counts the resend; [`UploadSession::next_attempt`] is only for a
/// genuinely different payload (which real rounds never need — one
/// device trains once per round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadSession {
    round: fl_core::RoundId,
    attempt: u32,
    resends: u32,
}

impl UploadSession {
    /// Starts the upload session for the round the device was configured
    /// with (the checkpoint's round id), at attempt 1.
    pub fn new(round: fl_core::RoundId) -> Self {
        UploadSession {
            round,
            attempt: 1,
            resends: 0,
        }
    }

    /// The current `(round, attempt)` key.
    pub fn key(&self) -> (fl_core::RoundId, u32) {
        (self.round, self.attempt)
    }

    /// The round this upload belongs to.
    pub fn round(&self) -> fl_core::RoundId {
        self.round
    }

    /// The current attempt number (1-based).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Re-sends of the current attempt after transport errors or lost
    /// acks.
    pub fn resends(&self) -> u32 {
        self.resends
    }

    /// The key to use when re-sending the same payload after a transport
    /// error or ack timeout: unchanged, so the server can dedupe.
    pub fn key_for_resend(&mut self) -> (fl_core::RoundId, u32) {
        self.resends = self.resends.saturating_add(1);
        self.key()
    }

    /// Advances to a fresh attempt (a *different* payload); the resend
    /// count restarts with it.
    pub fn next_attempt(&mut self) -> (fl_core::RoundId, u32) {
        self.attempt = self.attempt.saturating_add(1);
        self.resends = 0;
        self.key()
    }
}

/// Per-task connectivity state: consecutive-failure backoff plus the
/// budget-window accounting. Instantiate one per FL task (population) the
/// device participates in — budgets are per-task by design, so one
/// misbehaving population cannot silence another's training.
#[derive(Debug, Clone)]
pub struct ConnectivityManager {
    policy: RetryPolicy,
    /// Consecutive failures since the last success; drives the backoff
    /// exponent. Reset by [`on_success`](ConnectivityManager::on_success).
    consecutive_failures: u32,
    /// Start of the current budget window, aligned to absolute multiples
    /// of `budget_window_ms` so window boundaries are clock-deterministic.
    window_start_ms: u64,
    attempts_in_window: u32,
    retries_total: u64,
    budget_exhaustions_total: u64,
}

impl ConnectivityManager {
    /// Creates a manager for one task.
    ///
    /// # Panics
    ///
    /// Panics if the policy fails [`RetryPolicy::validate`].
    pub fn new(policy: RetryPolicy) -> Self {
        assert!(
            policy.validate().is_ok(),
            "invalid retry policy: {:?}",
            policy.validate()
        );
        ConnectivityManager {
            policy,
            consecutive_failures: 0,
            window_start_ms: 0,
            attempts_in_window: 0,
            retries_total: 0,
            budget_exhaustions_total: 0,
        }
    }

    fn roll_window(&mut self, now_ms: u64) {
        let aligned = now_ms - now_ms % self.policy.budget_window_ms;
        if aligned > self.window_start_ms {
            self.window_start_ms = aligned;
            self.attempts_in_window = 0;
        }
    }

    /// Records a failed or rejected attempt at `now_ms` and decides when
    /// to try again. `server_retry_at_ms` is the server's "come back
    /// later" suggestion, if the reply carried one; it takes precedence
    /// over the local backoff whenever it is later.
    pub fn on_rejected<R: rand::Rng>(
        &mut self,
        now_ms: u64,
        server_retry_at_ms: Option<u64>,
        rng: &mut R,
    ) -> RetryDecision {
        self.roll_window(now_ms);
        self.attempts_in_window = self.attempts_in_window.saturating_add(1);
        self.retries_total += 1;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);

        let server_at = server_retry_at_ms.unwrap_or(0);
        if self.attempts_in_window >= self.policy.budget_per_window {
            self.budget_exhaustions_total += 1;
            let resume_at_ms = (self.window_start_ms + self.policy.budget_window_ms).max(server_at);
            return RetryDecision::BudgetExhausted { resume_at_ms };
        }

        let nominal = self.policy.nominal_delay_ms(self.consecutive_failures);
        // Uniform jitter in [nominal·(1−f), nominal·(1+f)].
        let span = (nominal as f64 * self.policy.jitter_frac) as u64;
        let jittered = nominal.saturating_sub(span) + rng.random_range(0..=2 * span);
        let backoff_at = now_ms + jittered.max(1);
        RetryDecision::RetryAt(backoff_at.max(server_at))
    }

    /// Routes a decoded server wire reply through the retry discipline:
    /// [`fl_wire::WireMessage::ComeBackLater`] (pace steering) and
    /// [`fl_wire::WireMessage::Shed`] (admission control) both carry a
    /// server-suggested reconnect window and count as rejected attempts,
    /// and a [`fl_wire::WireMessage::ReportAck`] with `accepted: false`
    /// is a rejection too — the coordinator refused the report, so an
    /// immediate uncharged retry would hammer a server that already said
    /// no (it carries no window, so the local backoff alone decides).
    /// Every other message is not a rejection and returns `None`,
    /// leaving the backoff state untouched.
    pub fn on_wire_reply<R: rand::Rng>(
        &mut self,
        now_ms: u64,
        reply: &fl_wire::WireMessage,
        rng: &mut R,
    ) -> Option<RetryDecision> {
        match *reply {
            fl_wire::WireMessage::ComeBackLater { retry_at_ms, .. }
            | fl_wire::WireMessage::Shed { retry_at_ms, .. } => {
                Some(self.on_rejected(now_ms, Some(retry_at_ms), rng))
            }
            fl_wire::WireMessage::ReportAck {
                accepted: false, ..
            } => Some(self.on_rejected(now_ms, None, rng)),
            _ => None,
        }
    }

    /// Routes a transport-layer failure — an ack timeout, a connection
    /// reset, a socket error — through the same retry discipline as a
    /// server rejection. The error carries no server window, so the
    /// local jittered backoff and the per-window budget alone decide.
    ///
    /// Every transport error is retryable from the device's point of
    /// view: [`fl_wire::WireError::Timeout`] and
    /// [`fl_wire::WireError::Closed`] obviously so, and a codec error
    /// means the *reply* was mangled in flight — the upload itself may
    /// have landed, which is exactly the ambiguity the
    /// [`UploadSession`] attempt key resolves: the retry re-sends the
    /// same key and the server replays the original ack instead of
    /// double-counting.
    pub fn on_transport_error<R: rand::Rng>(
        &mut self,
        now_ms: u64,
        _error: &fl_wire::WireError,
        rng: &mut R,
    ) -> RetryDecision {
        self.on_rejected(now_ms, None, rng)
    }

    /// Records a successful connection: backoff resets to base. The
    /// budget-window usage is *not* cleared — the budget bounds attempts
    /// per window regardless of outcome.
    pub fn on_success(&mut self, now_ms: u64) {
        self.roll_window(now_ms);
        self.consecutive_failures = 0;
    }

    /// Consecutive failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Attempts charged against the current budget window.
    pub fn attempts_in_window(&self) -> u32 {
        self.attempts_in_window
    }

    /// Total rejected/failed attempts observed over the manager's life.
    pub fn retries_total(&self) -> u64 {
        self.retries_total
    }

    /// Times the per-window budget ran out.
    pub fn budget_exhaustions_total(&self) -> u64 {
        self.budget_exhaustions_total
    }

    /// The policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::DeviceConditions;
    use fl_ml::rng::seeded;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base_delay_ms: 1_000,
            multiplier: 2.0,
            max_delay_ms: 32_000,
            jitter_frac: 0.25,
            budget_per_window: 4,
            budget_window_ms: 100_000,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn backoff_grows_with_consecutive_failures_within_jitter_bounds() {
        let mut m = ConnectivityManager::new(policy());
        let mut rng = seeded(1);
        let mut now = 0u64;
        let mut last_nominal = 0u64;
        for attempt in 1..=3u32 {
            let d = m.on_rejected(now, None, &mut rng);
            let nominal = policy().nominal_delay_ms(attempt);
            let at = match d {
                RetryDecision::RetryAt(at) => at,
                other => panic!("unexpected {other:?}"),
            };
            let delay = at - now;
            assert!(
                delay >= nominal - nominal / 4 && delay <= nominal + nominal / 4,
                "attempt {attempt}: delay {delay} outside jitter band of {nominal}"
            );
            assert!(nominal > last_nominal, "backoff must grow");
            last_nominal = nominal;
            now = at;
        }
    }

    #[test]
    fn server_window_wins_when_later() {
        let mut m = ConnectivityManager::new(policy());
        let mut rng = seeded(2);
        // Local backoff would be ≈1s; server says 60s.
        match m.on_rejected(0, Some(60_000), &mut rng) {
            RetryDecision::RetryAt(at) => assert_eq!(at, 60_000),
            other => panic!("unexpected {other:?}"),
        }
        // A stale server suggestion earlier than backoff is ignored.
        match m.on_rejected(60_000, Some(60_100), &mut rng) {
            RetryDecision::RetryAt(at) => assert!(at > 60_100),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_silences_until_window_rollover() {
        let mut m = ConnectivityManager::new(policy());
        let mut rng = seeded(3);
        let mut decisions = Vec::new();
        for i in 0..4 {
            decisions.push(m.on_rejected(i * 10, None, &mut rng));
        }
        // 4th attempt hits budget_per_window = 4.
        match decisions[3] {
            RetryDecision::BudgetExhausted { resume_at_ms } => {
                assert_eq!(resume_at_ms, 100_000, "resume at window rollover");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(m.budget_exhaustions_total(), 1);
        // Next window: budget is fresh.
        match m.on_rejected(100_000, None, &mut rng) {
            RetryDecision::RetryAt(_) => {}
            other => panic!("expected fresh budget, got {other:?}"),
        }
        assert_eq!(m.attempts_in_window(), 1);
    }

    #[test]
    fn success_resets_backoff_but_not_budget_usage() {
        let mut m = ConnectivityManager::new(policy());
        let mut rng = seeded(4);
        let _ = m.on_rejected(0, None, &mut rng);
        let _ = m.on_rejected(2_000, None, &mut rng);
        assert_eq!(m.consecutive_failures(), 2);
        m.on_success(5_000);
        assert_eq!(m.consecutive_failures(), 0);
        assert_eq!(m.attempts_in_window(), 2, "budget usage persists");
        // Backoff restarts from base.
        match m.on_rejected(6_000, None, &mut rng) {
            RetryDecision::RetryAt(at) => {
                let nominal = policy().base_delay_ms;
                assert!(at - 6_000 <= nominal + nominal / 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = || {
            let mut m = ConnectivityManager::new(policy());
            let mut rng = seeded(42);
            (0..6)
                .map(|i| m.on_rejected(i * 500, Some(i * 700), &mut rng).effective_at_ms())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn apply_to_defers_the_scheduler_without_starving_it() {
        let mut m = ConnectivityManager::new(policy());
        let mut rng = seeded(5);
        let mut sched = JobScheduler::new(500);
        let d = m.on_rejected(0, Some(10_000), &mut rng);
        d.apply_to(&mut sched);
        // Honors the server window...
        assert!(!sched.poll(5_000, DeviceConditions::eligible()));
        // ...and the device was ineligible right at the window edge: the
        // job is not lost, it fires at the next eligible poll.
        assert!(!sched.poll(10_000, DeviceConditions::in_use()));
        assert!(sched.poll(12_345, DeviceConditions::eligible()));
    }

    #[test]
    fn exhausted_budget_honors_a_later_server_window() {
        let mut m = ConnectivityManager::new(policy());
        let mut rng = seeded(6);
        for i in 0..3 {
            let _ = m.on_rejected(i * 10, None, &mut rng);
        }
        match m.on_rejected(30, Some(250_000), &mut rng) {
            RetryDecision::BudgetExhausted { resume_at_ms } => {
                assert_eq!(resume_at_ms, 250_000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wire_replies_route_through_the_retry_discipline() {
        let mut m = ConnectivityManager::new(policy());
        let mut rng = seeded(7);
        // ComeBackLater and Shed are rejections: they honor the carried
        // server window and advance the backoff state.
        let d = m
            .on_wire_reply(0, &cbl(90_000), &mut rng)
            .expect("a rejection");
        assert!(d.effective_at_ms() >= 90_000);
        assert_eq!(m.consecutive_failures(), 1);
        let d = m
            .on_wire_reply(1_000, &shed(300_000), &mut rng)
            .expect("a rejection");
        assert!(d.effective_at_ms() >= 300_000);
        assert_eq!(m.consecutive_failures(), 2);
        // An ack is not a rejection and leaves the state untouched.
        assert!(m
            .on_wire_reply(2_000, &ack(true), &mut rng)
            .is_none());
        assert_eq!(m.consecutive_failures(), 2);
    }

    fn ack(accepted: bool) -> fl_wire::WireMessage {
        fl_wire::WireMessage::ReportAck {
            accepted,
            round: fl_core::RoundId(1),
            attempt: 1,
            population: fl_core::PopulationName::new("pop"),
        }
    }

    fn cbl(retry_at_ms: u64) -> fl_wire::WireMessage {
        fl_wire::WireMessage::ComeBackLater {
            retry_at_ms,
            population: fl_core::PopulationName::new("pop"),
        }
    }

    fn shed(retry_at_ms: u64) -> fl_wire::WireMessage {
        fl_wire::WireMessage::Shed {
            retry_at_ms,
            population: fl_core::PopulationName::new("pop"),
        }
    }

    #[test]
    fn rejected_report_ack_charges_backoff_like_any_failure() {
        let mut m = ConnectivityManager::new(policy());
        let mut rng = seeded(8);
        // Regression: `ReportAck { accepted: false }` used to fall through
        // the `_ => None` arm, leaving backoff untouched — a device whose
        // update the coordinator refused retried immediately, forever,
        // with no budget charge.
        let d = m
            .on_wire_reply(0, &ack(false), &mut rng)
            .expect("a refused report is a rejection");
        assert!(
            d.effective_at_ms() > 0,
            "must back off, not retry immediately"
        );
        assert_eq!(m.consecutive_failures(), 1);
        assert_eq!(m.attempts_in_window(), 1, "budget is charged");
        assert_eq!(m.retries_total(), 1);
        // Repeated refusals keep growing the backoff and eventually
        // exhaust the per-window budget.
        let mut now = d.effective_at_ms();
        for _ in 0..2 {
            let d = m
                .on_wire_reply(now, &ack(false), &mut rng)
                .expect("a rejection");
            now = d.effective_at_ms();
        }
        assert_eq!(m.consecutive_failures(), 3);
        match m.on_wire_reply(now, &ack(false), &mut rng) {
            Some(RetryDecision::BudgetExhausted { .. }) => {}
            other => panic!("4th refusal should exhaust the budget, got {other:?}"),
        }
    }

    #[test]
    fn transport_errors_charge_the_retry_budget() {
        let mut m = ConnectivityManager::new(policy());
        let mut rng = seeded(9);
        // Timeout, closed, and a mangled reply all back off identically:
        // no server window, local discipline only.
        let mut now = 0u64;
        for err in [
            fl_wire::WireError::Timeout,
            fl_wire::WireError::Closed,
            fl_wire::WireError::BadMagic { found: [0, 0] },
        ] {
            let d = m.on_transport_error(now, &err, &mut rng);
            assert!(d.effective_at_ms() > now, "must back off after {err:?}");
            now = d.effective_at_ms();
        }
        assert_eq!(m.consecutive_failures(), 3);
        assert_eq!(m.attempts_in_window(), 3, "budget is charged");
        // A success (the retried upload's replayed ack arrived) resets
        // the backoff as usual.
        m.on_success(now);
        assert_eq!(m.consecutive_failures(), 0);
    }

    #[test]
    fn upload_session_keeps_its_key_across_resends() {
        let mut s = UploadSession::new(fl_core::RoundId(7));
        assert_eq!(s.key(), (fl_core::RoundId(7), 1));
        // Transport error → resend, same key (the server dedupes on it).
        assert_eq!(s.key_for_resend(), (fl_core::RoundId(7), 1));
        assert_eq!(s.key_for_resend(), (fl_core::RoundId(7), 1));
        assert_eq!(s.resends(), 2);
        // Only a genuinely new payload advances the attempt.
        assert_eq!(s.next_attempt(), (fl_core::RoundId(7), 2));
        assert_eq!(s.resends(), 0);
    }
}
