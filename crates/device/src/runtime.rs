//! The FL runtime: plan interpretation (Sec. 3, *Task Execution*).
//!
//! "If the device has been selected, the FL runtime receives the FL plan,
//! queries the app's example store for data requested by the plan, and
//! computes plan-determined model updates and metrics."
//!
//! [`FlRuntime::execute`] interprets the device portion of a plan against
//! an example store: instantiate the model graph, load the checkpoint,
//! query data, run the training loop the plan describes, compute metrics,
//! and build the (codec-encoded) weighted update. Interruptions (the
//! device leaving the idle state mid-run, Sec. 3) abort execution exactly
//! as the paper describes, producing the `-v[!`-shaped sessions of
//! Table 1.

use fl_core::events::DeviceEvent;
use fl_core::plan::{DevicePlan, PlanOp};
use fl_core::{CoreError, FlCheckpoint};
use fl_data::store::{ExampleQuery, ExampleStore};
use fl_ml::linalg::argmax;
use fl_ml::model::Label;
use fl_ml::optim::{Optimizer, Sgd};
use fl_ml::{Example, Model};

/// Injected interruption: the device exits the eligible state partway
/// through plan execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interruption {
    /// Abort before executing the op at this index.
    BeforeOp(usize),
}

/// The result of executing a plan on-device.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionOutcome {
    /// Execution finished; the report is ready.
    Completed {
        /// Codec-encoded update (`None` for evaluation plans).
        update_bytes: Option<Vec<u8>>,
        /// Update weight = number of local examples used.
        weight: u64,
        /// Mean loss over the plan's metric pass (NaN if never computed).
        loss: f64,
        /// Top-1 accuracy over the metric pass (NaN if never computed).
        accuracy: f64,
        /// Total examples processed across all training epochs — the
        /// simulator converts this to on-device compute time.
        work_units: u64,
        /// Session events contributed by execution, in order.
        events: Vec<DeviceEvent>,
    },
    /// The device was interrupted (left idle/charging, Sec. 3): resources
    /// freed, nothing reported.
    Interrupted {
        /// Index of the op that did not run.
        at_op: usize,
        /// Work done before the interruption.
        work_units: u64,
        /// Session events up to the interruption (ends with
        /// [`DeviceEvent::Interrupted`]).
        events: Vec<DeviceEvent>,
    },
}

/// The device-side FL runtime.
#[derive(Debug, Clone, Copy)]
pub struct FlRuntime {
    /// The TensorFlow-runtime-version stand-in this device ships (plans
    /// must be lowered to ≤ this version, Sec. 7.3).
    pub runtime_version: u32,
}

impl FlRuntime {
    /// Creates a runtime of the given version.
    pub fn new(runtime_version: u32) -> Self {
        FlRuntime { runtime_version }
    }

    /// Executes a device plan against the local example store.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnsupportedVersion`] if the plan requires a newer
    ///   runtime (the server should have served a versioned plan);
    /// * [`CoreError::Ml`] on model/data mismatches (surfaces as an error
    ///   session, `*` in Table 1).
    pub fn execute(
        &self,
        plan: &DevicePlan,
        checkpoint: &FlCheckpoint,
        store: &dyn ExampleStore,
        interruption: Option<Interruption>,
    ) -> Result<ExecutionOutcome, CoreError> {
        if plan.required_version() > self.runtime_version {
            return Err(CoreError::UnsupportedVersion {
                requested: plan.required_version(),
                oldest_supported: self.runtime_version,
            });
        }
        let mut model = plan.model.instantiate();
        let mut examples: Vec<Example> = Vec::new();
        let mut w0: Vec<f32> = Vec::new();
        let mut loss = f64::NAN;
        let mut accuracy = f64::NAN;
        let mut update_bytes: Option<Vec<u8>> = None;
        let mut work_units: u64 = 0;
        let mut events: Vec<DeviceEvent> = Vec::new();
        let mut training_started = false;

        for (idx, op) in plan.ops.iter().enumerate() {
            if let Some(Interruption::BeforeOp(at)) = interruption {
                if idx == at {
                    events.push(DeviceEvent::Interrupted);
                    return Ok(ExecutionOutcome::Interrupted {
                        at_op: idx,
                        work_units,
                        events,
                    });
                }
            }
            match op {
                PlanOp::LoadCheckpoint => {
                    model.set_params(checkpoint.params())?;
                    w0 = checkpoint.params().to_vec();
                }
                PlanOp::QueryExamples { limit, held_out } => {
                    let mut q = if *held_out {
                        ExampleQuery::evaluation()
                    } else {
                        ExampleQuery::training()
                    };
                    q.limit = *limit;
                    examples = store.query(&q);
                }
                PlanOp::Train {
                    epochs,
                    batch_size,
                    learning_rate,
                } => {
                    if !training_started {
                        events.push(DeviceEvent::TrainingStarted);
                        training_started = true;
                    }
                    let mut opt = Sgd::new(*learning_rate);
                    for _ in 0..(*epochs).max(1) {
                        work_units += Self::one_epoch(
                            model.as_mut(),
                            &examples,
                            *batch_size,
                            &mut opt,
                        )?;
                    }
                }
                PlanOp::TrainEpoch {
                    batch_size,
                    learning_rate,
                } => {
                    if !training_started {
                        events.push(DeviceEvent::TrainingStarted);
                        training_started = true;
                    }
                    let mut opt = Sgd::new(*learning_rate);
                    work_units +=
                        Self::one_epoch(model.as_mut(), &examples, *batch_size, &mut opt)?;
                }
                PlanOp::ComputeLoss => {
                    if !examples.is_empty() {
                        loss = model.loss(&examples)?;
                    }
                }
                PlanOp::ComputeAccuracy => {
                    accuracy = Self::accuracy(model.as_ref(), &examples)?;
                }
                PlanOp::ComputeMetrics => {
                    if !examples.is_empty() {
                        loss = model.loss(&examples)?;
                    }
                    accuracy = Self::accuracy(model.as_ref(), &examples)?;
                }
                PlanOp::BuildUpdate => {
                    if training_started {
                        events.push(DeviceEvent::TrainingCompleted);
                        training_started = false;
                    }
                    let n = examples.len() as f32;
                    let delta: Vec<f32> = model
                        .params()
                        .iter()
                        .zip(&w0)
                        .map(|(w, w0v)| n * (w - w0v))
                        .collect();
                    update_bytes = Some(plan.update_codec.build().encode(&delta));
                }
            }
        }
        if training_started {
            events.push(DeviceEvent::TrainingCompleted);
        }
        Ok(ExecutionOutcome::Completed {
            update_bytes,
            weight: examples.len() as u64,
            loss,
            accuracy,
            work_units,
            events,
        })
    }

    fn one_epoch(
        model: &mut (dyn Model + Send),
        examples: &[Example],
        batch_size: usize,
        opt: &mut Sgd,
    ) -> Result<u64, CoreError> {
        if examples.is_empty() {
            return Ok(0);
        }
        let mut work = 0u64;
        for chunk in examples.chunks(batch_size.max(1)) {
            let (_, grad) = model.loss_and_grad(chunk)?;
            opt.step(model.params_mut(), &grad);
            work += chunk.len() as u64;
        }
        Ok(work)
    }

    fn accuracy(model: &(dyn Model + Send), examples: &[Example]) -> Result<f64, CoreError> {
        if examples.is_empty() {
            return Ok(f64::NAN);
        }
        let mut hits = 0usize;
        for ex in examples {
            let scores = model.predict(ex)?;
            let pred = argmax(&scores).unwrap_or(0);
            let hit = match ex.label() {
                Label::Class(c) => pred == c,
                Label::Token(t) => pred as u32 == t,
                Label::Real(_) => false,
            };
            if hit {
                hits += 1;
            }
        }
        Ok(hits as f64 / examples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_core::plan::{CodecSpec, FlPlan, ModelSpec};
    use fl_core::RoundId;
    use fl_data::store::{InMemoryStore, StoreConfig};

    fn spec() -> ModelSpec {
        ModelSpec::Logistic {
            dim: 2,
            classes: 2,
            seed: 0,
        }
    }

    fn store_with(n: usize) -> InMemoryStore {
        let examples: Vec<Example> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Example::classification(vec![2.0, 0.0], 0)
                } else {
                    Example::classification(vec![0.0, 2.0], 1)
                }
            })
            .collect();
        InMemoryStore::with_examples(StoreConfig::default(), examples, 0)
    }

    fn checkpoint() -> FlCheckpoint {
        FlCheckpoint::new("t", RoundId(0), vec![0.0; spec().num_params()])
    }

    #[test]
    fn training_plan_produces_a_real_update() {
        let plan = FlPlan::standard_training(spec(), 2, 4, 0.5, CodecSpec::Identity);
        let runtime = FlRuntime::new(3);
        let outcome = runtime
            .execute(&plan.device, &checkpoint(), &store_with(20), None)
            .unwrap();
        match outcome {
            ExecutionOutcome::Completed {
                update_bytes,
                weight,
                loss,
                accuracy,
                work_units,
                events,
            } => {
                let bytes = update_bytes.expect("training produces an update");
                let delta = CodecSpec::Identity
                    .build()
                    .decode(&bytes, spec().num_params())
                    .unwrap();
                assert!(delta.iter().any(|d| d.abs() > 1e-4), "update is non-zero");
                assert_eq!(weight, 16); // 20 examples, 20% held out
                assert!(loss.is_finite());
                assert!(accuracy >= 0.0);
                assert_eq!(work_units, 2 * 16); // 2 epochs over 16 examples
                assert_eq!(
                    events,
                    vec![DeviceEvent::TrainingStarted, DeviceEvent::TrainingCompleted]
                );
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn evaluation_plan_has_metrics_but_no_update() {
        let plan = FlPlan::standard_evaluation(spec());
        let runtime = FlRuntime::new(3);
        let outcome = runtime
            .execute(&plan.device, &checkpoint(), &store_with(20), None)
            .unwrap();
        match outcome {
            ExecutionOutcome::Completed {
                update_bytes,
                accuracy,
                events,
                ..
            } => {
                assert!(update_bytes.is_none());
                assert!(accuracy.is_finite());
                assert!(events.is_empty()); // no training events
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn lowered_plan_produces_equivalent_update() {
        // Sec. 7.3: "Versioned and unversioned plans must pass the same
        // release tests, and are therefore treated as semantically
        // equivalent."
        let plan = FlPlan::standard_training(spec(), 3, 4, 0.5, CodecSpec::Identity);
        let lowered = plan.device.lower_to_version(1).unwrap();
        let store = store_with(20);
        let modern = FlRuntime::new(3)
            .execute(&plan.device, &checkpoint(), &store, None)
            .unwrap();
        let legacy = FlRuntime::new(1)
            .execute(&lowered, &checkpoint(), &store, None)
            .unwrap();
        let get_update = |o: &ExecutionOutcome| match o {
            ExecutionOutcome::Completed { update_bytes, .. } => update_bytes.clone().unwrap(),
            _ => panic!("expected completion"),
        };
        assert_eq!(get_update(&modern), get_update(&legacy));
    }

    #[test]
    fn old_runtime_rejects_new_plan() {
        let plan = FlPlan::standard_training(spec(), 1, 4, 0.5, CodecSpec::Identity);
        let runtime = FlRuntime::new(1); // too old for the fused Train op
        assert!(matches!(
            runtime.execute(&plan.device, &checkpoint(), &store_with(4), None),
            Err(CoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn interruption_yields_table_1_shape() {
        let plan = FlPlan::standard_training(spec(), 1, 4, 0.5, CodecSpec::Identity);
        let runtime = FlRuntime::new(3);
        // Interrupt before op 3 (ComputeMetrics), i.e. right after training
        // starts... actually before the Train op completes the plan: ops are
        // [Load, Query, Train, Metrics, BuildUpdate]; interrupt before 3.
        let outcome = runtime
            .execute(
                &plan.device,
                &checkpoint(),
                &store_with(20),
                Some(Interruption::BeforeOp(3)),
            )
            .unwrap();
        match outcome {
            ExecutionOutcome::Interrupted { at_op, events, .. } => {
                assert_eq!(at_op, 3);
                assert_eq!(
                    events,
                    vec![DeviceEvent::TrainingStarted, DeviceEvent::Interrupted]
                );
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn wrong_dimension_checkpoint_errors() {
        let plan = FlPlan::standard_training(spec(), 1, 4, 0.5, CodecSpec::Identity);
        let bad = FlCheckpoint::new("t", RoundId(0), vec![0.0; 3]);
        let runtime = FlRuntime::new(3);
        assert!(matches!(
            runtime.execute(&plan.device, &bad, &store_with(4), None),
            Err(CoreError::Ml(_))
        ));
    }

    #[test]
    fn empty_store_completes_with_zero_weight() {
        let plan = FlPlan::standard_training(spec(), 1, 4, 0.5, CodecSpec::Identity);
        let empty = InMemoryStore::new(StoreConfig::default());
        let outcome = FlRuntime::new(3)
            .execute(&plan.device, &checkpoint(), &empty, None)
            .unwrap();
        match outcome {
            ExecutionOutcome::Completed { weight, work_units, .. } => {
                assert_eq!(weight, 0);
                assert_eq!(work_units, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantized_update_decodes_close_to_identity() {
        let q = FlPlan::standard_training(spec(), 2, 4, 0.5, CodecSpec::Quantize { block: 8 });
        let id = FlPlan::standard_training(spec(), 2, 4, 0.5, CodecSpec::Identity);
        let store = store_with(20);
        let run = |plan: &FlPlan, codec: CodecSpec| -> Vec<f32> {
            match FlRuntime::new(3)
                .execute(&plan.device, &checkpoint(), &store, None)
                .unwrap()
            {
                ExecutionOutcome::Completed { update_bytes, .. } => codec
                    .build()
                    .decode(&update_bytes.unwrap(), spec().num_params())
                    .unwrap(),
                _ => panic!(),
            }
        };
        let exact = run(&id, CodecSpec::Identity);
        let quant = run(&q, CodecSpec::Quantize { block: 8 });
        for (a, b) in exact.iter().zip(&quant) {
            assert!((a - b).abs() < 0.05 * (a.abs().max(1.0)), "{a} vs {b}");
        }
    }
}
