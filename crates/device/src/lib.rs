//! `fl-device` — the on-device Federated Learning runtime (Sec. 3).
//!
//! The paper's device stack, reproduced without Android:
//!
//! * [`conditions`] — device state and the eligibility criteria ("idle,
//!   charging, and connected to an unmetered network");
//! * [`scheduler`] — the JobScheduler stand-in: periodic job invocation
//!   gated on eligibility, with abort-on-change semantics, plus the
//!   multi-tenant training queue ("a simple worker queue […] we avoid
//!   running training sessions on-device in parallel", Sec. 11);
//! * [`connectivity`] — the device half of pace steering (Sec. 2.3):
//!   jittered exponential backoff, per-task retry budgets, and honoring of
//!   server-suggested reconnect windows through the scheduler;
//! * [`attestation`] — simulated device attestation (Sec. 3: devices
//!   participate anonymously; the server verifies tokens so that "only
//!   genuine devices and applications participate");
//! * [`runtime`] — the FL runtime itself: interprets the device portion of
//!   an FL plan against the app's example store, computes updates and
//!   metrics, and reports, emitting the session events of Table 1;
//! * [`tenancy`] — the multi-population front end: per-population
//!   schedulers and retry budgets behind single-active-session
//!   arbitration, so several FL populations share one device without
//!   parallel training or cross-population interference.

pub mod attestation;
pub mod conditions;
pub mod connectivity;
pub mod runtime;
pub mod scheduler;
pub mod tenancy;

pub use conditions::DeviceConditions;
pub use connectivity::{ConnectivityManager, RetryDecision, UploadSession};
pub use runtime::{ExecutionOutcome, FlRuntime, Interruption};
pub use scheduler::{JobScheduler, TrainingQueue};
pub use tenancy::{DeviceTenancy, PopulationLane};
