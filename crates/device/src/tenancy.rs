//! Multi-population device tenancy (Sec. 3).
//!
//! "Our implementation provides a multi-tenant architecture, supporting
//! training of multiple FL populations in the same app (or service)."
//! [`DeviceTenancy`] is that architecture's device half assembled from
//! the existing parts: each registered population gets its *own*
//! [`JobScheduler`] (periodic invocation cadence) and its own
//! [`ConnectivityManager`] (jittered backoff and per-window retry budget
//! — per-task by design, so one misbehaving population cannot silence
//! another's check-ins), while the shared [`TrainingQueue`] arbitrates a
//! single active training session: "we avoid running training sessions
//! on-device in parallel because of their high resource consumption."
//!
//! Arbitration losers are not dropped — the population that was due but
//! lost the session slot is deferred through its own retry discipline
//! ([`JobScheduler::defer_until`] via [`RetryDecision::apply_to`]),
//! charging its own budget, so it decorrelates and comes back instead of
//! spinning against the active session.

use crate::conditions::DeviceConditions;
use crate::connectivity::ConnectivityManager;
use crate::scheduler::{JobScheduler, TrainingQueue};
use fl_core::{PopulationName, RetryPolicy};
use std::collections::BTreeMap;

/// One registered population's device-side state: its invocation cadence
/// and its connectivity discipline. Budgets and backoff are private to
/// the lane — exhaustion here never leaks into another population.
#[derive(Debug, Clone)]
pub struct PopulationLane {
    /// Periodic invocation for this population's training job.
    pub scheduler: JobScheduler,
    /// Backoff + per-window retry budget for this population only.
    pub connectivity: ConnectivityManager,
}

/// The device's multi-population runtime front end: per-population lanes
/// plus the single-active-session worker queue.
#[derive(Debug, Clone, Default)]
pub struct DeviceTenancy {
    queue: TrainingQueue,
    lanes: BTreeMap<PopulationName, PopulationLane>,
    arbitration_losses: u64,
}

impl DeviceTenancy {
    /// Creates an empty tenancy (no populations registered).
    pub fn new() -> Self {
        DeviceTenancy::default()
    }

    /// Registers a population (an app configuring the FL runtime): its
    /// own scheduler at `period_ms` and its own retry discipline under
    /// `policy`. Duplicate registrations keep the existing lane.
    ///
    /// # Panics
    ///
    /// Panics if `period_ms == 0` or the policy fails
    /// [`RetryPolicy::validate`] (both via the underlying constructors).
    pub fn register(&mut self, population: PopulationName, period_ms: u64, policy: RetryPolicy) {
        self.queue.register(population.clone());
        self.lanes.entry(population).or_insert_with(|| PopulationLane {
            scheduler: JobScheduler::new(period_ms),
            connectivity: ConnectivityManager::new(policy),
        });
    }

    /// Tries to start a training session at `now_ms`. At most one session
    /// runs at a time: while one is active this returns `None` without
    /// touching any lane. Otherwise the worker queue picks the first
    /// waiting population whose scheduler is due and eligible; every
    /// *other* population that was also due loses the arbitration and is
    /// deferred through its own backoff (charging its own retry budget),
    /// so contenders decorrelate instead of re-colliding at the next
    /// poll.
    pub fn start_session<R: rand::Rng>(
        &mut self,
        now_ms: u64,
        conditions: DeviceConditions,
        rng: &mut R,
    ) -> Option<PopulationName> {
        if self.queue.active().is_some() {
            return None;
        }
        // Which populations are due right now, before any slot is
        // consumed? (`next_due_ms` peeks; only the winner's `poll` fires.)
        let due: Vec<PopulationName> = self
            .lanes
            .iter()
            .filter(|(_, lane)| now_ms >= lane.scheduler.next_due_ms())
            .map(|(p, _)| p.clone())
            .collect();
        if due.is_empty() || !conditions.is_eligible() {
            return None;
        }
        // The worker queue decides priority among the due populations:
        // rotate until the front is due (bounded by the queue length).
        let mut winner = None;
        for _ in 0..self.queue.waiting() {
            let candidate = self.queue.start_next()?;
            let lane = self
                .lanes
                .get_mut(&candidate)
                .expect("queued population has a lane");
            if lane.scheduler.poll(now_ms, conditions) {
                winner = Some(candidate);
                break;
            }
            // Not due: back to the end of the queue, untouched.
            self.queue.finish_active();
        }
        let winner = winner?;
        // Every other due population lost the single session slot: defer
        // it through its own retry discipline.
        for loser in due.iter().filter(|p| **p != winner) {
            let lane = self.lanes.get_mut(loser).expect("due population has a lane");
            let decision = lane.connectivity.on_rejected(now_ms, None, rng);
            decision.apply_to(&mut lane.scheduler);
            self.arbitration_losses += 1;
        }
        Some(winner)
    }

    /// Finishes the active session, re-queueing its population for the
    /// next periodic run.
    pub fn finish_session(&mut self) {
        self.queue.finish_active();
    }

    /// Routes a decoded server reply for `population` through that
    /// population's retry discipline and scheduler — a `ComeBackLater` /
    /// `Shed` / refusing ack charges *only* this lane's budget. Returns
    /// the decision, or `None` when the reply is not a rejection or the
    /// population is unknown.
    pub fn on_server_reply<R: rand::Rng>(
        &mut self,
        population: &PopulationName,
        now_ms: u64,
        reply: &fl_wire::WireMessage,
        rng: &mut R,
    ) -> Option<crate::connectivity::RetryDecision> {
        let lane = self.lanes.get_mut(population)?;
        let decision = lane.connectivity.on_wire_reply(now_ms, reply, rng)?;
        decision.apply_to(&mut lane.scheduler);
        Some(decision)
    }

    /// Records a successful connection for `population` (backoff resets,
    /// budget usage persists). Unknown populations are ignored.
    pub fn on_success(&mut self, population: &PopulationName, now_ms: u64) {
        if let Some(lane) = self.lanes.get_mut(population) {
            lane.connectivity.on_success(now_ms);
        }
    }

    /// The population whose training session is currently running.
    pub fn active(&self) -> Option<&PopulationName> {
        self.queue.active()
    }

    /// Read access to one population's lane.
    pub fn lane(&self, population: &PopulationName) -> Option<&PopulationLane> {
        self.lanes.get(population)
    }

    /// Registered populations, in name order.
    pub fn populations(&self) -> Vec<&PopulationName> {
        self.lanes.keys().collect()
    }

    /// Times a due population lost the single-session arbitration and was
    /// deferred through its own backoff.
    pub fn arbitration_losses(&self) -> u64 {
        self.arbitration_losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_ml::rng::seeded;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base_delay_ms: 1_000,
            multiplier: 2.0,
            max_delay_ms: 32_000,
            jitter_frac: 0.25,
            budget_per_window: 3,
            budget_window_ms: 100_000,
            ..RetryPolicy::default()
        }
    }

    fn pop(name: &str) -> PopulationName {
        PopulationName::new(name)
    }

    #[test]
    fn exactly_one_session_runs_and_the_loser_is_deferred_then_runs() {
        let mut t = DeviceTenancy::new();
        let mut rng = seeded(11);
        t.register(pop("a"), 10_000, policy());
        t.register(pop("b"), 10_000, policy());

        // Both due at t=0; "a" wins (queue order), "b" loses and is
        // deferred through its own backoff with its budget charged.
        let winner = t.start_session(0, DeviceConditions::eligible(), &mut rng);
        assert_eq!(winner, Some(pop("a")));
        assert_eq!(t.active(), Some(&pop("a")));
        let b_lane = t.lane(&pop("b")).unwrap();
        assert!(b_lane.scheduler.next_due_ms() > 0, "loser deferred");
        assert_eq!(b_lane.connectivity.attempts_in_window(), 1, "loser charged");
        assert_eq!(t.arbitration_losses(), 1);

        // While "a" trains, nothing else may start — even past b's defer.
        let b_due = t.lane(&pop("b")).unwrap().scheduler.next_due_ms();
        assert_eq!(
            t.start_session(b_due + 1, DeviceConditions::eligible(), &mut rng),
            None
        );

        // Session ends; "b" runs at its deferred time.
        t.finish_session();
        assert_eq!(t.active(), None);
        let winner = t.start_session(b_due + 1, DeviceConditions::eligible(), &mut rng);
        assert_eq!(winner, Some(pop("b")));
    }

    #[test]
    fn ineligible_device_starts_nothing() {
        let mut t = DeviceTenancy::new();
        let mut rng = seeded(12);
        t.register(pop("a"), 1_000, policy());
        assert_eq!(t.start_session(0, DeviceConditions::in_use(), &mut rng), None);
        // The slot was not consumed and no budget was charged.
        assert_eq!(t.lane(&pop("a")).unwrap().connectivity.attempts_in_window(), 0);
        assert_eq!(
            t.start_session(1, DeviceConditions::eligible(), &mut rng),
            Some(pop("a"))
        );
    }

    /// Regression (satellite): one population's exhausted retry budget
    /// must not silence another's check-ins — budgets and backoff are
    /// keyed per population.
    #[test]
    fn exhausted_budget_is_isolated_per_population() {
        let mut t = DeviceTenancy::new();
        let mut rng = seeded(13);
        t.register(pop("noisy"), 1_000, policy());
        t.register(pop("steady"), 1_000, policy());

        // The server sheds "noisy" until its per-window budget is spent.
        let shed = |at| fl_wire::WireMessage::Shed {
            retry_at_ms: at,
            population: pop("noisy"),
        };
        for i in 0..3u64 {
            t.on_server_reply(&pop("noisy"), i * 10, &shed(i * 10 + 5), &mut rng)
                .expect("a rejection");
        }
        let noisy = t.lane(&pop("noisy")).unwrap();
        assert_eq!(noisy.connectivity.budget_exhaustions_total(), 1);
        assert!(
            noisy.scheduler.next_due_ms() >= 100_000,
            "noisy lane silenced until its window rolls"
        );

        // "steady" is untouched: empty budget, no backoff, still due.
        let steady = t.lane(&pop("steady")).unwrap();
        assert_eq!(steady.connectivity.attempts_in_window(), 0);
        assert_eq!(steady.connectivity.consecutive_failures(), 0);
        let winner = t.start_session(1_000, DeviceConditions::eligible(), &mut rng);
        assert_eq!(winner, Some(pop("steady")));
    }

    #[test]
    fn server_replies_route_to_the_claimed_population_only() {
        let mut t = DeviceTenancy::new();
        let mut rng = seeded(14);
        t.register(pop("a"), 1_000, policy());
        t.register(pop("b"), 1_000, policy());
        let reply = fl_wire::WireMessage::ComeBackLater {
            retry_at_ms: 50_000,
            population: pop("a"),
        };
        let d = t.on_server_reply(&pop("a"), 0, &reply, &mut rng).unwrap();
        assert!(d.effective_at_ms() >= 50_000);
        assert_eq!(t.lane(&pop("a")).unwrap().connectivity.retries_total(), 1);
        assert_eq!(t.lane(&pop("b")).unwrap().connectivity.retries_total(), 0);
        // Unknown population: no lane, no decision.
        assert!(t.on_server_reply(&pop("ghost"), 0, &reply, &mut rng).is_none());
    }

    #[test]
    fn arbitration_is_deterministic_per_seed() {
        let run = |seed| {
            let mut t = DeviceTenancy::new();
            let mut rng = seeded(seed);
            for name in ["a", "b", "c"] {
                t.register(pop(name), 5_000, policy());
            }
            let mut trace = Vec::new();
            let mut now = 0u64;
            for _ in 0..8 {
                if let Some(w) = t.start_session(now, DeviceConditions::eligible(), &mut rng) {
                    trace.push((now, w.as_str().to_string()));
                    t.finish_session();
                }
                now += 2_500;
            }
            trace
        };
        assert_eq!(run(21), run(21));
        assert!(!run(21).is_empty());
    }
}
