//! Partitioning centralized datasets across simulated users.
//!
//! Federated data is naturally partitioned by user; these helpers create
//! that structure from a centralized pool, either IID (a best case no real
//! deployment enjoys) or with label skew (the realistic non-IID case the
//! FedAvg paper evaluates).

use fl_ml::model::Label;
use fl_ml::rng;
use fl_ml::Example;
use rand::RngExt;

/// How a centralized dataset is split across users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionStrategy {
    /// Shuffle and deal examples round-robin.
    Iid,
    /// Each user draws a dominant class; `skew` ∈ \[0,1\] is the probability
    /// an example assigned to the user comes from its dominant class.
    LabelSkew {
        /// Probability mass concentrated on the user's dominant class.
        skew: f64,
    },
}

/// Splits `examples` across `users` partitions.
///
/// For [`PartitionStrategy::LabelSkew`], examples must be classification
/// examples; each user `u` is assigned dominant class `u % classes` and
/// preferentially receives examples of that class.
///
/// # Panics
///
/// Panics if `users == 0`, or for `LabelSkew` if `examples` contains
/// non-classification examples.
pub fn partition(
    examples: Vec<Example>,
    users: usize,
    strategy: PartitionStrategy,
    seed: u64,
) -> Vec<Vec<Example>> {
    assert!(users > 0, "must have at least one user");
    let mut rng = rng::seeded(seed);
    let mut parts: Vec<Vec<Example>> = vec![Vec::new(); users];
    match strategy {
        PartitionStrategy::Iid => {
            let mut shuffled = examples;
            // Fisher–Yates shuffle.
            for i in (1..shuffled.len()).rev() {
                let j = rng.random_range(0..=i);
                shuffled.swap(i, j);
            }
            for (i, ex) in shuffled.into_iter().enumerate() {
                parts[i % users].push(ex);
            }
        }
        PartitionStrategy::LabelSkew { skew } => {
            let classes = examples
                .iter()
                .map(|ex| match ex.label() {
                    Label::Class(c) => c + 1,
                    // fl-lint: allow(panic): documented precondition of sim-side
                    // dataset prep; never reachable from the control plane.
                    _ => panic!("label-skew partitioning requires classification examples"),
                })
                .max()
                .unwrap_or(1);
            // Group examples by class, then deal: with probability `skew`
            // an example goes to a user whose dominant class matches.
            for ex in examples {
                let class = match ex.label() {
                    Label::Class(c) => c,
                    _ => unreachable!(),
                };
                let user = if rng.random::<f64>() < skew {
                    // Uniform among users whose dominant class == class.
                    let matching = (users + classes - 1 - class) / classes;
                    if matching == 0 {
                        rng.random_range(0..users)
                    } else {
                        class + classes * rng.random_range(0..matching)
                    }
                } else {
                    rng.random_range(0..users)
                };
                parts[user.min(users - 1)].push(ex);
            }
        }
    }
    parts
}

/// Measures non-IID-ness of a partition: the mean total-variation distance
/// between each user's label distribution and the global one. 0 = IID.
///
/// # Panics
///
/// Panics on non-classification examples.
pub fn label_divergence(parts: &[Vec<Example>]) -> f64 {
    let mut classes = 0usize;
    for p in parts {
        for ex in p {
            match ex.label() {
                Label::Class(c) => classes = classes.max(c + 1),
                // fl-lint: allow(panic): documented in the `# Panics` section;
                // analysis helper for sim datasets, not control-plane code.
                _ => panic!("label divergence requires classification examples"),
            }
        }
    }
    if classes == 0 {
        return 0.0;
    }
    let mut global = vec![0.0f64; classes];
    let mut total = 0.0f64;
    for p in parts {
        for ex in p {
            if let Label::Class(c) = ex.label() {
                global[c] += 1.0;
                total += 1.0;
            }
        }
    }
    if total == 0.0 {
        return 0.0;
    }
    for g in &mut global {
        *g /= total;
    }
    let mut sum_tv = 0.0f64;
    let mut counted = 0usize;
    for p in parts {
        if p.is_empty() {
            continue;
        }
        let mut local = vec![0.0f64; classes];
        for ex in p {
            if let Label::Class(c) = ex.label() {
                local[c] += 1.0;
            }
        }
        let n = p.len() as f64;
        let tv: f64 = local
            .iter()
            .zip(&global)
            .map(|(l, g)| (l / n - g).abs())
            .sum::<f64>()
            / 2.0;
        sum_tv += tv;
        counted += 1;
    }
    sum_tv / counted.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled_pool(per_class: usize, classes: usize) -> Vec<Example> {
        let mut out = Vec::new();
        for c in 0..classes {
            for _ in 0..per_class {
                out.push(Example::classification(vec![c as f32], c));
            }
        }
        out
    }

    #[test]
    fn iid_partition_balances_sizes() {
        let parts = partition(labeled_pool(100, 4), 10, PartitionStrategy::Iid, 1);
        assert_eq!(parts.len(), 10);
        for p in &parts {
            assert_eq!(p.len(), 40);
        }
    }

    #[test]
    fn iid_partition_has_low_divergence() {
        let parts = partition(labeled_pool(200, 4), 8, PartitionStrategy::Iid, 2);
        assert!(label_divergence(&parts) < 0.1);
    }

    #[test]
    fn label_skew_increases_divergence() {
        let pool = labeled_pool(200, 4);
        let iid = partition(pool.clone(), 8, PartitionStrategy::Iid, 3);
        let skewed = partition(pool, 8, PartitionStrategy::LabelSkew { skew: 0.9 }, 3);
        assert!(label_divergence(&skewed) > label_divergence(&iid) + 0.2);
    }

    #[test]
    fn partition_preserves_examples() {
        let pool = labeled_pool(50, 3);
        let n = pool.len();
        let parts = partition(pool, 7, PartitionStrategy::LabelSkew { skew: 0.5 }, 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), n);
    }

    #[test]
    fn skewed_users_are_dominated_by_their_class() {
        let parts = partition(
            labeled_pool(500, 2),
            4,
            PartitionStrategy::LabelSkew { skew: 0.95 },
            5,
        );
        // User 0's dominant class is 0.
        let user0 = &parts[0];
        let zeros = user0
            .iter()
            .filter(|ex| matches!(ex.label(), Label::Class(0)))
            .count();
        assert!(
            zeros as f64 / user0.len() as f64 > 0.7,
            "user 0 has {zeros}/{} class-0 examples",
            user0.len()
        );
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn rejects_zero_users() {
        let _ = partition(vec![], 0, PartitionStrategy::Iid, 0);
    }
}
