//! The on-device example store (Sec. 3).
//!
//! "The device's first responsibility in on-device learning is to maintain
//! a repository of locally collected data for model training and evaluation.
//! Applications are responsible for making their data available to the FL
//! runtime as an *example store* by implementing an API we provide. […] We
//! recommend that applications limit the total storage footprint of their
//! example stores, and automatically remove old data after a pre-designated
//! expiration time."
//!
//! [`ExampleStore`] is that API; [`InMemoryStore`] is the provided utility
//! implementation with footprint limits and expiration. Timestamps are
//! plain `u64` milliseconds so stores work identically under the simulated
//! clock of `fl-sim` and a wall clock.

use fl_ml::Example;

/// Query issued by the FL runtime against a store, derived from the FL
/// plan's "selection criteria for training data in the example store"
/// (Sec. 7.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ExampleQuery {
    /// Maximum number of examples to return (`None` = all).
    pub limit: Option<usize>,
    /// Only return examples at least this fresh (absolute ms timestamp).
    pub min_timestamp_ms: Option<u64>,
    /// Skip the newest examples to form a held-out set (used by
    /// evaluation tasks, which compute "quality metrics from held out data
    /// that wasn't used for training").
    pub held_out: bool,
    /// Fraction of the store reserved as held-out data (default 0.2).
    pub held_out_fraction: f64,
}

impl Default for ExampleQuery {
    fn default() -> Self {
        ExampleQuery {
            limit: None,
            min_timestamp_ms: None,
            held_out: false,
            held_out_fraction: 0.2,
        }
    }
}

impl ExampleQuery {
    /// Query for all training examples.
    pub fn training() -> Self {
        ExampleQuery::default()
    }

    /// Query for the held-out slice.
    pub fn evaluation() -> Self {
        ExampleQuery {
            held_out: true,
            ..ExampleQuery::default()
        }
    }

    /// Limits the number of returned examples.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }
}

/// The example-store API provided to applications (Sec. 3, Fig. 2).
pub trait ExampleStore {
    /// Appends an example observed at `now_ms`.
    fn append(&mut self, example: Example, now_ms: u64);

    /// Returns examples matching the query. Training queries exclude the
    /// held-out slice; evaluation queries return only it.
    fn query(&self, query: &ExampleQuery) -> Vec<Example>;

    /// Number of stored examples.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes expired or over-budget data given the current time.
    /// Returns how many examples were evicted.
    fn prune(&mut self, now_ms: u64) -> usize;
}

/// Configuration for [`InMemoryStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Maximum total footprint in bytes (oldest evicted first).
    pub max_bytes: usize,
    /// Examples older than this are evicted on [`ExampleStore::prune`].
    pub expiration_ms: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_bytes: 4 << 20,                       // 4 MiB
            expiration_ms: 30 * 24 * 3600 * 1000,     // 30 days
        }
    }
}

/// An in-memory example store with footprint limits and expiration —
/// the reproduction's analogue of the SQLite-backed stores the paper
/// suggests applications use.
#[derive(Debug, Clone, Default)]
pub struct InMemoryStore {
    config: StoreConfig,
    /// (timestamp, example), oldest first.
    entries: Vec<(u64, Example)>,
    bytes: usize,
}

impl InMemoryStore {
    /// Creates a store with the given configuration.
    pub fn new(config: StoreConfig) -> Self {
        InMemoryStore {
            config,
            entries: Vec::new(),
            bytes: 0,
        }
    }

    /// Creates a store and fills it with examples all stamped `now_ms`.
    pub fn with_examples(config: StoreConfig, examples: Vec<Example>, now_ms: u64) -> Self {
        let mut store = InMemoryStore::new(config);
        for ex in examples {
            store.append(ex, now_ms);
        }
        store
    }

    /// Current approximate footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.bytes
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    fn held_out_split(&self, fraction: f64) -> usize {
        let held = (self.entries.len() as f64 * fraction).round() as usize;
        self.entries.len().saturating_sub(held)
    }
}

impl ExampleStore for InMemoryStore {
    fn append(&mut self, example: Example, now_ms: u64) {
        self.bytes += example.approx_bytes();
        self.entries.push((now_ms, example));
        // Enforce the footprint limit immediately, evicting oldest first.
        while self.bytes > self.config.max_bytes && self.entries.len() > 1 {
            let (_, old) = self.entries.remove(0);
            self.bytes -= old.approx_bytes();
        }
    }

    fn query(&self, query: &ExampleQuery) -> Vec<Example> {
        let split = self.held_out_split(query.held_out_fraction);
        let slice: &[(u64, Example)] = if query.held_out {
            &self.entries[split..]
        } else {
            &self.entries[..split]
        };
        let mut out: Vec<Example> = slice
            .iter()
            .filter(|(ts, _)| query.min_timestamp_ms.is_none_or(|min| *ts >= min))
            .map(|(_, ex)| ex.clone())
            .collect();
        if let Some(limit) = query.limit {
            out.truncate(limit);
        }
        out
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn prune(&mut self, now_ms: u64) -> usize {
        let cutoff = now_ms.saturating_sub(self.config.expiration_ms);
        let before = self.entries.len();
        let mut bytes = self.bytes;
        self.entries.retain(|(ts, ex)| {
            let keep = *ts >= cutoff;
            if !keep {
                bytes -= ex.approx_bytes();
            }
            keep
        });
        self.bytes = bytes;
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(n: usize) -> Example {
        Example::classification(vec![0.0; n], 0)
    }

    #[test]
    fn append_and_query_round_trip() {
        let mut s = InMemoryStore::new(StoreConfig::default());
        for i in 0..10 {
            s.append(ex(4), i);
        }
        assert_eq!(s.len(), 10);
        let train = s.query(&ExampleQuery::training());
        let eval = s.query(&ExampleQuery::evaluation());
        assert_eq!(train.len(), 8); // 20% held out
        assert_eq!(eval.len(), 2);
    }

    #[test]
    fn footprint_limit_evicts_oldest() {
        let config = StoreConfig {
            max_bytes: 100,
            ..Default::default()
        };
        let mut s = InMemoryStore::new(config);
        for i in 0..20 {
            s.append(ex(4), i); // 24 bytes each
        }
        assert!(s.footprint_bytes() <= 100);
        assert!(s.len() < 20);
    }

    #[test]
    fn prune_removes_expired() {
        let config = StoreConfig {
            expiration_ms: 1000,
            ..Default::default()
        };
        let mut s = InMemoryStore::new(config);
        s.append(ex(2), 0);
        s.append(ex(2), 500);
        s.append(ex(2), 1500);
        let evicted = s.prune(2000);
        assert_eq!(evicted, 2); // ts 0 and 500 are older than 2000 - 1000
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn prune_tracks_bytes() {
        let config = StoreConfig {
            expiration_ms: 10,
            ..Default::default()
        };
        let mut s = InMemoryStore::new(config);
        s.append(ex(4), 0);
        let b = s.footprint_bytes();
        assert!(b > 0);
        s.prune(1000);
        assert_eq!(s.footprint_bytes(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn min_timestamp_filters() {
        let mut s = InMemoryStore::new(StoreConfig::default());
        for i in 0..10u64 {
            s.append(ex(1), i * 100);
        }
        let q = ExampleQuery {
            min_timestamp_ms: Some(500),
            held_out_fraction: 0.0,
            ..ExampleQuery::training()
        };
        assert_eq!(s.query(&q).len(), 5);
    }

    #[test]
    fn limit_truncates() {
        let mut s = InMemoryStore::new(StoreConfig::default());
        for i in 0..10 {
            s.append(ex(1), i);
        }
        assert_eq!(s.query(&ExampleQuery::training().with_limit(3)).len(), 3);
    }

    #[test]
    fn held_out_and_training_are_disjoint_and_cover() {
        let mut s = InMemoryStore::new(StoreConfig::default());
        for i in 0..25 {
            s.append(Example::classification(vec![i as f32], 0), i as u64);
        }
        let train = s.query(&ExampleQuery::training());
        let eval = s.query(&ExampleQuery::evaluation());
        assert_eq!(train.len() + eval.len(), 25);
        for t in &train {
            assert!(!eval.contains(t));
        }
    }
}
