//! Non-IID Gaussian-mixture classification data.
//!
//! Each class is an isotropic Gaussian blob; each simulated user holds data
//! drawn with user-specific label skew, mirroring how on-device data
//! distributions correlate with the user (the paper notes "device
//! availability … correlates with the local data distribution in complex
//! ways"). This is the workload behind the quickstart example and the
//! clients-per-round convergence experiment (EXPERIMENTS.md, `KCLIENTS`).

use fl_ml::rng;
use fl_ml::Example;
use rand::RngExt;

/// Configuration for the Gaussian-mixture generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassificationConfig {
    /// Feature dimension.
    pub dim: usize,
    /// Number of classes (one Gaussian blob per class).
    pub classes: usize,
    /// Number of simulated users.
    pub users: usize,
    /// Examples per user (mean; actual counts vary ±50%).
    pub examples_per_user: usize,
    /// Distance of class centers from the origin.
    pub separation: f32,
    /// Within-class standard deviation.
    pub noise: f32,
    /// Probability a user's example comes from its dominant class.
    pub label_skew: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ClassificationConfig {
    fn default() -> Self {
        ClassificationConfig {
            dim: 16,
            classes: 4,
            users: 100,
            examples_per_user: 50,
            separation: 2.0,
            noise: 1.0,
            label_skew: 0.5,
            seed: 42,
        }
    }
}

/// A generated federated classification dataset.
#[derive(Debug, Clone)]
pub struct FederatedClassification {
    /// Per-user example sets (index = user id).
    pub users: Vec<Vec<Example>>,
    /// A held-out IID test set drawn from the global mixture.
    pub test_set: Vec<Example>,
    /// The configuration that produced the data.
    pub config: ClassificationConfig,
    /// Class centers (row-major `classes × dim`), for diagnostics.
    pub centers: Vec<f32>,
}

impl FederatedClassification {
    /// Total number of training examples across users.
    pub fn total_examples(&self) -> usize {
        self.users.iter().map(Vec::len).sum()
    }

    /// All training examples flattened (for centralized baselines).
    pub fn centralized(&self) -> Vec<Example> {
        self.users.iter().flatten().cloned().collect()
    }
}

/// Generates a federated classification dataset.
///
/// # Panics
///
/// Panics if any count in the configuration is zero.
pub fn generate(config: &ClassificationConfig) -> FederatedClassification {
    assert!(config.dim > 0 && config.classes >= 2 && config.users > 0);
    assert!(config.examples_per_user > 0);
    let mut master = rng::seeded(config.seed);

    // Random unit-ish directions for class centers, scaled by separation.
    let mut centers = vec![0.0f32; config.classes * config.dim];
    for c in 0..config.classes {
        let row = &mut centers[c * config.dim..(c + 1) * config.dim];
        let mut norm = 0.0f32;
        for v in row.iter_mut() {
            *v = rng::normal(&mut master) as f32;
            norm += *v * *v;
        }
        let norm = norm.sqrt().max(1e-6);
        for v in row.iter_mut() {
            *v *= config.separation / norm;
        }
    }

    let sample = |class: usize, rng: &mut rand::rngs::StdRng| -> Example {
        let row = &centers[class * config.dim..(class + 1) * config.dim];
        let features = row
            .iter()
            .map(|&c| c + rng::normal_with_std(rng, f64::from(config.noise)) as f32)
            .collect();
        Example::classification(features, class)
    };

    let mut users = Vec::with_capacity(config.users);
    for u in 0..config.users {
        let mut rng = rng::seeded_stream(config.seed, u as u64 + 1);
        let dominant = u % config.classes;
        // Heterogeneous dataset sizes: 50%–150% of the mean.
        let count = ((config.examples_per_user as f64)
            * (0.5 + rng.random::<f64>()))
        .round()
        .max(1.0) as usize;
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            let class = if rng.random::<f64>() < config.label_skew {
                dominant
            } else {
                rng.random_range(0..config.classes)
            };
            data.push(sample(class, &mut rng));
        }
        users.push(data);
    }

    // IID test set: uniform over classes.
    let mut test_rng = rng::seeded_stream(config.seed, u64::MAX);
    let test_set = (0..1000)
        .map(|i| sample(i % config.classes, &mut test_rng))
        .collect();

    FederatedClassification {
        users,
        test_set,
        config: *config,
        centers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::label_divergence;

    #[test]
    fn generates_requested_structure() {
        let data = generate(&ClassificationConfig::default());
        assert_eq!(data.users.len(), 100);
        assert_eq!(data.test_set.len(), 1000);
        assert!(data.total_examples() > 100 * 25);
        for user in &data.users {
            for ex in user {
                if let Example::Classification { features, label } = ex {
                    assert_eq!(features.len(), 16);
                    assert!(*label < 4);
                } else {
                    panic!("wrong example kind");
                }
            }
        }
    }

    #[test]
    fn is_deterministic() {
        let a = generate(&ClassificationConfig::default());
        let b = generate(&ClassificationConfig::default());
        assert_eq!(a.users[0], b.users[0]);
        assert_eq!(a.test_set, b.test_set);
    }

    #[test]
    fn skew_controls_divergence() {
        let low = generate(&ClassificationConfig {
            label_skew: 0.0,
            ..Default::default()
        });
        let high = generate(&ClassificationConfig {
            label_skew: 0.9,
            ..Default::default()
        });
        assert!(
            label_divergence(&high.users) > label_divergence(&low.users) + 0.2,
            "high {} low {}",
            label_divergence(&high.users),
            label_divergence(&low.users)
        );
    }

    #[test]
    fn separable_data_is_learnable() {
        use fl_ml::metrics::top1_accuracy;
        use fl_ml::models::logistic::LogisticRegression;
        use fl_ml::optim::{Optimizer, Sgd};
        use fl_ml::Model;
        let data = generate(&ClassificationConfig {
            users: 10,
            separation: 4.0,
            noise: 0.5,
            ..Default::default()
        });
        let train = data.centralized();
        let mut model = LogisticRegression::new(16, 4, 0);
        let mut opt = Sgd::new(0.3);
        for _ in 0..60 {
            for chunk in train.chunks(32) {
                let (_, g) = model.loss_and_grad(chunk).unwrap();
                opt.step(model.params_mut(), &g);
            }
        }
        let acc = top1_accuracy(&model, &data.test_set).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn user_sizes_are_heterogeneous() {
        let data = generate(&ClassificationConfig::default());
        let sizes: Vec<usize> = data.users.iter().map(Vec::len).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max > min, "expected heterogeneous sizes, got uniform {min}");
    }
}
