//! Topic-clustered Markov text for next-word prediction (Sec. 8).
//!
//! The generator has a *cluster-level* ground truth: every token belongs to
//! one of `clusters` topics, and the distribution of the next token depends
//! on the cluster of the immediately preceding token, not its identity.
//! Within the target cluster, tokens are drawn from a Zipf distribution.
//!
//! That structure is what gives the neural CBOW model its paper-shaped edge
//! over the n-gram baseline: the n-gram must observe each exact `(w₁,w₂)`
//! context to predict well, while an embedding model can generalize across
//! tokens of the same cluster — mirroring why the Gboard RNN beats the
//! n-gram (top-1 recall 13.0% → 16.4%) on sparse long-tail contexts.
//!
//! Users are non-IID: each user has a preferred topic mixture. A *proxy
//! corpus* (Sec. 7.1) is produced by re-sampling with a perturbed topic
//! prior — "similar in shape […] but drawn from a different distribution".

use fl_ml::rng;
use fl_ml::Example;
use rand::rngs::StdRng;
use rand::RngExt;

/// Configuration for the text generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of topic clusters.
    pub clusters: usize,
    /// Probability the next token follows the cluster transition rule
    /// (the remainder is uniform noise).
    pub coherence: f64,
    /// Number of users.
    pub users: usize,
    /// Sentences per user (mean; varies ±50%).
    pub sentences_per_user: usize,
    /// Tokens per sentence.
    pub sentence_len: usize,
    /// Topics each user prefers.
    pub topics_per_user: usize,
    /// Zipf exponent for within-cluster token frequencies.
    pub zipf_exponent: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TextConfig {
    fn default() -> Self {
        TextConfig {
            vocab: 500,
            clusters: 10,
            coherence: 0.85,
            users: 100,
            sentences_per_user: 30,
            sentence_len: 12,
            topics_per_user: 3,
            zipf_exponent: 1.1,
            seed: 7,
        }
    }
}

/// The generated federated text dataset.
#[derive(Debug, Clone)]
pub struct FederatedText {
    /// Per-user next-token examples (context window of 2).
    pub users: Vec<Vec<Example>>,
    /// Held-out IID test examples drawn from the global distribution.
    pub test_set: Vec<Example>,
    /// A distribution-shifted proxy corpus (centralized, Sec. 7.1).
    pub proxy_corpus: Vec<Example>,
    /// The configuration that produced the data.
    pub config: TextConfig,
}

impl FederatedText {
    /// Total number of training examples across users.
    pub fn total_examples(&self) -> usize {
        self.users.iter().map(Vec::len).sum()
    }

    /// All on-device examples flattened (for the centralized comparison of
    /// Sec. 8: "matches the performance of a server-trained" model).
    pub fn centralized(&self) -> Vec<Example> {
        self.users.iter().flatten().cloned().collect()
    }
}

/// The ground-truth language source: cluster transition table + Zipf
/// within-cluster token distributions.
#[derive(Debug, Clone)]
struct Source {
    config: TextConfig,
    /// For each cluster of the preceding token, the favored next cluster.
    transition: Vec<usize>,
    /// Cumulative Zipf weights for within-cluster rank sampling.
    zipf_cdf: Vec<f64>,
}

impl Source {
    fn new(config: &TextConfig) -> Self {
        let mut rng = rng::seeded_stream(config.seed, 0xC0FFEE);
        // A derangement-ish permutation keeps transitions informative
        // (every cluster maps somewhere specific).
        let transition = (0..config.clusters)
            .map(|_| rng.random_range(0..config.clusters))
            .collect();
        let per_cluster = config.vocab / config.clusters;
        let mut zipf_cdf = Vec::with_capacity(per_cluster.max(1));
        let mut acc = 0.0;
        for rank in 0..per_cluster.max(1) {
            acc += 1.0 / ((rank + 1) as f64).powf(config.zipf_exponent);
            zipf_cdf.push(acc);
        }
        Source {
            config: *config,
            transition,
            zipf_cdf,
        }
    }

    fn cluster_of(&self, token: u32) -> usize {
        token as usize % self.config.clusters
    }

    /// Samples a token from a cluster (Zipf over the cluster's members).
    fn token_in_cluster(&self, cluster: usize, rng: &mut StdRng) -> u32 {
        let total = *self.zipf_cdf.last().unwrap();
        let target = rng.random::<f64>() * total;
        let rank = self
            .zipf_cdf
            .iter()
            .position(|&c| c >= target)
            .unwrap_or(self.zipf_cdf.len() - 1);
        // Token ids for a cluster are {cluster, cluster + C, cluster + 2C, …}.
        (cluster + rank * self.config.clusters) as u32 % self.config.vocab as u32
    }

    /// Samples the next token given the preceding tokens (first-order in
    /// the cluster space: the last token's cluster determines the favored
    /// next cluster).
    fn next(&self, _w1: u32, w2: u32, rng: &mut StdRng) -> u32 {
        if rng.random::<f64>() < self.config.coherence {
            let c = self.transition[self.cluster_of(w2)];
            self.token_in_cluster(c, rng)
        } else {
            rng.random_range(0..self.config.vocab as u32)
        }
    }

    /// Generates one sentence starting from the given topic set, returning
    /// next-token examples with a context window of 2.
    fn sentence(&self, topics: &[usize], rng: &mut StdRng) -> Vec<Example> {
        let start_topic = topics[rng.random_range(0..topics.len())];
        let mut w1 = self.token_in_cluster(start_topic, rng);
        let mut w2 = self.token_in_cluster(self.cluster_of(w1), rng);
        let mut out = Vec::with_capacity(self.config.sentence_len);
        for _ in 0..self.config.sentence_len {
            let next = self.next(w1, w2, rng);
            out.push(Example::next_token(vec![w1, w2], next));
            w1 = w2;
            w2 = next;
        }
        out
    }
}

/// Generates the federated text dataset.
///
/// # Panics
///
/// Panics on degenerate configurations (zero counts, more topics per user
/// than clusters, vocabulary smaller than cluster count).
pub fn generate(config: &TextConfig) -> FederatedText {
    assert!(config.vocab >= config.clusters && config.clusters > 0);
    assert!(config.topics_per_user > 0 && config.topics_per_user <= config.clusters);
    assert!(config.users > 0 && config.sentences_per_user > 0 && config.sentence_len > 0);
    let source = Source::new(config);

    let mut users = Vec::with_capacity(config.users);
    for u in 0..config.users {
        let mut rng = rng::seeded_stream(config.seed, 1 + u as u64);
        // Preferred topics: a random subset.
        let topics = rng::reservoir_sample(&mut rng, config.clusters, config.topics_per_user);
        let count = ((config.sentences_per_user as f64) * (0.5 + rng.random::<f64>()))
            .round()
            .max(1.0) as usize;
        let mut data = Vec::new();
        for _ in 0..count {
            data.extend(source.sentence(&topics, &mut rng));
        }
        users.push(data);
    }

    // Global test set: all topics equally likely.
    let all_topics: Vec<usize> = (0..config.clusters).collect();
    let mut test_rng = rng::seeded_stream(config.seed, 0xDEAD);
    let mut test_set = Vec::new();
    while test_set.len() < 2000 {
        test_set.extend(source.sentence(&all_topics, &mut test_rng));
    }
    test_set.truncate(2000);

    // Proxy corpus (Sec. 7.1): "similar in shape […] but drawn from a
    // different distribution". Same vocabulary and underlying structure,
    // but much noisier (lower coherence — think Wikipedia text as proxy
    // for keyboard text) and with a narrowed topic prior.
    let proxy_source = Source::new(&TextConfig {
        coherence: config.coherence * 0.55,
        ..*config
    });
    let proxy_topics: Vec<usize> = vec![0, 1 % config.clusters];
    let mut proxy_rng = rng::seeded_stream(config.seed, 0xBEEF);
    let mut proxy_corpus = Vec::new();
    while proxy_corpus.len() < 4000 {
        proxy_corpus.extend(proxy_source.sentence(&proxy_topics, &mut proxy_rng));
    }
    proxy_corpus.truncate(4000);

    FederatedText {
        users,
        test_set,
        proxy_corpus,
        config: *config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_examples() {
        let data = generate(&TextConfig::default());
        assert_eq!(data.users.len(), 100);
        assert_eq!(data.test_set.len(), 2000);
        assert_eq!(data.proxy_corpus.len(), 4000);
        for ex in data.users.iter().flatten().chain(&data.test_set) {
            if let Example::NextToken { context, next } = ex {
                assert_eq!(context.len(), 2);
                assert!(context.iter().all(|&t| t < 500));
                assert!(*next < 500);
            } else {
                panic!("wrong example kind");
            }
        }
    }

    #[test]
    fn is_deterministic() {
        let a = generate(&TextConfig::default());
        let b = generate(&TextConfig::default());
        assert_eq!(a.users[3], b.users[3]);
        assert_eq!(a.test_set, b.test_set);
    }

    #[test]
    fn coherent_text_is_predictable_by_ngram() {
        use fl_ml::models::ngram::NgramLm;
        let config = TextConfig {
            users: 50,
            coherence: 0.95,
            ..Default::default()
        };
        let data = generate(&config);
        let mut lm = NgramLm::with_default_lambdas(config.vocab);
        lm.observe_all(data.centralized().iter()).unwrap();
        let recall = lm.top1_recall(&data.test_set).unwrap();
        // Far above the 1/500 random baseline.
        assert!(recall > 0.05, "recall {recall}");
    }

    #[test]
    fn incoherent_text_is_not_predictable() {
        use fl_ml::models::ngram::NgramLm;
        let config = TextConfig {
            users: 20,
            coherence: 0.0,
            ..Default::default()
        };
        let data = generate(&config);
        let mut lm = NgramLm::with_default_lambdas(config.vocab);
        lm.observe_all(data.centralized().iter()).unwrap();
        let recall = lm.top1_recall(&data.test_set).unwrap();
        assert!(recall < 0.05, "recall {recall}");
    }

    #[test]
    fn proxy_corpus_differs_from_device_distribution() {
        let data = generate(&TextConfig::default());
        // Compare cluster histograms of proxy vs test set.
        let hist = |exs: &[Example]| {
            let mut h = vec![0.0f64; 10];
            for ex in exs {
                if let Example::NextToken { next, .. } = ex {
                    h[*next as usize % 10] += 1.0;
                }
            }
            let total: f64 = h.iter().sum();
            h.iter().map(|v| v / total).collect::<Vec<_>>()
        };
        let hp = hist(&data.proxy_corpus);
        let ht = hist(&data.test_set);
        let tv: f64 = hp.iter().zip(&ht).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
        assert!(tv > 0.1, "total variation {tv}");
    }

    #[test]
    fn users_have_distinct_topic_profiles() {
        let data = generate(&TextConfig::default());
        let profile = |exs: &[Example]| {
            let mut h = vec![0usize; 10];
            for ex in exs {
                if let Example::NextToken { context, .. } = ex {
                    h[context[0] as usize % 10] += 1;
                }
            }
            h
        };
        let p0 = profile(&data.users[0]);
        let p1 = profile(&data.users[1]);
        assert_ne!(p0, p1);
    }
}
