//! Seeded synthetic data generators.

pub mod classification;
pub mod text;
