//! `fl-data` — synthetic federated datasets and on-device example stores.
//!
//! The paper's workloads run on privacy-sensitive user data that never
//! leaves the device (Gboard typing data, on-device interaction logs). This
//! crate provides the reproduction's synthetic equivalents:
//!
//! * [`store`] — the *example store* abstraction of Sec. 3: the on-device
//!   repository applications fill with training data, with storage-footprint
//!   limits and automatic expiration of old examples;
//! * [`synth::classification`] — non-IID Gaussian-mixture classification
//!   data, partitioned per user with label skew;
//! * [`synth::text`] — a Zipfian, topic-clustered Markov text source that
//!   yields per-user next-word-prediction data (the Sec. 8 workload) plus a
//!   distribution-shifted *proxy corpus* (Sec. 7.1: "text from Wikipedia may
//!   be viewed as proxy data for text typed on a mobile keyboard");
//! * [`partition`] — utilities for splitting centralized datasets across
//!   simulated users, IID or skewed.
//!
//! All generators are seeded and deterministic.

pub mod partition;
pub mod store;
pub mod synth;

pub use store::{ExampleStore, InMemoryStore, StoreConfig};
