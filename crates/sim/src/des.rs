//! The discrete-event engine: a virtual clock plus an ordered event queue.

use std::collections::BinaryHeap;

/// An event scheduled at a virtual time. Ties break by insertion order,
/// making runs fully deterministic.
struct Scheduled<E> {
    at_ms: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ms == other.at_ms && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, seq): BinaryHeap is max, so reverse.
        other
            .at_ms
            .cmp(&self.at_ms)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue with a virtual clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now_ms: u64,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now_ms: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// The current virtual time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Schedules an event at an absolute virtual time. Events scheduled in
    /// the past fire "now" (time never goes backwards).
    pub fn schedule_at(&mut self, at_ms: u64, event: E) {
        self.seq += 1;
        self.heap.push(Scheduled {
            at_ms: at_ms.max(self.now_ms),
            seq: self.seq,
            event,
        });
    }

    /// Schedules an event after a delay.
    pub fn schedule_in(&mut self, delay_ms: u64, event: E) {
        self.schedule_at(self.now_ms + delay_ms, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn next(&mut self) -> Option<(u64, E)> {
        let s = self.heap.pop()?;
        self.now_ms = s.at_ms;
        self.processed += 1;
        Some((s.at_ms, s.event))
    }

    /// Pops the next event only if it is due at or before `horizon_ms`.
    pub fn next_before(&mut self, horizon_ms: u64) -> Option<(u64, E)> {
        if self.heap.peek().is_some_and(|s| s.at_ms <= horizon_ms) {
            self.next()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(10, 1);
        q.schedule_at(10, 2);
        q.schedule_at(10, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        let _ = q.next();
        assert_eq!(q.now_ms(), 100);
        // Scheduling in the past clamps to now.
        q.schedule_at(50, ());
        let (t, _) = q.next().unwrap();
        assert_eq!(t, 100);
        assert_eq!(q.now_ms(), 100);
    }

    #[test]
    fn next_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "x");
        assert!(q.next_before(99).is_none());
        assert_eq!(q.next_before(100).unwrap().1, "x");
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        let _ = q.next();
        q.schedule_in(50, "second");
        assert_eq!(q.next().unwrap().0, 150);
        assert_eq!(q.processed(), 2);
    }
}
