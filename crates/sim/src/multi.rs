//! Multi-population (multi-tenant) scenarios: several FL populations
//! sharing one device fleet and one Selector layer.
//!
//! The paper's multi-tenancy story has two halves. On the device
//! (Sec. 3): "Our implementation provides a multi-tenant architecture,
//! supporting training of multiple FL populations in the same app" while
//! "we avoid running training sessions on-device in parallel because of
//! their high resource consumption" — modeled here by the real
//! [`DeviceTenancy`] arbitrating a single active session across
//! per-population lanes. On the server (Sec. 2.1/4.2): each population
//! is a separate learning problem with its own Coordinator and rounds,
//! multiplexed over a shared Selector layer that holds each population
//! against its own quota and admits against a shared fleet-wide budget
//! with per-population fair-share reservations
//! ([`GlobalAdmissionBudget::try_admit_for`]).
//!
//! The scenario this module exists to audit is *cross-population
//! fairness under asymmetric load*: one population takes a flash crowd
//! (a feature launch for one learning problem) while the others tick
//! along at their steady cadence. The invariants:
//!
//! * every population keeps committing rounds — a storm in one tenant
//!   must not starve another's accepts or commits;
//! * per-population accept/shed counters sum exactly to the aggregate
//!   (the multi-tenant bookkeeping conserves check-ins);
//! * the held-connection queue stays under its configured bound;
//! * every round that starts reaches a terminal state, in every
//!   population — no wedged rounds anywhere in the tree;
//! * reports render byte-identically per seed (the chaos-harness
//!   idiom), so a failing seed is a replayable bug report.
//!
//! With a single population and no disturbance the harness degenerates
//! to the single-tenant shape: the per-population series *are* the
//! aggregate (asserted by the conservation invariant), mirroring how the
//! live `SelectorActor` keeps n=1 routing byte-identical.

use crate::des::EventQueue;
use fl_analytics::overload::{OverloadMetrics, OverloadMonitorConfig};
use fl_core::plan::{CodecSpec, ModelSpec};
use fl_core::round::{RoundConfig, RoundOutcome};
use fl_core::{DeviceId, FlCheckpoint, FlPlan, PopulationName, RetryPolicy, RoundId};
use fl_device::conditions::DeviceConditions;
use fl_device::tenancy::DeviceTenancy;
use fl_ml::rng;
use fl_server::pace::PaceSteering;
use fl_server::round::{CheckinResponse, Phase, RoundEvent, RoundState};
use fl_server::selector::{CheckinDecision, Selector};
use fl_server::shedding::{AdmissionConfig, GlobalAdmissionBudget, GlobalAdmissionConfig};
use fl_server::topology::{SelectorSpec, TopologyBlueprint};
use fl_server::wire::{ChannelTransport, Transport, WireMessage, WireStats};
use rand::Rng;

/// A flash crowd aimed at one population: `newcomers` devices that know
/// only this population appear at `at_ms` and check in unpaced within
/// one pace window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashCrowd {
    /// When the crowd arrives.
    pub at_ms: u64,
    /// How many single-population newcomer devices it brings.
    pub newcomers: u64,
}

/// One population (one learning problem) sharing the fleet.
#[derive(Debug, Clone)]
pub struct PopulationSpec {
    /// Wire-visible population name.
    pub name: &'static str,
    /// Device-side job cadence for this population's lane (ms).
    pub period_ms: u64,
    /// Round configuration of this population's Coordinator.
    pub round: RoundConfig,
    /// Per-Selector held-connection quota for this population.
    pub quota: usize,
    /// Baseline device `i` registers this population iff
    /// `i % membership_stride == 0` (stride 1 = the whole fleet).
    pub membership_stride: u64,
    /// The disturbance, if this is the stormy tenant.
    pub flash: Option<FlashCrowd>,
}

impl PopulationSpec {
    fn population(&self) -> PopulationName {
        PopulationName::new(self.name)
    }
}

/// Multi-tenant simulation parameters.
#[derive(Debug, Clone)]
pub struct MultiTenantConfig {
    /// Baseline fleet size (newcomers from flash crowds come on top).
    pub devices: u64,
    /// Simulated duration (ms).
    pub horizon_ms: u64,
    /// Pace window = metric bucket width (ms).
    pub window_ms: u64,
    /// How often each population's Coordinator asks for forwards.
    pub forward_period_ms: u64,
    /// How many Selectors the load fans across (device id modulo).
    pub selectors: u64,
    /// Per-Selector local admission control (population-blind capacity
    /// protection; the per-population fairness lives in the quotas and
    /// the global budget).
    pub admission: AdmissionConfig,
    /// Shared fleet-wide budget with per-population fair-share
    /// reservations; `None` leaves admission local + quota only.
    pub global_admission: Option<GlobalAdmissionConfig>,
    /// Selector staleness TTL for held connections (ms).
    pub stale_after_ms: u64,
    /// Device retry discipline (per population lane).
    pub retry: RetryPolicy,
    /// Master seed.
    pub seed: u64,
    /// The tenants.
    pub populations: Vec<PopulationSpec>,
}

impl MultiTenantConfig {
    /// The acceptance scenario: three tenants on a 4 000-device fleet —
    /// a fleet-wide steady population, a half-fleet population that takes
    /// a 12 000-newcomer flash crowd at window 10, and a quarter-fleet
    /// auxiliary population — under a shared fair-share budget. The
    /// storm must shed/defer in its own lane while the other two keep
    /// committing.
    pub fn flash_vs_steady(seed: u64) -> Self {
        let round = |goal: usize| RoundConfig {
            goal_count: goal,
            overselection: 1.3,
            min_goal_fraction: 0.6,
            selection_timeout_ms: 60_000,
            report_window_ms: 60_000,
            device_cap_ms: 60_000,
        };
        MultiTenantConfig {
            devices: 4_000,
            horizon_ms: 30 * 60_000,
            window_ms: 60_000,
            forward_period_ms: 15_000,
            selectors: 1,
            admission: AdmissionConfig {
                accepts_per_sec: 200.0,
                burst: 400,
                max_inflight: 800,
            },
            // Fair share = 540 / 3 = 180 admits per window per tenant:
            // above the steady tenant's ~133/window demand (so fairness
            // costs it nothing) and far below what the storm wants.
            global_admission: Some(GlobalAdmissionConfig {
                window_ms: 60_000,
                max_admits_per_window: 540,
            }),
            stale_after_ms: 180_000,
            retry: RetryPolicy {
                base_delay_ms: 30_000,
                multiplier: 2.0,
                max_delay_ms: 600_000,
                jitter_frac: 0.5,
                budget_per_window: 30,
                budget_window_ms: 600_000,
            },
            seed,
            populations: vec![
                PopulationSpec {
                    name: "multi/steady",
                    period_ms: 1_800_000,
                    round: round(100),
                    quota: 260,
                    membership_stride: 1,
                    flash: None,
                },
                PopulationSpec {
                    name: "multi/flash",
                    period_ms: 1_800_000,
                    round: round(50),
                    // A quota well above the storm's fair share, so the
                    // *budget* is what visibly caps the crowd.
                    quota: 400,
                    membership_stride: 2,
                    flash: Some(FlashCrowd {
                        at_ms: 600_000,
                        newcomers: 12_000,
                    }),
                },
                PopulationSpec {
                    name: "multi/aux",
                    period_ms: 1_800_000,
                    round: round(25),
                    quota: 70,
                    membership_stride: 4,
                    flash: None,
                },
            ],
        }
    }

    /// The same tenants with every disturbance removed — the fairness
    /// baseline a stormy run is compared against.
    pub fn without_flash(mut self) -> Self {
        for spec in &mut self.populations {
            spec.flash = None;
        }
        self
    }

    /// A single steady population — the n=1 degenerate case whose
    /// per-population series must equal the aggregate exactly.
    pub fn single(seed: u64) -> Self {
        let mut config = MultiTenantConfig::flash_vs_steady(seed);
        config.populations.truncate(1);
        config
    }

    /// Total device slots including every flash crowd's newcomers.
    fn total_devices(&self) -> u64 {
        self.devices
            + self
                .populations
                .iter()
                .filter_map(|p| p.flash.map(|f| f.newcomers))
                .sum::<u64>()
    }
}

/// One population's share of a [`MultiTenantReport`].
#[derive(Debug, Clone)]
pub struct PopulationOutcome {
    /// Population name.
    pub name: &'static str,
    /// Check-ins offered under this population (accepted + rejected).
    pub offered: u64,
    /// Check-ins accepted into this population's held set.
    pub accepted: u64,
    /// Check-ins shed (local admission + global budget) while claiming
    /// this population.
    pub shed: u64,
    /// Rejections that were quota/duplicate pacing, not shedding.
    pub rejected_other: u64,
    /// Admits charged to this population on the shared global budget.
    pub budget_admits: u64,
    /// Sheds charged to this population by the shared global budget.
    pub budget_sheds: u64,
    /// Device-side retries recorded on this population's lanes.
    pub retries: u64,
    /// Lanes that exhausted a retry-budget window at least once.
    pub budget_exhaustions: u64,
    /// Rounds begun by this population's Coordinator.
    pub rounds_started: u64,
    /// Rounds that reached a terminal state.
    pub rounds_terminal: u64,
    /// Rounds committed.
    pub committed: u64,
    /// Rounds abandoned (cleanly).
    pub abandoned: u64,
}

/// Outcome of one multi-tenant run: per-population outcomes in spec
/// order, fleet-level counters, and the fairness/soundness audit.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// The master seed.
    pub seed: u64,
    /// Per-population outcomes, in spec order.
    pub populations: Vec<PopulationOutcome>,
    /// Aggregate accepted check-ins across every population.
    pub accepted_total: u64,
    /// Aggregate rejected check-ins across every population.
    pub rejected_total: u64,
    /// Times a due population lost the on-device single-session
    /// arbitration and was deferred through its own backoff.
    pub arbitration_losses: u64,
    /// Deepest the shared held-connection queue ever got.
    pub max_queue_depth: usize,
    /// The configured bound it must stay under.
    pub queue_bound: usize,
    /// Bytes-on-wire counters from the device end: every check-in and
    /// report crosses the in-memory wire as a framed v3 message carrying
    /// its population.
    pub wire: WireStats,
    /// The per-population accept/shed/retry dashboard panel
    /// ([`OverloadMetrics::render_population_panel`]), captured at the
    /// horizon — deterministic per seed like everything else here.
    pub telemetry_panel: String,
    /// Invariant violations; empty on a clean run.
    pub violations: Vec<String>,
}

impl MultiTenantReport {
    /// Whether every multi-tenant invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The outcome of the named population, if it ran.
    pub fn outcome(&self, name: &str) -> Option<&PopulationOutcome> {
        self.populations.iter().find(|p| p.name == name)
    }

    /// Canonical text form — byte-identical across replays of one seed.
    pub fn render(&self) -> String {
        let mut out = format!(
            "seed={} populations={}\n\
             accepted_total={} rejected_total={} arbitration_losses={}\n\
             max_queue_depth={} queue_bound={}\n\
             wire up_frames={} up_bytes={} down_frames={} down_bytes={}\n",
            self.seed,
            self.populations.len(),
            self.accepted_total,
            self.rejected_total,
            self.arbitration_losses,
            self.max_queue_depth,
            self.queue_bound,
            self.wire.frames_sent,
            self.wire.bytes_sent,
            self.wire.frames_received,
            self.wire.bytes_received,
        );
        for p in &self.populations {
            out.push_str(&format!(
                "pop {} offered={} accepted={} shed={} rejected_other={} \
                 budget_admits={} budget_sheds={} retries={} exhaustions={} \
                 rounds={}:{} committed={} abandoned={}\n",
                p.name,
                p.offered,
                p.accepted,
                p.shed,
                p.rejected_other,
                p.budget_admits,
                p.budget_sheds,
                p.retries,
                p.budget_exhaustions,
                p.rounds_started,
                p.rounds_terminal,
                p.committed,
                p.abandoned,
            ));
        }
        out.push_str(&self.telemetry_panel);
        out.push_str(&format!("violations={}\n", self.violations.len()));
        for v in &self.violations {
            out.push_str("violation: ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// The fixed seed set swept by `scripts/check.sh` and the tier-1
/// multi-tenant tests.
pub fn default_seeds() -> Vec<u64> {
    vec![7, 19, 41]
}

/// Runs [`run_multi_tenant`] for one config constructor over a seed set.
pub fn sweep(
    seeds: &[u64],
    make: impl Fn(u64) -> MultiTenantConfig,
) -> Vec<MultiTenantReport> {
    seeds.iter().map(|&s| run_multi_tenant(&make(s))).collect()
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A device's wake chain fires: resolve a stale held slot, then try
    /// to start whichever population's session the tenancy arbitrates.
    Wake { device: u64, gen: u32 },
    /// Every population's Coordinator asks its Selector slice for
    /// forwards.
    Forward,
    /// A selected device finishes training + upload for `pop`.
    Report { device: u64, pop: usize, round_seq: u64 },
    /// Round phase timeout check for `pop`.
    RoundTick { pop: usize, round_seq: u64 },
    /// Per-window staleness eviction + queue-depth sampling.
    WindowSample,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DevPhase {
    /// Not connected; the wake chain is pending.
    Idle,
    /// Held in a Selector's queue for population `pop`.
    Held { pop: usize },
    /// Forwarded into `pop`'s active round; awaiting report.
    InRound { pop: usize },
}

struct Device {
    tenancy: DeviceTenancy,
    phase: DevPhase,
    /// Wake-chain generation: a `Wake` whose `gen` does not match is
    /// stale (superseded) and dropped — one live chain per device.
    gen: u32,
}

struct PopRound {
    seq: u64,
    state: RoundState,
    /// Rounds open at pace-window boundaries (the rendezvous cadence).
    open_at_ms: u64,
    /// Devices forwarded before Configuration fired.
    pending: Vec<u64>,
}

struct PopCounters {
    rounds_started: u64,
    rounds_terminal: u64,
    committed: u64,
    abandoned: u64,
}

/// The earliest any of the device's lanes comes due, clamped into the
/// future so a wake chain always advances.
fn next_wake_ms(tenancy: &DeviceTenancy, now_ms: u64) -> u64 {
    tenancy
        .populations()
        .iter()
        .filter_map(|p| tenancy.lane(p).map(|l| l.scheduler.next_due_ms()))
        .min()
        .unwrap_or(u64::MAX)
        .max(now_ms + 1)
}

/// Drives one seeded multi-population scenario against the real
/// Selector/round/tenancy stack and audits the fairness invariants. See
/// the module docs.
pub fn run_multi_tenant(config: &MultiTenantConfig) -> MultiTenantReport {
    assert!(
        !config.populations.is_empty(),
        "a multi-tenant run needs at least one population"
    );
    let npop = config.populations.len();
    let names: Vec<PopulationName> =
        config.populations.iter().map(|p| p.population()).collect();
    let targets: Vec<usize> = config
        .populations
        .iter()
        .map(|p| p.round.selection_target().max(1))
        .collect();
    let total_target: u64 = targets.iter().map(|&t| t as u64).sum();
    let total = config.total_devices();

    // The Selector layer comes from the same blueprint the live
    // multi-tenant topology builds from; per-population quotas are set
    // the way `spawn_multi_topology` sets them through `with_route`.
    let n = config.selectors.max(1);
    let pace = PaceSteering::new(config.window_ms, total_target.max(1));
    let mut blueprint = TopologyBlueprint::new(
        (0..n)
            .map(|i| {
                SelectorSpec::new(
                    pace,
                    config.devices / n,
                    config.seed ^ (0x7E2 + i),
                    config.admission.max_inflight,
                )
                .with_admission(config.admission)
                .with_staleness(config.stale_after_ms)
            })
            .collect(),
    );
    if let Some(global) = config.global_admission {
        blueprint = blueprint.with_global_admission(global);
    }
    let budget: Option<GlobalAdmissionBudget> = blueprint.build_global_budget();
    let mut selectors: Vec<Selector> = blueprint.build_selectors(budget.as_ref());
    for selector in &mut selectors {
        for (spec, name) in config.populations.iter().zip(&names) {
            selector.set_population_quota(name.clone(), spec.quota);
        }
    }
    if let Some(budget) = &budget {
        for name in &names {
            budget.register_population(name);
        }
    }

    let mut rng = rng::seeded(config.seed ^ 0x3A9);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut metrics = OverloadMetrics::new(
        OverloadMonitorConfig {
            bucket_ms: config.window_ms,
            ..OverloadMonitorConfig::default()
        },
        0,
    );

    // Baseline devices register every population whose stride divides
    // their id; flash newcomers know only their own population.
    let mut devices: Vec<Device> = Vec::with_capacity(total as usize);
    for i in 0..config.devices {
        let mut tenancy = DeviceTenancy::new();
        for (spec, name) in config.populations.iter().zip(&names) {
            if i % spec.membership_stride.max(1) == 0 {
                tenancy.register(name.clone(), spec.period_ms, config.retry);
            }
        }
        devices.push(Device {
            tenancy,
            phase: DevPhase::Idle,
            gen: 0,
        });
    }
    let mut newcomer_base = config.devices;
    let mut newcomer_ranges: Vec<(usize, u64, u64)> = Vec::new();
    for (p, (spec, name)) in config.populations.iter().zip(&names).enumerate() {
        if let Some(flash) = spec.flash {
            for _ in 0..flash.newcomers {
                let mut tenancy = DeviceTenancy::new();
                tenancy.register(name.clone(), spec.period_ms, config.retry);
                devices.push(Device {
                    tenancy,
                    phase: DevPhase::Idle,
                    gen: 0,
                });
            }
            newcomer_ranges.push((p, newcomer_base, newcomer_base + flash.newcomers));
            newcomer_base += flash.newcomers;
        }
    }

    // Bootstrap: the baseline fleet's first wakes spread over the
    // shortest lane period (steady-state pacing from t=0); newcomers
    // arrive unpaced within one window of their crowd's onset.
    let spread = config
        .populations
        .iter()
        .map(|p| p.period_ms)
        .min()
        .unwrap_or(config.window_ms)
        .max(1);
    for d in 0..config.devices {
        let at = rng.random_range(0..spread);
        devices[d as usize].gen += 1;
        let gen = devices[d as usize].gen;
        queue.schedule_at(at, Event::Wake { device: d, gen });
    }
    for &(p, lo, hi) in &newcomer_ranges {
        let at_ms = match config.populations[p].flash {
            Some(flash) => flash.at_ms,
            None => continue,
        };
        for d in lo..hi {
            let at = at_ms + rng.random_range(0..config.window_ms.max(1));
            devices[d as usize].gen += 1;
            let gen = devices[d as usize].gen;
            queue.schedule_at(at, Event::Wake { device: d, gen });
        }
    }
    queue.schedule_at(config.window_ms, Event::WindowSample);
    queue.schedule_at(config.forward_period_ms, Event::Forward);

    let mut rounds: Vec<PopRound> = (0..npop)
        .map(|p| PopRound {
            seq: 0,
            state: RoundState::begin(RoundId(1), config.populations[p].round, 0),
            open_at_ms: 0,
            pending: Vec::new(),
        })
        .collect();
    let mut counters: Vec<PopCounters> = (0..npop)
        .map(|_| PopCounters {
            rounds_started: 1,
            rounds_terminal: 0,
            committed: 0,
            abandoned: 0,
        })
        .collect();
    for (p, spec) in config.populations.iter().enumerate() {
        queue.schedule_at(
            spec.round.selection_timeout_ms,
            Event::RoundTick { pop: p, round_seq: 0 },
        );
    }

    let mut max_queue_depth: usize = 0;
    let mut violations: Vec<String> = Vec::new();

    // The in-memory wire: every check-in and report crosses it as a
    // framed v3 `WireMessage` carrying its population, every rejection /
    // configuration / ack comes back framed — the same protocol the
    // live multi-tenant topology speaks.
    let (device_wire, server_wire) = ChannelTransport::pair();
    // One shared Configuration payload per population (this harness
    // models flow control, not learning).
    let config_msgs: Vec<WireMessage> = config
        .populations
        .iter()
        .zip(&names)
        .map(|(spec, name)| WireMessage::PlanAndCheckpoint {
            plan: Box::new(FlPlan::standard_training(
                ModelSpec::Logistic {
                    dim: 4,
                    classes: 2,
                    seed: 1,
                },
                1,
                8,
                0.1,
                CodecSpec::Identity,
            )),
            checkpoint: Box::new(FlCheckpoint::new(spec.name, RoundId(1), vec![0.0; 10])),
            population: name.clone(),
        })
        .collect();

    macro_rules! wire_uplink {
        ($now:expr, $msg:expr) => {{
            if device_wire.send($msg).is_err() {
                violations.push(format!("t={}: wire uplink send failed", $now));
                None
            } else {
                match server_wire.try_recv() {
                    Ok(Some(decoded)) => Some(decoded),
                    _ => {
                        violations.push(format!("t={}: frame lost on the uplink", $now));
                        None
                    }
                }
            }
        }};
    }

    macro_rules! wire_downlink {
        ($msg:expr) => {{
            let _ = server_wire.send($msg);
            while let Ok(Some(_)) = device_wire.try_recv() {}
        }};
    }

    macro_rules! schedule_wake {
        ($dev:expr, $at:expr) => {{
            let d = &mut devices[$dev as usize];
            d.gen += 1;
            let gen = d.gen;
            queue.schedule_at($at, Event::Wake { device: $dev, gen });
        }};
    }

    // Routes a framed rejection/refusal through the device's own
    // population lane (its backoff + budget), finishes the session, and
    // resumes the wake chain at whatever lane comes due first.
    macro_rules! handle_rejection {
        ($dev:expr, $pop:expr, $now:expr, $reply:expr) => {{
            metrics.record_retry_for(&names[$pop], $now);
            let _ = devices[$dev as usize]
                .tenancy
                .on_server_reply(&names[$pop], $now, $reply, &mut rng);
            devices[$dev as usize].tenancy.finish_session();
            let at = next_wake_ms(&devices[$dev as usize].tenancy, $now);
            schedule_wake!($dev, at);
        }};
    }

    while let Some((now, event)) = queue.next_before(config.horizon_ms) {
        match event {
            Event::Wake { device, gen } => {
                if devices[device as usize].gen != gen {
                    continue;
                }
                match devices[device as usize].phase {
                    DevPhase::InRound { .. } => continue,
                    DevPhase::Held { .. } => {
                        // The fallback wake fired while still held: the
                        // slot went stale without a forward. Give the
                        // connection up and let the lane's cadence carry
                        // the next attempt.
                        selectors[(device % n) as usize].on_disconnect(DeviceId(device));
                        devices[device as usize].tenancy.finish_session();
                        devices[device as usize].phase = DevPhase::Idle;
                    }
                    DevPhase::Idle => {}
                }
                let winner = devices[device as usize].tenancy.start_session(
                    now,
                    DeviceConditions::eligible(),
                    &mut rng,
                );
                let Some(winner) = winner else {
                    let at = next_wake_ms(&devices[device as usize].tenancy, now);
                    schedule_wake!(device, at);
                    continue;
                };
                let pop = match names.iter().position(|name| *name == winner) {
                    Some(pop) => pop,
                    None => {
                        violations.push(format!("t={now}: unknown winner population"));
                        devices[device as usize].tenancy.finish_session();
                        continue;
                    }
                };
                // The check-in crosses the wire framed with its
                // population; the Selector acts only on what it decoded.
                let Some(WireMessage::CheckinRequest {
                    device: wired,
                    population: wired_pop,
                }) = wire_uplink!(
                    now,
                    &WireMessage::CheckinRequest {
                        device: DeviceId(device),
                        population: names[pop].clone(),
                    }
                )
                else {
                    devices[device as usize].tenancy.finish_session();
                    continue;
                };
                let selector = &mut selectors[(wired.0 % n) as usize];
                let shed_before = selector.shed_total_for(&wired_pop);
                match selector.on_checkin_for(&wired_pop, wired, now, 1.0) {
                    CheckinDecision::Accept => {
                        metrics.record_accept_for(&wired_pop, now);
                        devices[device as usize].phase = DevPhase::Held { pop };
                        devices[device as usize].tenancy.on_success(&names[pop], now);
                        max_queue_depth = max_queue_depth.max(selector.connected_count());
                        // Fallback wake: if never forwarded, the held
                        // slot goes stale and the chain resumes.
                        let jitter = rng.random_range(0..config.window_ms.max(1));
                        schedule_wake!(device, now + config.stale_after_ms + jitter);
                    }
                    CheckinDecision::Reject { retry_at_ms } => {
                        let shed = selector.shed_total_for(&wired_pop) > shed_before;
                        let reply = if shed {
                            metrics.record_shed_for(&wired_pop, now);
                            WireMessage::Shed {
                                retry_at_ms,
                                population: wired_pop.clone(),
                            }
                        } else {
                            WireMessage::ComeBackLater {
                                retry_at_ms,
                                population: wired_pop.clone(),
                            }
                        };
                        wire_downlink!(&reply);
                        handle_rejection!(device, pop, now, &reply);
                    }
                }
            }
            Event::Forward => {
                for p in 0..npop {
                    if rounds[p].state.phase() != Phase::Selection
                        || now < rounds[p].open_at_ms
                    {
                        continue;
                    }
                    let have = rounds[p].pending.len();
                    let mut need = targets[p].saturating_sub(have);
                    for s in 0..selectors.len() {
                        if need == 0 {
                            break;
                        }
                        // Population-filtered forwarding: tenants never
                        // receive each other's devices.
                        let forwarded = selectors[s].forward_devices_for(&names[p], need, now);
                        need = need.saturating_sub(forwarded.len());
                        for d in forwarded {
                            match rounds[p].state.on_checkin(d, now) {
                                CheckinResponse::Selected => {
                                    wire_downlink!(&config_msgs[p]);
                                    devices[d.0 as usize].phase = DevPhase::InRound { pop: p };
                                    rounds[p].pending.push(d.0);
                                }
                                CheckinResponse::AlreadySelected => {}
                                CheckinResponse::NotSelecting => {
                                    let reply = WireMessage::ComeBackLater {
                                        retry_at_ms: now,
                                        population: names[p].clone(),
                                    };
                                    wire_downlink!(&reply);
                                    devices[d.0 as usize].phase = DevPhase::Idle;
                                    handle_rejection!(d.0, p, now, &reply);
                                }
                            }
                        }
                    }
                }
                if now + config.forward_period_ms <= config.horizon_ms {
                    queue.schedule_in(config.forward_period_ms, Event::Forward);
                }
            }
            Event::Report { device, pop, round_seq } => {
                devices[device as usize].phase = DevPhase::Idle;
                let weight = 1 + device % 7;
                let loss = 0.9 - (device % 10) as f64 * 0.02;
                let accuracy = 0.5 + (device % 10) as f64 * 0.03;
                let round_key = rounds[pop].state.round;
                let report_msg = WireMessage::UpdateReport {
                    device: DeviceId(device),
                    round: round_key,
                    attempt: 1,
                    update_bytes: vec![0u8; 4],
                    weight,
                    loss,
                    accuracy,
                    population: names[pop].clone(),
                };
                let Some(WireMessage::UpdateReport { device: wired, .. }) =
                    wire_uplink!(now, &report_msg)
                else {
                    devices[device as usize].tenancy.finish_session();
                    continue;
                };
                let accepted = round_seq == rounds[pop].seq;
                if accepted {
                    let _ = rounds[pop].state.on_report(wired, now);
                }
                let ack = WireMessage::ReportAck {
                    accepted,
                    round: round_key,
                    attempt: 1,
                    population: names[pop].clone(),
                };
                wire_downlink!(&ack);
                if accepted {
                    devices[device as usize].tenancy.on_success(&names[pop], now);
                    devices[device as usize].tenancy.finish_session();
                    let at = next_wake_ms(&devices[device as usize].tenancy, now);
                    schedule_wake!(device, at);
                } else {
                    // A refusing ack (the round moved on) charges only
                    // this population's lane.
                    handle_rejection!(device, pop, now, &ack);
                }
            }
            Event::RoundTick { pop, round_seq } => {
                if round_seq == rounds[pop].seq {
                    rounds[pop].state.on_tick(now);
                    match rounds[pop].state.phase() {
                        Phase::Reporting => queue.schedule_in(
                            config.populations[pop].round.report_window_ms.min(10_000),
                            Event::RoundTick { pop, round_seq },
                        ),
                        Phase::Selection => queue.schedule_in(
                            config.populations[pop].round.selection_timeout_ms,
                            Event::RoundTick { pop, round_seq },
                        ),
                        _ => {}
                    }
                }
            }
            Event::WindowSample => {
                for s in selectors.iter_mut() {
                    s.evict_stale(now);
                    max_queue_depth = max_queue_depth.max(s.connected_count());
                }
                if now + config.window_ms <= config.horizon_ms {
                    queue.schedule_in(config.window_ms, Event::WindowSample);
                }
            }
        }

        for p in 0..npop {
            for round_event in rounds[p].state.drain_events() {
                match round_event {
                    RoundEvent::Configured { at_ms, .. } => {
                        let seq = rounds[p].seq;
                        let pending: Vec<u64> = rounds[p].pending.drain(..).collect();
                        for d in pending {
                            let latency = 10_000 + rng.random_range(0..30_000u64);
                            queue.schedule_at(
                                at_ms + latency,
                                Event::Report { device: d, pop: p, round_seq: seq },
                            );
                        }
                        queue.schedule_in(10_000, Event::RoundTick { pop: p, round_seq: seq });
                    }
                    RoundEvent::Finished { at_ms, outcome } => {
                        counters[p].rounds_terminal += 1;
                        if outcome.is_committed() {
                            counters[p].committed += 1;
                        } else {
                            counters[p].abandoned += 1;
                        }
                        if let RoundOutcome::AbandonedInSelection { .. } = outcome {
                            // Forwarded-but-unconfigured devices retry
                            // through their own lane.
                            let orphans: Vec<u64> = rounds[p].pending.drain(..).collect();
                            let reply = WireMessage::ComeBackLater {
                                retry_at_ms: at_ms,
                                population: names[p].clone(),
                            };
                            for d in orphans {
                                devices[d as usize].phase = DevPhase::Idle;
                                handle_rejection!(d, p, at_ms, &reply);
                            }
                        }
                        let seq = rounds[p].seq + 1;
                        counters[p].rounds_started += 1;
                        let open_at = (at_ms / config.window_ms + 1) * config.window_ms;
                        rounds[p] = PopRound {
                            seq,
                            state: RoundState::begin(
                                RoundId(seq + 1),
                                config.populations[p].round,
                                open_at,
                            ),
                            open_at_ms: open_at,
                            pending: Vec::new(),
                        };
                        queue.schedule_at(
                            open_at + config.populations[p].round.selection_timeout_ms,
                            Event::RoundTick { pop: p, round_seq: seq },
                        );
                    }
                }
            }
        }
    }

    // Post-horizon drain: every population's last round must still reach
    // a terminal state.
    for p in 0..npop {
        let mut drain_t = config.horizon_ms;
        for _ in 0..4 {
            if rounds[p].state.phase().is_terminal() {
                break;
            }
            drain_t += config.populations[p].round.selection_timeout_ms
                + config.populations[p].round.report_window_ms
                + config.populations[p].round.device_cap_ms
                + 1;
            rounds[p].state.on_tick(drain_t);
            for round_event in rounds[p].state.drain_events() {
                if let RoundEvent::Finished { outcome, .. } = round_event {
                    counters[p].rounds_terminal += 1;
                    if outcome.is_committed() {
                        counters[p].committed += 1;
                    } else {
                        counters[p].abandoned += 1;
                    }
                }
            }
        }
    }

    metrics.finalize(config.horizon_ms);

    let (accepted_total, rejected_total) = selectors
        .iter()
        .map(|s| s.counters())
        .fold((0, 0), |(a, r), (sa, sr)| (a + sa, r + sr));

    let outcomes: Vec<PopulationOutcome> = config
        .populations
        .iter()
        .enumerate()
        .map(|(p, spec)| {
            let name = &names[p];
            let (accepted, rejected) = selectors
                .iter()
                .map(|s| s.counters_for(name))
                .fold((0, 0), |(a, r), (sa, sr)| (a + sa, r + sr));
            let shed: u64 = selectors.iter().map(|s| s.shed_total_for(name)).sum();
            let retries: u64 = devices
                .iter()
                .filter_map(|d| d.tenancy.lane(name))
                .map(|l| l.connectivity.retries_total())
                .sum();
            let budget_exhaustions: u64 = devices
                .iter()
                .filter_map(|d| d.tenancy.lane(name))
                .filter(|l| l.connectivity.budget_exhaustions_total() > 0)
                .count() as u64;
            PopulationOutcome {
                name: spec.name,
                offered: accepted + rejected,
                accepted,
                shed,
                rejected_other: rejected.saturating_sub(shed),
                budget_admits: budget
                    .as_ref()
                    .map(|b| b.admitted_total_for(name))
                    .unwrap_or(0),
                budget_sheds: budget
                    .as_ref()
                    .map(|b| b.shed_total_for(name))
                    .unwrap_or(0),
                retries,
                budget_exhaustions,
                rounds_started: counters[p].rounds_started,
                rounds_terminal: counters[p].rounds_terminal,
                committed: counters[p].committed,
                abandoned: counters[p].abandoned,
            }
        })
        .collect();

    // Conservation: the per-population ledgers must sum exactly to the
    // aggregate — the multi-tenant bookkeeping loses no check-in.
    let accepted_by_pop: u64 = outcomes.iter().map(|o| o.accepted).sum();
    let rejected_by_pop: u64 = outcomes.iter().map(|o| o.offered - o.accepted).sum();
    if accepted_by_pop != accepted_total {
        violations.push(format!(
            "per-population accepts {accepted_by_pop} != aggregate {accepted_total}"
        ));
    }
    if rejected_by_pop != rejected_total {
        violations.push(format!(
            "per-population rejects {rejected_by_pop} != aggregate {rejected_total}"
        ));
    }
    if max_queue_depth > config.admission.max_inflight {
        violations.push(format!(
            "queue depth {max_queue_depth} exceeded bound {}",
            config.admission.max_inflight
        ));
    }
    for o in &outcomes {
        if o.rounds_terminal != o.rounds_started {
            violations.push(format!(
                "population {}: {} of {} started rounds never reached a terminal state",
                o.name,
                o.rounds_started - o.rounds_terminal.min(o.rounds_started),
                o.rounds_started
            ));
        }
        if o.committed == 0 {
            violations.push(format!("population {} never committed a round", o.name));
        }
    }
    // Fairness: after any flash crowd's onset, every *other* population
    // must still be getting accepts — starvation of a steady tenant by a
    // stormy one is the regression this harness exists to catch.
    for spec in &config.populations {
        let Some(flash) = spec.flash else { continue };
        let onset_bucket = (flash.at_ms / config.window_ms) as usize;
        for (other, name) in config.populations.iter().zip(&names) {
            if other.name == spec.name {
                continue;
            }
            let post_onset: f64 = metrics
                .population_series(name)
                .map(|series| series.accepts.sums().iter().skip(onset_bucket).sum())
                .unwrap_or(0.0);
            if post_onset == 0.0 {
                violations.push(format!(
                    "population {} starved after the flash crowd in {}",
                    other.name, spec.name
                ));
            }
        }
    }

    let arbitration_losses: u64 = devices.iter().map(|d| d.tenancy.arbitration_losses()).sum();

    MultiTenantReport {
        seed: config.seed,
        populations: outcomes,
        accepted_total,
        rejected_total,
        arbitration_losses,
        max_queue_depth,
        queue_bound: config.admission.max_inflight,
        wire: device_wire.stats(),
        telemetry_panel: metrics.render_population_panel(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_in_one_population_does_not_starve_the_others() {
        let report = run_multi_tenant(&MultiTenantConfig::flash_vs_steady(7));
        assert!(report.is_clean(), "{}", report.render());
        let steady = report.outcome("multi/steady").unwrap();
        let flash = report.outcome("multi/flash").unwrap();
        let aux = report.outcome("multi/aux").unwrap();
        // The storm really stormed: its lane absorbed mass rejection...
        assert!(
            flash.shed + flash.rejected_other > 5_000,
            "the flash crowd was never turned away:\n{}",
            report.render()
        );
        // ...while the other tenants kept committing.
        assert!(steady.committed >= 3, "{}", report.render());
        assert!(aux.committed >= 1, "{}", report.render());
        // And the stormy tenant itself still made progress on its share.
        assert!(flash.committed >= 1, "{}", report.render());
        // The dashboard panel carries one block per tenant.
        for name in ["multi/steady", "multi/flash", "multi/aux"] {
            assert!(
                report.telemetry_panel.contains(name),
                "panel missing {name}:\n{}",
                report.telemetry_panel
            );
        }
    }

    #[test]
    fn shared_budget_charges_the_stormy_population() {
        let report = run_multi_tenant(&MultiTenantConfig::flash_vs_steady(19));
        assert!(report.is_clean(), "{}", report.render());
        let steady = report.outcome("multi/steady").unwrap();
        let flash = report.outcome("multi/flash").unwrap();
        // Fair-share reservations bind against the storm, not the
        // steady tenant.
        assert!(
            flash.budget_sheds > 0,
            "the global budget never capped the storm:\n{}",
            report.render()
        );
        assert!(
            steady.budget_sheds < flash.budget_sheds,
            "{}",
            report.render()
        );
    }

    #[test]
    fn steady_commits_match_the_no_storm_baseline() {
        let stormy = run_multi_tenant(&MultiTenantConfig::flash_vs_steady(41));
        let calm =
            run_multi_tenant(&MultiTenantConfig::flash_vs_steady(41).without_flash());
        assert!(stormy.is_clean(), "{}", stormy.render());
        assert!(calm.is_clean(), "{}", calm.render());
        let with_storm = stormy.outcome("multi/steady").unwrap().committed;
        let without = calm.outcome("multi/steady").unwrap().committed;
        // Fair-share isolation: the steady tenant's round throughput
        // under the storm stays within one round of its calm baseline.
        assert!(
            with_storm + 1 >= without,
            "storm cost the steady tenant rounds: {with_storm} vs calm {without}\n{}",
            stormy.render()
        );
    }

    #[test]
    fn devices_arbitrate_one_session_across_populations() {
        let report = run_multi_tenant(&MultiTenantConfig::flash_vs_steady(7));
        // Devices registered in several populations must have collided
        // and deferred through their own lanes at least sometimes.
        assert!(
            report.arbitration_losses > 0,
            "no device ever arbitrated:\n{}",
            report.render()
        );
    }

    #[test]
    fn single_population_reduces_to_the_aggregate() {
        let report = run_multi_tenant(&MultiTenantConfig::single(7));
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.populations.len(), 1);
        let only = &report.populations[0];
        // n=1: the population ledger *is* the aggregate ledger.
        assert_eq!(only.accepted, report.accepted_total);
        assert_eq!(only.offered - only.accepted, report.rejected_total);
        assert!(only.committed >= 3, "{}", report.render());
    }

    #[test]
    fn replay_is_byte_identical() {
        let a = run_multi_tenant(&MultiTenantConfig::flash_vs_steady(19)).render();
        let b = run_multi_tenant(&MultiTenantConfig::flash_vs_steady(19)).render();
        assert_eq!(a, b);
    }
}
