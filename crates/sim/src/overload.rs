//! Overload scenarios: flash crowds, thundering herds, diurnal ramps.
//!
//! The paper's flow-control story (Sec. 2.3) is a *closed loop*: pace
//! steering spreads device check-ins, Selectors shed what still gets
//! through faster than capacity, and devices cooperate with jittered
//! backoff and retry budgets. This module stress-tests that loop end to
//! end with the real production code paths — the real [`Selector`] (with
//! admission control, staleness eviction, and the closed-loop
//! `PaceController`), the real [`RoundState`] machine, and the real
//! device-side [`ConnectivityManager`] — under the arrival patterns that
//! break naive systems:
//!
//! * **thundering herd** — the entire idle fleet wakes and reconnects at
//!   the same instant (network outage recovery, synchronized alarms);
//! * **flash crowd** — the population steps up 10× in one check-in period
//!   (a feature launch);
//! * **diurnal ramp** — sinusoidal arrival modulation (Fig. 5's day/night
//!   swing) exercising the activity-factor path.
//!
//! Each run audits the overload invariants: the Selector's held-connection
//! queue never exceeds its configured bound, the shed rate converges back
//! to steady state within a few pace windows of the disturbance, and every
//! round that starts reaches a terminal committed/abandoned state — no
//! wedged rounds, however hard the storm. Reports render byte-identically
//! per seed (the chaos-harness idiom), so a failing seed is a replayable
//! bug report.

use crate::des::EventQueue;
use fl_analytics::overload::{OverloadMetrics, OverloadMonitorConfig};
use fl_core::plan::{CodecSpec, ModelSpec};
use fl_core::round::{RoundConfig, RoundOutcome};
use fl_core::{DeviceId, FlCheckpoint, FlPlan, PopulationName, RetryPolicy, RoundId};
use fl_device::connectivity::{ConnectivityManager, RetryDecision};
use fl_ml::fixedpoint::FixedPointEncoder;
use fl_ml::rng;
use fl_server::aggregator::{AggregationPlan, MasterAggregator};
use fl_server::pace::PaceSteering;
use fl_server::round::{CheckinResponse, Phase, RoundEvent, RoundState};
use fl_server::selector::{CheckinDecision, Selector};
use fl_server::shedding::{AdmissionConfig, GlobalAdmissionConfig};
use fl_server::topology::{SelectorSpec, TopologyBlueprint};
use fl_server::wire::{ChannelTransport, Transport, WireMessage, WireStats};
use rand::Rng;

/// The arrival disturbance to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverloadScenario {
    /// Every idle device reconnects at the same instant (probability
    /// `fraction` per device) — synchronized wake.
    ThunderingHerd {
        /// When the herd fires.
        at_ms: u64,
        /// Fraction of idle devices that join the herd (`0.0..=1.0`).
        fraction: f64,
    },
    /// The population steps from `devices` to `multiplier × devices`; the
    /// newcomers arrive unpaced within one check-in period of `at_ms`.
    FlashCrowd {
        /// When the step happens.
        at_ms: u64,
        /// Population multiplier (the acceptance scenario uses 10).
        multiplier: u64,
    },
    /// Sinusoidal arrival-rate modulation with the given period and
    /// relative amplitude (`0.0..1.0`) — the diurnal day/night swing.
    DiurnalRamp {
        /// Oscillation period.
        period_ms: u64,
        /// Relative amplitude of the swing.
        amplitude: f64,
    },
}

impl OverloadScenario {
    /// When the disturbance begins (0 for the ramp, which is continuous).
    pub fn onset_ms(&self) -> u64 {
        match *self {
            OverloadScenario::ThunderingHerd { at_ms, .. } => at_ms,
            OverloadScenario::FlashCrowd { at_ms, .. } => at_ms,
            OverloadScenario::DiurnalRamp { .. } => 0,
        }
    }

    /// Short name used in rendered reports.
    pub fn name(&self) -> &'static str {
        match self {
            OverloadScenario::ThunderingHerd { .. } => "thundering-herd",
            OverloadScenario::FlashCrowd { .. } => "flash-crowd",
            OverloadScenario::DiurnalRamp { .. } => "diurnal-ramp",
        }
    }

    /// Whether shed-rate convergence after onset is a meaningful check
    /// (not for the ramp, whose disturbance never ends).
    fn expects_convergence(&self) -> bool {
        !matches!(self, OverloadScenario::DiurnalRamp { .. })
    }
}

/// Overload-simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Baseline population size.
    pub devices: u64,
    /// Simulated duration (ms).
    pub horizon_ms: u64,
    /// Round configuration.
    pub round: RoundConfig,
    /// How many Selectors the load fans across (device id modulo the
    /// count); each gets its own admission controller and quota.
    pub selectors: u64,
    /// Fleet-wide admission budget shared by every Selector; `None`
    /// leaves admission purely local.
    pub global_admission: Option<GlobalAdmissionConfig>,
    /// Per-Selector admission control (token bucket + queue bound).
    pub admission: AdmissionConfig,
    /// Selector staleness TTL for held connections (ms).
    pub stale_after_ms: u64,
    /// Device retry discipline.
    pub retry: RetryPolicy,
    /// Pace-steering rendezvous period = metric window width (ms).
    pub window_ms: u64,
    /// How often the Coordinator asks the Selector to forward devices.
    pub forward_period_ms: u64,
    /// The disturbance.
    pub scenario: OverloadScenario,
    /// Master seed.
    pub seed: u64,
    /// Windows allowed between onset and shed-rate convergence.
    pub convergence_budget_windows: u64,
    /// When set, every round aggregates through a real
    /// [`MasterAggregator`] under Secure Aggregation with this group
    /// threshold `k`: reports upload fixed-point field vectors over
    /// [`WireMessage::SecAggReport`] frames (the Sec. 6 bandwidth
    /// premium), and a storm that strands a cohort's group below `k`
    /// surfaces as per-shard aborts — or a whole-round abort — instead of
    /// a silent mis-sum.
    pub secagg_k: Option<usize>,
}

impl OverloadConfig {
    /// A calibrated default for the given scenario and seed: 8 000
    /// baseline devices (large enough that a 40-window horizon never
    /// drains the pool), 60 s pace windows, and a disturbance at
    /// window 10.
    pub fn for_scenario(scenario: OverloadScenario, seed: u64) -> Self {
        OverloadConfig {
            devices: 8_000,
            horizon_ms: 40 * 60_000,
            round: RoundConfig {
                goal_count: 100,
                overselection: 1.3,
                min_goal_fraction: 0.6,
                selection_timeout_ms: 60_000,
                report_window_ms: 60_000,
                device_cap_ms: 60_000,
            },
            selectors: 1,
            global_admission: None,
            admission: AdmissionConfig {
                accepts_per_sec: 50.0,
                burst: 200,
                max_inflight: 400,
            },
            stale_after_ms: 180_000,
            retry: RetryPolicy {
                base_delay_ms: 30_000,
                multiplier: 2.0,
                max_delay_ms: 600_000,
                jitter_frac: 0.5,
                budget_per_window: 30,
                budget_window_ms: 600_000,
            },
            window_ms: 60_000,
            forward_period_ms: 15_000,
            scenario,
            seed,
            convergence_budget_windows: 5,
            secagg_k: None,
        }
    }

    /// The thundering-herd acceptance scenario: the whole idle fleet —
    /// more than 10× a window's normal arrivals — reconnects at once at
    /// window 10.
    pub fn thundering_herd(seed: u64) -> Self {
        OverloadConfig::for_scenario(
            OverloadScenario::ThunderingHerd {
                at_ms: 600_000,
                fraction: 1.0,
            },
            seed,
        )
    }

    /// The flash-crowd acceptance scenario: a 10× population step at
    /// window 10.
    pub fn flash_crowd(seed: u64) -> Self {
        OverloadConfig::for_scenario(
            OverloadScenario::FlashCrowd {
                at_ms: 600_000,
                multiplier: 10,
            },
            seed,
        )
    }

    /// The flash-crowd scenario under Secure Aggregation: the 10×
    /// population step while every round runs masked aggregation with
    /// group threshold `k = 18`. Storm-degraded cohorts (rounds that
    /// commit at the minimum goal fraction) spread too thin across the
    /// Aggregator groups and must abort per shard, never mis-sum.
    pub fn secagg_flash_crowd(seed: u64) -> Self {
        let mut config = OverloadConfig::flash_crowd(seed);
        config.secagg_k = Some(18);
        config
    }

    /// The diurnal-ramp scenario: a full swing over a 20-window period.
    pub fn diurnal_ramp(seed: u64) -> Self {
        OverloadConfig::for_scenario(
            OverloadScenario::DiurnalRamp {
                period_ms: 20 * 60_000,
                amplitude: 0.6,
            },
            seed,
        )
    }

    /// Total device slots including any flash-crowd newcomers.
    fn total_devices(&self) -> u64 {
        match self.scenario {
            OverloadScenario::FlashCrowd { multiplier, .. } => {
                self.devices * multiplier.max(1)
            }
            _ => self.devices,
        }
    }
}

/// Outcome of one overload run: load counters, the queue/convergence
/// audit, and per-window shed fractions.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// The master seed.
    pub seed: u64,
    /// Scenario short name.
    pub scenario: &'static str,
    /// Check-ins offered to the Selector (accepted + rejected).
    pub offered: u64,
    /// Check-ins accepted into the held-connection queue.
    pub accepted: u64,
    /// Check-ins shed by the admission controllers (local and global).
    pub shed: u64,
    /// The subset of sheds caused by the shared fleet-wide budget (zero
    /// when no global budget is configured).
    pub shed_global: u64,
    /// Check-ins rejected by quota/duplicate checks (not shed).
    pub rejected_other: u64,
    /// Device-side retry attempts recorded.
    pub retries: u64,
    /// Devices that exhausted a retry-budget window at least once.
    pub budget_exhaustions: u64,
    /// Stale held connections evicted.
    pub evicted: u64,
    /// Deepest the held-connection queue ever got.
    pub max_queue_depth: usize,
    /// The configured queue bound it must stay under.
    pub queue_bound: usize,
    /// Shed fraction per closed pace window.
    pub shed_fraction_per_window: Vec<f64>,
    /// Windows from onset until the shed rate converged to its steady
    /// state (`None` = never converged).
    pub convergence_windows: Option<u64>,
    /// Rounds begun.
    pub rounds_started: u64,
    /// Rounds that reached a terminal state.
    pub rounds_terminal: u64,
    /// Rounds committed.
    pub committed: u64,
    /// Rounds abandoned (cleanly).
    pub abandoned: u64,
    /// The closed-loop population estimate (summed across Selectors) at
    /// the end of the run.
    pub population_estimate_final: u64,
    /// The highest the summed population estimate ever got — a flash
    /// crowd may overshoot before the capped EWMA settles, but only
    /// boundedly (see `PaceControllerConfig::max_growth_per_window`).
    pub population_estimate_peak: u64,
    /// Monitor alerts raised (deviation + ceiling).
    pub alerts: usize,
    /// SecAgg Aggregator groups stranded below threshold in rounds that
    /// still committed from the surviving groups (0 on plain runs).
    pub secagg_shard_aborts: u64,
    /// Committed-by-the-state-machine rounds whose aggregate was lost
    /// because *every* SecAgg group fell below threshold.
    pub secagg_round_aborts: u64,
    /// Bytes-on-wire counters from the device end of the harness's
    /// in-memory [`ChannelTransport`]: every check-in and update report
    /// crosses the wire as a framed `WireMessage`, and every rejection,
    /// configuration, and ack comes back the same way.
    pub wire: WireStats,
    /// Overload-invariant violations; empty on a clean run.
    pub violations: Vec<String>,
}

impl OverloadReport {
    /// Whether every overload invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Canonical text form — byte-identical across replays of one seed.
    pub fn render(&self) -> String {
        let mut out = format!(
            "seed={} scenario={}\n\
             offered={} accepted={} shed={} shed_global={} rejected_other={}\n\
             retries={} budget_exhaustions={} evicted={}\n\
             max_queue_depth={} queue_bound={}\n\
             rounds_started={} rounds_terminal={} committed={} abandoned={}\n\
             population_estimate_final={} population_estimate_peak={} alerts={}\n\
             secagg_shard_aborts={} secagg_round_aborts={}\n\
             wire up_frames={} up_bytes={} down_frames={} down_bytes={}\n\
             convergence_windows={}\n",
            self.seed,
            self.scenario,
            self.offered,
            self.accepted,
            self.shed,
            self.shed_global,
            self.rejected_other,
            self.retries,
            self.budget_exhaustions,
            self.evicted,
            self.max_queue_depth,
            self.queue_bound,
            self.rounds_started,
            self.rounds_terminal,
            self.committed,
            self.abandoned,
            self.population_estimate_final,
            self.population_estimate_peak,
            self.alerts,
            self.secagg_shard_aborts,
            self.secagg_round_aborts,
            self.wire.frames_sent,
            self.wire.bytes_sent,
            self.wire.frames_received,
            self.wire.bytes_received,
            match self.convergence_windows {
                Some(w) => w.to_string(),
                None => "never".into(),
            },
        );
        out.push_str("shed_fractions=");
        for (i, f) in self.shed_fraction_per_window.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{f:.3}"));
        }
        out.push('\n');
        out.push_str(&format!("violations={}\n", self.violations.len()));
        for v in &self.violations {
            out.push_str("violation: ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// The fixed seed set swept by `scripts/check.sh` and the tier-1 overload
/// tests.
pub fn default_seeds() -> Vec<u64> {
    vec![3, 17, 29, 53]
}

/// Runs [`run_overload`] for one scenario constructor over a seed set.
pub fn sweep(seeds: &[u64], make: impl Fn(u64) -> OverloadConfig) -> Vec<OverloadReport> {
    seeds.iter().map(|&s| run_overload(&make(s))).collect()
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A device wakes and attempts a check-in (stale generations are
    /// dropped, so at most one wake chain per device is live).
    Checkin { device: u64, gen: u32 },
    /// The Coordinator instructs the Selector to forward devices.
    Forward,
    /// A selected device finishes training + upload.
    Report { device: u64, round_seq: u64 },
    /// Round phase timeout check.
    RoundTick { round_seq: u64 },
    /// Per-window queue-depth sampling.
    WindowSample,
    /// The thundering herd fires.
    HerdWake,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DevPhase {
    /// Not connected; a wake event is (usually) pending.
    Idle,
    /// Held in the Selector's connected queue.
    Held,
    /// Forwarded into the active round; awaiting report.
    InRound,
}

struct Device {
    mgr: ConnectivityManager,
    phase: DevPhase,
    /// Wake-chain generation: a `Checkin` event whose `gen` does not match
    /// is stale (superseded by a later schedule) and is dropped.
    gen: u32,
    /// Whether this device exists yet (flash-crowd newcomers start dark).
    active: bool,
}

struct ActiveRound {
    seq: u64,
    state: RoundState,
    /// When selection opens: rounds are aligned to pace-window boundaries
    /// so steady-state consumption matches the pace target (the paper's
    /// rendezvous cadence), instead of free-running as fast as devices
    /// can report.
    open_at_ms: u64,
    /// Devices forwarded into the round before Configuration fired.
    pending: Vec<u64>,
}

fn scenario_activity(scenario: &OverloadScenario, now_ms: u64) -> f64 {
    match *scenario {
        OverloadScenario::DiurnalRamp { period_ms, amplitude } => {
            let phase = now_ms as f64 / period_ms as f64 * std::f64::consts::TAU;
            1.0 + amplitude * phase.sin()
        }
        _ => 1.0,
    }
}

/// Drives one seeded overload scenario against the real Selector/round
/// stack and audits the overload invariants. See the module docs.
pub fn run_overload(config: &OverloadConfig) -> OverloadReport {
    let total = config.total_devices();
    let target = (config.round.selection_target() as u64).max(1);
    let pace = PaceSteering::new(config.window_ms, target);
    // The Selector layer comes from the same blueprint the live topology
    // and the chaos harness build from (device id modulo the count).
    let n = config.selectors.max(1);
    let mut blueprint = TopologyBlueprint::new(
        (0..n)
            .map(|i| {
                SelectorSpec::new(
                    pace,
                    config.devices / n,
                    config.seed ^ (0x5E1 + i),
                    config.admission.max_inflight,
                )
                .with_admission(config.admission)
                .with_staleness(config.stale_after_ms)
            })
            .collect(),
    );
    if let Some(global) = config.global_admission {
        blueprint = blueprint.with_global_admission(global);
    }
    let budget = blueprint.build_global_budget();
    let mut selectors: Vec<Selector> = blueprint.build_selectors(budget.as_ref());

    let mut rng = rng::seeded(config.seed ^ 0x0E7);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut metrics = OverloadMetrics::new(
        OverloadMonitorConfig {
            bucket_ms: config.window_ms,
            ..OverloadMonitorConfig::default()
        },
        0,
    );

    let mut devices: Vec<Device> = (0..total)
        .map(|i| Device {
            mgr: ConnectivityManager::new(config.retry),
            phase: DevPhase::Idle,
            gen: 0,
            active: i < config.devices,
        })
        .collect();

    // Bootstrap: the baseline fleet is already paced — first wakes spread
    // over the steady-state reconnect horizon.
    let spread = ((config.devices as f64 / target as f64).max(1.0)
        * config.window_ms as f64) as u64;
    for d in 0..config.devices {
        let at = rng.random_range(0..spread.max(1));
        devices[d as usize].gen += 1;
        let gen = devices[d as usize].gen;
        queue.schedule_at(at, Event::Checkin { device: d, gen });
    }
    match config.scenario {
        OverloadScenario::ThunderingHerd { at_ms, .. } => {
            queue.schedule_at(at_ms, Event::HerdWake);
        }
        OverloadScenario::FlashCrowd { at_ms, .. } => {
            // Newcomers arrive unpaced within one window of the step.
            for d in config.devices..total {
                let at = at_ms + rng.random_range(0..config.window_ms);
                devices[d as usize].gen += 1;
                let gen = devices[d as usize].gen;
                queue.schedule_at(at, Event::Checkin { device: d, gen });
            }
        }
        OverloadScenario::DiurnalRamp { .. } => {}
    }
    queue.schedule_at(config.window_ms, Event::WindowSample);
    queue.schedule_at(config.forward_period_ms, Event::Forward);

    let mut round_seq: u64 = 0;
    let mut rounds_started: u64 = 1;
    let mut active = ActiveRound {
        seq: 0,
        state: RoundState::begin(RoundId(1), config.round, 0),
        open_at_ms: 0,
        pending: Vec::new(),
    };
    queue.schedule_at(config.round.selection_timeout_ms, Event::RoundTick { round_seq: 0 });

    let mut rounds_terminal: u64 = 0;
    let mut committed: u64 = 0;
    let mut abandoned: u64 = 0;
    let mut secagg_shard_aborts: u64 = 0;
    let mut secagg_round_aborts: u64 = 0;
    // SecAgg runs aggregate through a real MasterAggregator (one fresh
    // subtree per round, like the live topology); plain runs carry none.
    let secagg_dim = 4usize;
    let fixedpoint = FixedPointEncoder::default_for_updates();
    let make_master = |seq: u64| {
        config.secagg_k.map(|k| {
            MasterAggregator::new(
                AggregationPlan::with_secagg(secagg_dim, 33, k),
                CodecSpec::Identity,
                target as usize,
                config.seed.wrapping_add(seq),
            )
        })
    };
    let mut master = make_master(0);
    let mut max_queue_depth: usize = 0;
    let mut devices_exhausted: u64 = 0;
    let mut population_estimate_peak: u64 = 0;
    let mut violations: Vec<String> = Vec::new();

    // The in-memory wire: every check-in and update report crosses it as
    // a framed `WireMessage`, and every rejection/configuration/ack comes
    // back framed — the same protocol the live topology and the TCP
    // front door speak. Frames are pure functions of the messages, so the
    // byte counters replay identically per seed.
    let (device_wire, server_wire) = ChannelTransport::pair();
    // The overload harness drives a single population; every v3 frame
    // carries its name (the multi-population sweep lives in `multi`).
    let population = PopulationName::new("overload/train");
    // One shared Configuration payload (the overload harness models flow
    // control, not learning, so every selected device downloads the same
    // small plan + checkpoint).
    let config_msg = WireMessage::PlanAndCheckpoint {
        plan: Box::new(FlPlan::standard_training(
            ModelSpec::Logistic {
                dim: 4,
                classes: 2,
                seed: 1,
            },
            1,
            8,
            0.1,
            CodecSpec::Identity,
        )),
        checkpoint: Box::new(FlCheckpoint::new("overload/train", RoundId(1), vec![0.0; 10])),
        population: population.clone(),
    };

    // Sends `msg` up the in-memory wire and decodes what the server side
    // receives; a lost or unsendable frame is an invariant violation.
    macro_rules! wire_uplink {
        ($now:expr, $msg:expr) => {{
            if device_wire.send($msg).is_err() {
                violations.push(format!("t={}: wire uplink send failed", $now));
                None
            } else {
                match server_wire.try_recv() {
                    Ok(Some(decoded)) => Some(decoded),
                    _ => {
                        violations.push(format!("t={}: frame lost on the uplink", $now));
                        None
                    }
                }
            }
        }};
    }

    // Sends a server reply down the wire and has the device consume it
    // (so the device-side received counters see every downlink frame).
    macro_rules! wire_downlink {
        ($msg:expr) => {{
            let _ = server_wire.send($msg);
            while let Ok(Some(_)) = device_wire.try_recv() {}
        }};
    }

    // Schedules the next wake of a device's chain, superseding any
    // previous one.
    macro_rules! schedule_wake {
        ($dev:expr, $at:expr) => {{
            let d = &mut devices[$dev as usize];
            d.gen += 1;
            let gen = d.gen;
            queue.schedule_at($at, Event::Checkin { device: $dev, gen });
        }};
    }

    // Routes a rejection through the device's retry discipline and
    // schedules the resulting wake.
    macro_rules! handle_rejection {
        ($dev:expr, $now:expr, $server_at:expr) => {{
            metrics.record_retry($now);
            let decision =
                devices[$dev as usize]
                    .mgr
                    .on_rejected($now, $server_at, &mut rng);
            if let RetryDecision::BudgetExhausted { .. } = decision {
                if devices[$dev as usize].mgr.budget_exhaustions_total() == 1 {
                    devices_exhausted += 1;
                }
            }
            schedule_wake!($dev, decision.effective_at_ms());
        }};
    }

    while let Some((now, event)) = queue.next_before(config.horizon_ms) {
        match event {
            Event::Checkin { device, gen } => {
                if devices[device as usize].gen != gen
                    || devices[device as usize].phase == DevPhase::InRound
                    || !devices[device as usize].active
                {
                    continue;
                }
                devices[device as usize].phase = DevPhase::Idle;
                let activity = scenario_activity(&config.scenario, now);
                // The check-in crosses the wire as a framed request; the
                // Selector acts only on what it decoded.
                let Some(WireMessage::CheckinRequest { device: wired, .. }) = wire_uplink!(
                    now,
                    &WireMessage::CheckinRequest {
                        device: DeviceId(device),
                        population: population.clone(),
                    }
                ) else {
                    continue;
                };
                let selector = &mut selectors[(wired.0 % n) as usize];
                let shed_before = selector.shed_total();
                match selector.on_checkin(wired, now, activity) {
                    CheckinDecision::Accept => {
                        // Accepted connections are held open (no reply
                        // frame until the Coordinator forwards them).
                        metrics.record_accept(now);
                        devices[device as usize].phase = DevPhase::Held;
                        devices[device as usize].mgr.on_success(now);
                        max_queue_depth = max_queue_depth.max(selector.connected_count());
                        // Fallback wake: if never forwarded, the held slot
                        // goes stale and the device retries.
                        let jitter = rng.random_range(0..config.window_ms.max(1));
                        schedule_wake!(device, now + config.stale_after_ms + jitter);
                    }
                    CheckinDecision::Reject { retry_at_ms } => {
                        let shed = selector.shed_total() > shed_before;
                        if shed {
                            metrics.record_shed(now);
                            wire_downlink!(&WireMessage::Shed {
                                retry_at_ms,
                                population: population.clone(),
                            });
                        } else {
                            wire_downlink!(&WireMessage::ComeBackLater {
                                retry_at_ms,
                                population: population.clone(),
                            });
                        }
                        handle_rejection!(device, now, Some(retry_at_ms));
                    }
                }
            }
            Event::Forward => {
                if active.state.phase() == Phase::Selection && now >= active.open_at_ms {
                    let have = active.pending.len() as u64;
                    let mut need = target.saturating_sub(have) as usize;
                    // Drain Selectors in index order until the target is
                    // met — deterministic, and with one Selector identical
                    // to the historical single-queue behavior.
                    for s in 0..selectors.len() {
                        if need == 0 {
                            break;
                        }
                        let forwarded = selectors[s].forward_devices_at(need, now);
                        need = need.saturating_sub(forwarded.len());
                        for d in forwarded {
                            match active.state.on_checkin(d, now) {
                                CheckinResponse::Selected => {
                                    // The Configuration download crosses
                                    // the wire too, so FIG9's per-round
                                    // traffic is measured from real frames.
                                    wire_downlink!(&config_msg);
                                    devices[d.0 as usize].phase = DevPhase::InRound;
                                    active.pending.push(d.0);
                                }
                                CheckinResponse::AlreadySelected => {}
                                CheckinResponse::NotSelecting => {
                                    wire_downlink!(&WireMessage::ComeBackLater {
                                        retry_at_ms: now,
                                        population: population.clone(),
                                    });
                                    devices[d.0 as usize].phase = DevPhase::Idle;
                                    handle_rejection!(d.0, now, None);
                                }
                            }
                        }
                    }
                }
                if now + config.forward_period_ms <= config.horizon_ms {
                    queue.schedule_in(config.forward_period_ms, Event::Forward);
                }
            }
            Event::Report { device, round_seq: seq } => {
                devices[device as usize].phase = DevPhase::Idle;
                devices[device as usize].mgr.on_success(now);
                // The report uploads as a framed UpdateReport (payload
                // fields deterministic per device, so frame bytes replay
                // identically); the server acts on the decoded device id
                // and always answers with a framed ack.
                let weight = 1 + device % 7;
                let loss = 0.9 - (device % 10) as f64 * 0.02;
                let accuracy = 0.5 + (device % 10) as f64 * 0.03;
                let round_key = active.state.round;
                let accepted = if config.secagg_k.is_some() {
                    // SecAgg upload: the fixed-point field vector, 8 bytes
                    // per coordinate on the measured wire.
                    let update = vec![0.1 + (device % 5) as f32 * 0.01; secagg_dim];
                    let Ok(field) = fixedpoint.encode(&update) else {
                        violations.push(format!("t={now}: fixed-point encode failed"));
                        continue;
                    };
                    let report_msg = WireMessage::SecAggReport {
                        device: DeviceId(device),
                        round: round_key,
                        attempt: 1,
                        field_vector: field,
                        weight,
                        loss,
                        accuracy,
                        population: population.clone(),
                    };
                    let Some(WireMessage::SecAggReport {
                        device: wired,
                        field_vector,
                        weight: wired_weight,
                        ..
                    }) = wire_uplink!(now, &report_msg)
                    else {
                        continue;
                    };
                    let accepted = seq == active.seq;
                    if accepted {
                        let _ = active.state.on_report(wired, now);
                        if let Some(m) = master.as_mut() {
                            // Drop-not-crash: a malformed contribution
                            // costs only itself.
                            let _ = m.accept_field(wired, &field_vector, wired_weight);
                        }
                    }
                    accepted
                } else {
                    let report_msg = WireMessage::UpdateReport {
                        device: DeviceId(device),
                        round: round_key,
                        attempt: 1,
                        update_bytes: vec![0u8; 4],
                        weight,
                        loss,
                        accuracy,
                        population: population.clone(),
                    };
                    let Some(WireMessage::UpdateReport { device: wired, .. }) =
                        wire_uplink!(now, &report_msg)
                    else {
                        continue;
                    };
                    let accepted = seq == active.seq;
                    if accepted {
                        let _ = active.state.on_report(wired, now);
                    }
                    accepted
                };
                wire_downlink!(&WireMessage::ReportAck {
                    accepted,
                    round: round_key,
                    attempt: 1,
                    population: population.clone(),
                });
                // The next natural participation is the device's periodic
                // FL job, a population-scaled horizon away (Sec. 3: jobs
                // fire when idle, charging, unmetered — hours apart), not
                // a tight re-poll loop that would double-count the device
                // in the arrival stream.
                let natural = ((config.devices as f64 / target as f64).max(1.0)
                    * config.window_ms as f64) as u64;
                let jitter = rng.random_range(0..natural.max(1));
                schedule_wake!(device, now + natural + jitter);
            }
            Event::RoundTick { round_seq: seq } => {
                if seq == active.seq {
                    active.state.on_tick(now);
                    match active.state.phase() {
                        Phase::Reporting => queue.schedule_in(
                            config.round.report_window_ms.min(10_000),
                            Event::RoundTick { round_seq: seq },
                        ),
                        Phase::Selection => queue.schedule_in(
                            config.round.selection_timeout_ms,
                            Event::RoundTick { round_seq: seq },
                        ),
                        _ => {}
                    }
                }
            }
            Event::WindowSample => {
                for s in selectors.iter_mut() {
                    s.evict_stale(now);
                    max_queue_depth = max_queue_depth.max(s.connected_count());
                }
                let estimate: u64 = selectors
                    .iter()
                    .map(|s| s.pace_controller().population_estimate())
                    .sum();
                population_estimate_peak = population_estimate_peak.max(estimate);
                if now + config.window_ms <= config.horizon_ms {
                    queue.schedule_in(config.window_ms, Event::WindowSample);
                }
            }
            Event::HerdWake => {
                if let OverloadScenario::ThunderingHerd { fraction, .. } = config.scenario {
                    for d in 0..total {
                        if devices[d as usize].active
                            && devices[d as usize].phase == DevPhase::Idle
                            && rng.random_range(0..1_000_000u64) < (fraction * 1e6) as u64
                        {
                            schedule_wake!(d, now);
                        }
                    }
                }
            }
        }

        for round_event in active.state.drain_events() {
            match round_event {
                RoundEvent::Configured { at_ms, .. } => {
                    // Every participant trains, then uploads within the
                    // device cap.
                    for d in active.pending.drain(..) {
                        let latency = 10_000 + rng.random_range(0..30_000u64);
                        queue.schedule_at(
                            at_ms + latency,
                            Event::Report { device: d, round_seq: active.seq },
                        );
                    }
                    queue.schedule_in(10_000, Event::RoundTick { round_seq: active.seq });
                }
                RoundEvent::Finished { at_ms, outcome } => {
                    rounds_terminal += 1;
                    if outcome.is_committed() {
                        committed += 1;
                    } else {
                        abandoned += 1;
                    }
                    if let Some(m) = master.take() {
                        if outcome.is_committed() {
                            // A storm-degraded cohort spreads too thin
                            // across the groups: shards below k abort,
                            // surviving shards still merge. If nothing
                            // survives the aggregate is lost whole.
                            match m.finalize(&vec![0.0; secagg_dim], &[], &[]) {
                                Ok(out) => {
                                    secagg_shard_aborts += out.shard_aborts as u64;
                                    for _ in 0..out.shard_aborts {
                                        metrics.record_secagg_abort(at_ms);
                                    }
                                }
                                Err(_) => secagg_round_aborts += 1,
                            }
                        }
                    }
                    if let RoundOutcome::AbandonedInSelection { .. } = outcome {
                        // Forwarded-but-unconfigured devices retry.
                        let orphans: Vec<u64> = active.pending.drain(..).collect();
                        for d in orphans {
                            devices[d as usize].phase = DevPhase::Idle;
                            handle_rejection!(d, at_ms, None);
                        }
                    }
                    round_seq += 1;
                    rounds_started += 1;
                    // Next round opens at the next pace-window boundary.
                    let open_at = (at_ms / config.window_ms + 1) * config.window_ms;
                    active = ActiveRound {
                        seq: round_seq,
                        state: RoundState::begin(RoundId(round_seq + 1), config.round, open_at),
                        open_at_ms: open_at,
                        pending: Vec::new(),
                    };
                    queue.schedule_at(
                        open_at + config.round.selection_timeout_ms,
                        Event::RoundTick { round_seq },
                    );
                    master = make_master(round_seq);
                }
            }
        }
    }

    // Post-horizon drain: the last round must still reach a terminal
    // state — ticking past every window forces the state machine to
    // resolve (commit on what it has, or abandon cleanly).
    let mut drain_t = config.horizon_ms;
    for _ in 0..4 {
        if active.state.phase().is_terminal() {
            break;
        }
        drain_t += config.round.selection_timeout_ms
            + config.round.report_window_ms
            + config.round.device_cap_ms
            + 1;
        active.state.on_tick(drain_t);
        for round_event in active.state.drain_events() {
            if let RoundEvent::Finished { outcome, .. } = round_event {
                rounds_terminal += 1;
                if outcome.is_committed() {
                    committed += 1;
                } else {
                    abandoned += 1;
                }
                if let Some(m) = master.take() {
                    if outcome.is_committed() {
                        match m.finalize(&vec![0.0; secagg_dim], &[], &[]) {
                            Ok(out) => secagg_shard_aborts += out.shard_aborts as u64,
                            Err(_) => secagg_round_aborts += 1,
                        }
                    }
                }
            }
        }
    }

    metrics.finalize(config.horizon_ms);

    let (accepted, rejected) = selectors
        .iter()
        .map(|s| s.counters())
        .fold((0, 0), |(a, r), (sa, sr)| (a + sa, r + sr));
    let shed: u64 = selectors.iter().map(|s| s.shed_total()).sum();
    let shed_global = budget.as_ref().map(|b| b.shed_total()).unwrap_or(0);
    let population_estimate_final: u64 = selectors
        .iter()
        .map(|s| s.pace_controller().population_estimate())
        .sum();
    let population_estimate_peak = population_estimate_peak.max(population_estimate_final);
    let fractions = metrics.shed_fractions().to_vec();
    let onset_window = (config.scenario.onset_ms() / config.window_ms) as usize;
    let convergence_windows = shed_convergence(&fractions, onset_window, 0.15);

    if max_queue_depth > config.admission.max_inflight {
        violations.push(format!(
            "queue depth {max_queue_depth} exceeded bound {}",
            config.admission.max_inflight
        ));
    }
    if config.scenario.expects_convergence() {
        match convergence_windows {
            Some(w) if w <= config.convergence_budget_windows => {}
            Some(w) => violations.push(format!(
                "shed rate took {w} windows to converge (budget {})",
                config.convergence_budget_windows
            )),
            None => violations.push("shed rate never converged".into()),
        }
    }
    if rounds_terminal != rounds_started {
        violations.push(format!(
            "{} of {} started rounds never reached a terminal state",
            rounds_started - rounds_terminal.min(rounds_started),
            rounds_started
        ));
    }
    if committed == 0 {
        violations.push("no round committed under overload".into());
    }

    let retries: u64 = devices.iter().map(|d| d.mgr.retries_total()).sum();

    OverloadReport {
        seed: config.seed,
        scenario: config.scenario.name(),
        offered: accepted + rejected,
        accepted,
        shed,
        shed_global,
        rejected_other: rejected - shed,
        retries,
        budget_exhaustions: devices_exhausted,
        evicted: selectors.iter().map(|s| s.evicted_total()).sum(),
        max_queue_depth,
        queue_bound: config.admission.max_inflight,
        shed_fraction_per_window: fractions,
        convergence_windows,
        rounds_started,
        rounds_terminal,
        committed,
        abandoned,
        population_estimate_final,
        population_estimate_peak,
        alerts: metrics.alerts().len(),
        secagg_shard_aborts,
        secagg_round_aborts,
        wire: device_wire.stats(),
        violations,
    }
}

/// Windows from `onset_window` until the shed-fraction series settles: the
/// first window from which every later window stays within `tol` of the
/// final steady level (mean of the last three windows).
fn shed_convergence(fractions: &[f64], onset_window: usize, tol: f64) -> Option<u64> {
    if fractions.len() < onset_window + 4 {
        return None;
    }
    let tail = &fractions[fractions.len() - 3..];
    let steady = tail.iter().sum::<f64>() / tail.len() as f64;
    for w in onset_window..fractions.len() {
        if fractions[w..].iter().all(|f| (f - steady).abs() <= tol) {
            return Some((w - onset_window) as u64);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thundering_herd_holds_the_invariants() {
        let report = run_overload(&OverloadConfig::thundering_herd(3));
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.max_queue_depth <= report.queue_bound);
        assert!(report.shed > 0, "a herd must actually shed:\n{}", report.render());
        assert!(report.committed >= 3, "{}", report.render());
        // Every check-in/report crossed the wire framed, and every
        // shed/configuration/ack came back framed.
        assert!(
            report.wire.frames_sent > 0 && report.wire.frames_received > 0,
            "no framed traffic recorded:\n{}",
            report.render()
        );
    }

    #[test]
    fn flash_crowd_tracks_the_population_step() {
        let report = run_overload(&OverloadConfig::flash_crowd(17));
        assert!(report.is_clean(), "{}", report.render());
        // The closed loop must have noticed the 10× step: the estimate
        // ends far above the baseline 8 000.
        assert!(
            report.population_estimate_final > 20_000,
            "estimate stuck at {}:\n{}",
            report.population_estimate_final,
            report.render()
        );
    }

    #[test]
    fn diurnal_ramp_never_wedges() {
        let report = run_overload(&OverloadConfig::diurnal_ramp(29));
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.rounds_started, report.rounds_terminal);
    }

    #[test]
    fn replay_is_byte_identical() {
        let a = run_overload(&OverloadConfig::thundering_herd(53)).render();
        let b = run_overload(&OverloadConfig::thundering_herd(53)).render();
        assert_eq!(a, b);
    }

    #[test]
    fn secagg_flash_crowd_strands_cohorts_below_k_cleanly() {
        let plain = run_overload(&OverloadConfig::flash_crowd(17));
        let report = run_overload(&OverloadConfig::secagg_flash_crowd(17));
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.committed >= 1, "{}", report.render());
        // The storm must have pushed at least one cohort's group below k
        // — surfaced as a typed abort, never a silent mis-sum.
        assert!(
            report.secagg_shard_aborts + report.secagg_round_aborts >= 1,
            "no group ever fell below threshold:\n{}",
            report.render()
        );
        // Field vectors are 8 bytes per coordinate vs. the plain run's
        // 4-byte blob: the SecAgg premium shows in measured uplink bytes.
        assert!(
            report.wire.bytes_sent > plain.wire.bytes_sent,
            "secagg uplink {} <= plain uplink {}",
            report.wire.bytes_sent,
            plain.wire.bytes_sent
        );
    }

    #[test]
    fn secagg_flash_crowd_replays_byte_identically() {
        let a = run_overload(&OverloadConfig::secagg_flash_crowd(29)).render();
        let b = run_overload(&OverloadConfig::secagg_flash_crowd(29)).render();
        assert_eq!(a, b);
    }

    #[test]
    fn herd_trips_the_monitors() {
        let report = run_overload(&OverloadConfig::thundering_herd(3));
        assert!(report.alerts > 0, "herd raised no alerts:\n{}", report.render());
    }

    /// Regression (pace-controller overshoot): the flash window delivers
    /// ~72 000 unpaced arrivals against an 8 000-device estimate, and the
    /// uncapped `implied = arrivals × periods_per_return` law (~61
    /// periods) used to spike the estimate past two million devices —
    /// 25×+ the true stepped population — before the EWMA decayed. With
    /// per-window growth capped
    /// (`PaceControllerConfig::max_growth_per_window`), the peak must
    /// stay within a small factor of the true population (observed ≈
    /// 3.3×; the bound leaves slack without re-admitting the spike).
    #[test]
    fn flash_crowd_estimate_overshoot_is_bounded() {
        let config = OverloadConfig::flash_crowd(17);
        let true_population = config.total_devices();
        let report = run_overload(&config);
        assert!(report.is_clean(), "{}", report.render());
        assert!(
            report.population_estimate_peak <= 5 * true_population,
            "estimate peaked at {} for a true population of {true_population}:\n{}",
            report.population_estimate_peak,
            report.render()
        );
        assert!(
            report.population_estimate_peak >= report.population_estimate_final,
            "{}",
            report.render()
        );
    }

    /// Three Selectors each shed locally under a herd, while one shared
    /// fleet-wide budget caps what they admit in total — the cap binds
    /// (global sheds happen) yet rounds still commit.
    #[test]
    fn global_budget_is_shared_across_selectors() {
        let mut config = OverloadConfig::thundering_herd(3);
        config.selectors = 3;
        config.global_admission = Some(GlobalAdmissionConfig {
            window_ms: 60_000,
            max_admits_per_window: 300,
        });
        let report = run_overload(&config);
        assert!(
            report.shed_global > 0,
            "herd never hit the shared budget:\n{}",
            report.render()
        );
        assert!(report.shed > report.shed_global, "{}", report.render());
        assert!(report.committed >= 1, "{}", report.render());
        assert_eq!(report.rounds_started, report.rounds_terminal, "{}", report.render());
    }
}
