//! Per-device network and compute models.
//!
//! The paper notes performance "depends on the device and network speed
//! (which can vary by region)". Devices here draw a persistent speed tier
//! (compute ms per training example, network throughput, RTT) from a
//! heavy-tailed distribution, plus a transient failure probability —
//! drop-outs from "computation errors \[or\] network failures" (Sec. 9).

use fl_ml::rng;
use rand::RngExt;

/// A device's persistent performance profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Compute cost: milliseconds per training example.
    pub ms_per_example: f64,
    /// Downlink throughput in bytes/ms.
    pub down_bytes_per_ms: f64,
    /// Uplink throughput in bytes/ms.
    pub up_bytes_per_ms: f64,
    /// Round-trip latency in ms.
    pub rtt_ms: u64,
    /// Probability that a given round attempt fails with a transient
    /// network/compute error.
    pub failure_probability: f64,
}

/// Fleet-wide network/compute model.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    seed: u64,
    /// Base per-round transient failure probability.
    pub base_failure_probability: f64,
}

impl NetworkModel {
    /// Creates the model.
    pub fn new(seed: u64, base_failure_probability: f64) -> Self {
        assert!((0.0..1.0).contains(&base_failure_probability));
        NetworkModel {
            seed,
            base_failure_probability,
        }
    }

    /// The persistent profile of a device (deterministic per device).
    pub fn profile(&self, device: u64) -> DeviceProfile {
        let mut r = rng::seeded(rng::derive_seed(self.seed, device));
        // Log-normal-ish speed tiers: most devices fast, a heavy slow tail.
        let compute_tier = (rng::normal(&mut r) * 0.6).exp(); // median 1
        let net_tier = (rng::normal(&mut r) * 0.8).exp();
        DeviceProfile {
            ms_per_example: 2.0 * compute_tier,
            down_bytes_per_ms: (2_000.0 / net_tier).max(50.0), // ~2 MB/s median
            up_bytes_per_ms: (800.0 / net_tier).max(20.0),     // ~0.8 MB/s median
            rtt_ms: (50.0 * net_tier).clamp(10.0, 2_000.0) as u64,
            failure_probability: self.base_failure_probability,
        }
    }

    /// Total on-device round latency: download plan+model, compute, upload
    /// update.
    pub fn round_latency_ms(
        &self,
        device: u64,
        download_bytes: usize,
        work_units: u64,
        upload_bytes: usize,
    ) -> u64 {
        let p = self.profile(device);
        let down = download_bytes as f64 / p.down_bytes_per_ms;
        let compute = work_units as f64 * p.ms_per_example;
        let up = upload_bytes as f64 / p.up_bytes_per_ms;
        2 * p.rtt_ms + (down + compute + up) as u64
    }

    /// Whether this round attempt hits a transient failure (deterministic
    /// per (device, attempt)).
    pub fn attempt_fails(&self, device: u64, attempt: u64) -> bool {
        let mut r = rng::seeded(rng::derive_seed(
            self.seed ^ 0xFA11,
            device.wrapping_mul(1_000_003).wrapping_add(attempt),
        ));
        r.random::<f64>() < self.base_failure_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_deterministic_and_heterogeneous() {
        let model = NetworkModel::new(1, 0.05);
        assert_eq!(model.profile(3), model.profile(3));
        let speeds: Vec<f64> = (0..100).map(|d| model.profile(d).ms_per_example).collect();
        let min = speeds.iter().cloned().fold(f64::MAX, f64::min);
        let max = speeds.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max / min > 3.0, "expected heterogeneity, got {min}..{max}");
    }

    #[test]
    fn latency_scales_with_payload_and_work() {
        let model = NetworkModel::new(2, 0.0);
        let small = model.round_latency_ms(0, 10_000, 10, 1_000);
        let big = model.round_latency_ms(0, 10_000_000, 1_000, 1_000_000);
        assert!(big > small * 5);
    }

    #[test]
    fn failure_rate_matches_configuration() {
        let model = NetworkModel::new(3, 0.08);
        let fails = (0..10_000)
            .filter(|&i| model.attempt_fails(i % 100, i / 100))
            .count();
        let rate = fails as f64 / 10_000.0;
        assert!((rate - 0.08).abs() < 0.015, "rate {rate}");
    }

    #[test]
    fn zero_failure_probability_never_fails() {
        let model = NetworkModel::new(4, 0.0);
        assert!((0..1000).all(|i| !model.attempt_fails(i, 0)));
    }
}
