//! Fleet-dynamics simulation: Figs. 5–9 and Table 1.
//!
//! Drives the real `fl-server` round state machine and pace steering with
//! an event-driven fleet of simulated devices under the diurnal
//! availability model ([`crate::availability`]) and heterogeneous
//! network/compute profiles ([`crate::network`]). No actual ML runs here —
//! payload sizes and per-device work are parameters — which is what lets a
//! 20k-device, multi-day simulation finish in seconds while the *protocol
//! dynamics* (selection, over-selection, straggler discard, drop-outs,
//! pace steering back-pressure) are all real code paths.

use crate::availability::DiurnalAvailability;
use crate::des::EventQueue;
use crate::network::NetworkModel;
use crate::{DAY_MS, HOUR_MS};
use fl_analytics::sessions::SessionShapeTable;
use fl_analytics::timeseries::TimeSeries;
use fl_core::events::DeviceEvent;
use fl_core::plan::{CodecSpec, ModelSpec};
use fl_core::round::{RoundConfig, RoundOutcome};
use fl_core::traffic::{TrafficCounter, TrafficKind};
use fl_core::{DeviceId, FlCheckpoint, FlPlan, RoundId, SessionLog};
use fl_ml::rng;
use fl_server::pace::PaceSteering;
use fl_server::round::{CheckinResponse, Phase, ReportResponse, RoundEvent, RoundState};
use fl_server::wire::WireMessage;
use rand::RngExt;

/// The representative FIG9 workload: an embedding language model of
/// ~1.4 M parameters (the paper's LSTM scale) whose update uploads int8
/// block-quantized (Sec. 5's ~4× compression).
pub const FIG9_MODEL: ModelSpec = ModelSpec::EmbeddingLm {
    vocab: 10_000,
    dim: 70,
    seed: 42,
};
/// The FIG9 upload codec.
pub const FIG9_CODEC: CodecSpec = CodecSpec::Quantize { block: 256 };

/// Measures FIG9's per-participant payload sizes from real encoded
/// `fl-wire` frames rather than analytic estimates: returns
/// `(plan_bytes, checkpoint_bytes, update_bytes)` where the download is
/// the actual [`WireMessage::PlanAndCheckpoint`] frame for `model` (the
/// plan's share is the frame minus the nested checkpoint blob, so frame
/// framing/header overhead is charged to the plan) and the upload is the
/// actual [`WireMessage::UpdateReport`] frame carrying the
/// codec-compressed update.
pub fn measured_payload_sizes(model: ModelSpec, codec: CodecSpec) -> (usize, usize, usize) {
    let params = vec![0.0f32; model.num_params()];
    let plan = FlPlan::standard_training(model, 1, 16, 0.1, codec);
    let checkpoint = FlCheckpoint::new("fleet/train", RoundId(1), params.clone());
    let checkpoint_bytes = checkpoint.encoded_size();
    let download_frame = fl_server::wire::encode(&WireMessage::PlanAndCheckpoint {
        plan: Box::new(plan),
        checkpoint: Box::new(checkpoint),
        population: fl_core::PopulationName::new("fleet/train"),
    })
    .expect("plan frame encodes");
    let plan_bytes = download_frame.len().saturating_sub(checkpoint_bytes);
    let update_frame = fl_server::wire::encode(&WireMessage::UpdateReport {
        device: DeviceId(0),
        round: RoundId(1),
        attempt: 1,
        update_bytes: codec.build().encode(&params),
        weight: 1,
        loss: 0.0,
        accuracy: 0.0,
        population: fl_core::PopulationName::new("fleet/train"),
    })
    .expect("update frame encodes");
    (plan_bytes, checkpoint_bytes, update_frame.len())
}

/// Fleet simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of devices in the fleet.
    pub devices: u64,
    /// Simulated duration in days.
    pub days: u64,
    /// Round configuration (goal count, over-selection, windows).
    pub round: RoundConfig,
    /// Encoded FL-plan size in bytes (paper: comparable to the model).
    pub plan_bytes: usize,
    /// Encoded checkpoint size in bytes.
    pub checkpoint_bytes: usize,
    /// Encoded (compressed) update size in bytes.
    pub update_bytes: usize,
    /// Training examples processed per device per round (sets compute
    /// time through the device's speed profile).
    pub work_units: u64,
    /// Base check-in period while eligible (pace steering stretches it).
    pub checkin_period_ms: u64,
    /// Transient failure probability per participation.
    pub failure_probability: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        // Payload sizes are measured from real encoded `fl-wire` frames
        // for the FIG9 workload, not estimated: ~1.4M params land near
        // 5.6 MB plan/checkpoint downloads and a ~1.4 MB quantized
        // upload, but the exact numbers come from the codec.
        let (plan_bytes, checkpoint_bytes, update_bytes) =
            measured_payload_sizes(FIG9_MODEL, FIG9_CODEC);
        FleetConfig {
            devices: 20_000,
            days: 3,
            round: RoundConfig::default(),
            plan_bytes,
            checkpoint_bytes,
            update_bytes,
            work_units: 60_000,          // ≈2 min median compute ("each round takes about 2–3 minutes")
            checkin_period_ms: 60_000,
            failure_probability: 0.03,
            seed: 42,
        }
    }
}

/// Per-round statistics (Fig. 7 rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Round sequence number.
    pub seq: u64,
    /// Virtual time the round finished.
    pub finished_at_ms: u64,
    /// Outcome with counters.
    pub outcome: RoundOutcome,
    /// Configuration → finish duration.
    pub run_time_ms: u64,
    /// Hour-of-day (0–23) at finish.
    pub hour_of_day: u64,
}

/// Everything the fleet simulation measures.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The configuration that produced this report.
    pub config: FleetConfig,
    /// Participating devices (in-flight in a round), sampled gauge.
    pub participating: TimeSeries,
    /// Eligible-but-waiting devices, sampled gauge (Fig. 6).
    pub waiting: TimeSeries,
    /// Devices entering participation per bucket (the paper's
    /// "participating devices over a 24 hours period" count).
    pub participating_starts: TimeSeries,
    /// Successful round completions per bucket (Figs. 5–6 bottom).
    pub completions: TimeSeries,
    /// Per-round stats (Fig. 7).
    pub rounds: Vec<RoundStats>,
    /// Participation times of completed devices (Fig. 8).
    pub participation_completed_ms: Vec<u64>,
    /// Participation times of aborted devices (Fig. 8).
    pub participation_aborted_ms: Vec<u64>,
    /// Round run times (Fig. 8).
    pub round_run_times_ms: Vec<u64>,
    /// Session-shape distribution (Table 1).
    pub sessions: SessionShapeTable,
    /// Server traffic (Fig. 9).
    pub traffic: TrafficCounter,
    /// Total check-ins accepted/rejected at the selector layer.
    pub checkins: (u64, u64),
    /// Device drop-out events per bucket (device-side view, independent of
    /// whether the round was still open when the drop-out fired).
    pub dropout_events: TimeSeries,
}

impl FleetReport {
    /// Overall drop-out fraction among configured devices (paper: 6–10%).
    pub fn dropout_rate(&self) -> f64 {
        let (mut dropped, mut total) = (0usize, 0usize);
        for r in &self.rounds {
            if let RoundOutcome::Committed {
                incorporated,
                aborted,
                dropped_out,
            } = r.outcome
            {
                dropped += dropped_out;
                total += incorporated + aborted + dropped_out;
            }
        }
        if total == 0 {
            0.0
        } else {
            dropped as f64 / total as f64
        }
    }

    /// Mean drop-out counts by day/night (Fig. 7's diurnal correlation).
    /// Day = 09:00–21:00 local.
    pub fn dropout_by_daypart(&self) -> (f64, f64) {
        let mut day = (0u64, 0u64); // (dropped, rounds)
        let mut night = (0u64, 0u64);
        for r in &self.rounds {
            if let RoundOutcome::Committed { dropped_out, .. } = r.outcome {
                let slot = if (9..21).contains(&r.hour_of_day) {
                    &mut day
                } else {
                    &mut night
                };
                slot.0 += dropped_out as u64;
                slot.1 += 1;
            }
        }
        (
            day.0 as f64 / day.1.max(1) as f64,
            night.0 as f64 / night.1.max(1) as f64,
        )
    }

    /// Device-side drop-out *rate* (drop-outs per participating device)
    /// split by day (09:00–21:00) and night, from the event streams —
    /// the measurement behind Fig. 7's "drop out rate is higher during
    /// the day time".
    pub fn dropout_rate_by_daypart(&self) -> (f64, f64) {
        let buckets_per_day = (crate::DAY_MS / self.dropout_events.bucket_ms()) as usize;
        let drops = self.dropout_events.sums();
        let starts = self.participating_starts.sums();
        let mut day = (0.0f64, 0.0f64); // (dropouts, starts)
        let mut night = (0.0f64, 0.0f64);
        for i in 0..drops.len().max(starts.len()) {
            let hour = (i % buckets_per_day) * 24 / buckets_per_day;
            let slot = if (9..21).contains(&hour) { &mut day } else { &mut night };
            slot.0 += drops.get(i).copied().unwrap_or(0.0);
            slot.1 += starts.get(i).copied().unwrap_or(0.0);
        }
        (day.0 / day.1.max(1.0), night.0 / night.1.max(1.0))
    }

    /// Committed rounds count.
    pub fn committed_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.outcome.is_committed()).count()
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A device wakes up and attempts a check-in.
    Checkin { device: u64 },
    /// A selected device finishes training + upload.
    Report { device: u64, round_seq: u64 },
    /// A selected device drops out (eligibility change or failure).
    Dropout {
        device: u64,
        round_seq: u64,
        reason: DropReason,
    },
    /// Round phase timeout check.
    RoundTick { round_seq: u64 },
    /// Periodic gauge sampling.
    Sample,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DropReason {
    EligibilityChange,
    TransientFailure,
}

struct ActiveRound {
    seq: u64,
    state: RoundState,
    /// Check-in times of participants (for session logs).
    checkin_times: Vec<(DeviceId, u64)>,
}

/// Runs the fleet simulation.
pub fn run(config: &FleetConfig) -> FleetReport {
    let availability = DiurnalAvailability::us_centric(config.seed);
    let network = NetworkModel::new(config.seed ^ 0xBEEF, config.failure_probability);
    let pace = PaceSteering::new(
        config.checkin_period_ms,
        config.round.selection_target() as u64,
    );
    let mut rng = rng::seeded(config.seed ^ 0xF1EE7);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let horizon = config.days * DAY_MS;

    let bucket = 30 * 60_000; // 30-minute buckets for the time series
    let mut report = FleetReport {
        config: *config,
        participating: TimeSeries::new("participating", bucket, 0),
        waiting: TimeSeries::new("waiting", bucket, 0),
        participating_starts: TimeSeries::new("participating starts", bucket, 0),
        completions: TimeSeries::new("round completions", bucket, 0),
        rounds: Vec::new(),
        participation_completed_ms: Vec::new(),
        participation_aborted_ms: Vec::new(),
        round_run_times_ms: Vec::new(),
        sessions: SessionShapeTable::new(),
        traffic: TrafficCounter::new(),
        checkins: (0, 0),
        dropout_events: TimeSeries::new("dropouts", bucket, 0),
    };

    // Bootstrap: every device schedules its first wake-up inside its first
    // eligibility window (uniformly within the first day's window).
    for device in 0..config.devices {
        if let Some(t) = availability.next_eligible_at(device, 0) {
            let jitter = rng.random_range(0..config.checkin_period_ms * 4);
            queue.schedule_at(t + jitter, Event::Checkin { device });
        }
    }
    queue.schedule_at(0, Event::Sample);

    // The first round opens immediately.
    let mut round_seq: u64 = 0;
    let mut active = ActiveRound {
        seq: 0,
        state: RoundState::begin(RoundId(1), config.round, 0),
        checkin_times: Vec::new(),
    };
    queue.schedule_at(config.round.selection_timeout_ms, Event::RoundTick { round_seq: 0 });

    // In-flight device count (the "participating" gauge).
    let mut in_flight: u64 = 0;
    // Subsample for the eligibility gauge (full fleet would be O(n) per
    // sample; 1k devices give ±3% accuracy).
    let gauge_sample: u64 = config.devices.min(1_000);

    let download_bytes = config.plan_bytes + config.checkpoint_bytes;

    // Helper closures are avoided (borrow discipline); the loop handles
    // everything inline.
    while let Some((now, event)) = queue.next_before(horizon) {
        match event {
            Event::Sample => {
                let eligible_frac =
                    availability.eligible_fraction(gauge_sample, now);
                let eligible_total = eligible_frac * config.devices as f64;
                report.participating.record(now, in_flight as f64);
                report
                    .waiting
                    .record(now, (eligible_total - in_flight as f64).max(0.0));
                queue.schedule_in(10 * 60_000, Event::Sample);
            }
            Event::Checkin { device } => {
                if !availability.is_eligible(device, now) {
                    // Missed its window; wake at the next one.
                    if let Some(t) = availability.next_eligible_at(device, now + 1) {
                        let jitter = rng.random_range(0..config.checkin_period_ms);
                        queue.schedule_at(t + jitter, Event::Checkin { device });
                    }
                    continue;
                }
                let response = active.state.on_checkin(DeviceId(device), now);
                match response {
                    CheckinResponse::Selected => {
                        report.checkins.0 += 1;
                        active.checkin_times.push((DeviceId(device), now));
                        in_flight += 1;
                    }
                    // Idempotent duplicate: the device already holds a
                    // slot; nothing new to count or schedule.
                    CheckinResponse::AlreadySelected => {}
                    CheckinResponse::NotSelecting => {
                        report.checkins.1 += 1;
                        // Pace steering: come back later.
                        let retry = pace.suggest_reconnect(
                            now,
                            config.devices,
                            1.0,
                            &mut rng,
                        );
                        queue.schedule_at(retry, Event::Checkin { device });
                    }
                }
            }
            Event::Report { device, round_seq: seq } => {
                if seq != active.seq {
                    // Round long gone; treat as a late upload against the
                    // already-closed round: rejected, Table 1 `#`.
                    report.sessions.record_shape("-v[]+#");
                    report.traffic.record(TrafficKind::Update, config.update_bytes);
                    in_flight = in_flight.saturating_sub(1);
                    schedule_next_checkin(
                        &mut queue,
                        &availability,
                        device,
                        now,
                        config.checkin_period_ms,
                        &mut rng,
                    );
                    continue;
                }
                let response = active.state.on_report(DeviceId(device), now);
                report.traffic.record(TrafficKind::Update, config.update_bytes);
                report.traffic.record(TrafficKind::Metrics, 64);
                in_flight = in_flight.saturating_sub(1);
                let shape_tail = match response {
                    ReportResponse::Accepted => DeviceEvent::UploadCompleted,
                    _ => DeviceEvent::UploadRejected,
                };
                let mut log = SessionLog::new();
                let checkin_t = active
                    .checkin_times
                    .iter()
                    .find(|(d, _)| *d == DeviceId(device))
                    .map(|(_, t)| *t)
                    .unwrap_or(now);
                log.record(checkin_t, DeviceEvent::CheckIn);
                log.record(checkin_t, DeviceEvent::PlanDownloaded);
                log.record(checkin_t, DeviceEvent::TrainingStarted);
                log.record(now, DeviceEvent::TrainingCompleted);
                log.record(now, DeviceEvent::UploadStarted);
                log.record(now, shape_tail);
                report.sessions.record(&log);
                schedule_next_checkin(
                    &mut queue,
                    &availability,
                    device,
                    now,
                    config.checkin_period_ms,
                    &mut rng,
                );
            }
            Event::Dropout { device, round_seq: seq, reason } => {
                if seq == active.seq {
                    active.state.on_dropout(DeviceId(device), now);
                }
                report.dropout_events.increment(now);
                in_flight = in_flight.saturating_sub(1);
                report.sessions.record_shape(match reason {
                    DropReason::EligibilityChange => "-v[!",
                    DropReason::TransientFailure => "-v[*",
                });
                schedule_next_checkin(
                    &mut queue,
                    &availability,
                    device,
                    now,
                    config.checkin_period_ms,
                    &mut rng,
                );
            }
            Event::RoundTick { round_seq: seq } => {
                if seq == active.seq {
                    active.state.on_tick(now);
                    // Keep ticking through the reporting window.
                    if active.state.phase() == Phase::Reporting {
                        queue.schedule_in(
                            config.round.report_window_ms.min(10_000),
                            Event::RoundTick { round_seq: seq },
                        );
                    } else if active.state.phase() == Phase::Selection {
                        queue.schedule_in(
                            config.round.selection_timeout_ms,
                            Event::RoundTick { round_seq: seq },
                        );
                    }
                }
            }
        }

        // Process round transitions after every event.
        for round_event in active.state.drain_events() {
            match round_event {
                RoundEvent::Configured { at_ms, participants } => {
                    report
                        .participating_starts
                        .record(at_ms, participants as f64);
                    // Configuration: every participant downloads plan +
                    // checkpoint, then trains; schedule each one's fate.
                    for (d, _) in active.checkin_times.clone() {
                        report.traffic.record(TrafficKind::Plan, config.plan_bytes);
                        report
                            .traffic
                            .record(TrafficKind::Checkpoint, config.checkpoint_bytes);
                        let latency = network.round_latency_ms(
                            d.0,
                            download_bytes,
                            config.work_units,
                            config.update_bytes,
                        );
                        let done_at = at_ms + latency;
                        if network.attempt_fails(d.0, active.seq) {
                            // Transient failure partway through.
                            let frac = 0.2 + 0.6 * rng.random::<f64>();
                            queue.schedule_at(
                                at_ms + (latency as f64 * frac) as u64,
                                Event::Dropout {
                                    device: d.0,
                                    round_seq: active.seq,
                                    reason: DropReason::TransientFailure,
                                },
                            );
                        } else if let Some(w) = availability.current_window(d.0, at_ms) {
                            if w.end_ms < done_at {
                                // Eligibility ends mid-training: the
                                // daytime drop-out mechanism.
                                queue.schedule_at(
                                    w.end_ms,
                                    Event::Dropout {
                                        device: d.0,
                                        round_seq: active.seq,
                                        reason: DropReason::EligibilityChange,
                                    },
                                );
                            } else {
                                queue.schedule_at(
                                    done_at,
                                    Event::Report {
                                        device: d.0,
                                        round_seq: active.seq,
                                    },
                                );
                            }
                        } else {
                            // Window already over at configuration time.
                            queue.schedule_at(
                                at_ms + 1,
                                Event::Dropout {
                                    device: d.0,
                                    round_seq: active.seq,
                                    reason: DropReason::EligibilityChange,
                                },
                            );
                        }
                    }
                    debug_assert_eq!(participants, active.checkin_times.len());
                    // First reporting tick.
                    queue.schedule_in(10_000, Event::RoundTick { round_seq: active.seq });
                }
                RoundEvent::Finished { at_ms, outcome } => {
                    if let Some(run) = active.state.run_time_ms() {
                        report.round_run_times_ms.push(run);
                    }
                    for (_, state, t) in active.state.participation_times() {
                        match state {
                            "completed" => report.participation_completed_ms.push(t),
                            "aborted" => report.participation_aborted_ms.push(t),
                            _ => {}
                        }
                    }
                    if outcome.is_committed() {
                        report.completions.increment(at_ms);
                    }
                    report.rounds.push(RoundStats {
                        seq: active.seq,
                        finished_at_ms: at_ms,
                        outcome,
                        run_time_ms: active.state.run_time_ms().unwrap_or(0),
                        hour_of_day: (at_ms / HOUR_MS) % 24,
                    });
                    // Devices still in flight will find the round gone.
                    in_flight = 0;
                    // Open the next round immediately (selection is
                    // continuous — Sec. 4.3 pipelining).
                    round_seq += 1;
                    let round_id = RoundId(round_seq + 1);
                    active = ActiveRound {
                        seq: round_seq,
                        state: RoundState::begin(round_id, config.round, at_ms),
                        checkin_times: Vec::new(),
                    };
                    queue.schedule_at(
                        at_ms + config.round.selection_timeout_ms,
                        Event::RoundTick { round_seq },
                    );
                }
            }
        }
    }

    report
}

fn schedule_next_checkin(
    queue: &mut EventQueue<Event>,
    availability: &DiurnalAvailability,
    device: u64,
    now: u64,
    period_ms: u64,
    rng: &mut rand::rngs::StdRng,
) {
    let jitter = rng.random_range(0..period_ms.max(1));
    let target = now + period_ms + jitter;
    if availability.is_eligible(device, target) {
        queue.schedule_at(target, Event::Checkin { device });
    } else if let Some(t) = availability.next_eligible_at(device, target) {
        queue.schedule_at(t + jitter, Event::Checkin { device });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            devices: 1_500,
            days: 1,
            round: RoundConfig {
                goal_count: 30,
                overselection: 1.3,
                min_goal_fraction: 0.7,
                selection_timeout_ms: 20 * 60_000,
                report_window_ms: 10 * 60_000,
                device_cap_ms: 8 * 60_000,
            },
            plan_bytes: 100_000,
            checkpoint_bytes: 100_000,
            update_bytes: 25_000,
            work_units: 300,
            checkin_period_ms: 60_000,
            failure_probability: 0.05,
            seed: 7,
        }
    }

    #[test]
    fn fleet_completes_rounds() {
        let report = run(&small_config());
        assert!(
            report.committed_rounds() >= 5,
            "only {} rounds committed",
            report.committed_rounds()
        );
        assert!(report.checkins.0 > 0 && report.checkins.1 > 0);
    }

    #[test]
    fn dropout_rate_is_in_paper_band() {
        let report = run(&small_config());
        let rate = report.dropout_rate();
        // The paper reports 6–10%; with our 5% transient failures plus
        // eligibility-change drop-outs we should land in a loose band.
        assert!(
            (0.02..0.25).contains(&rate),
            "dropout rate {rate} out of plausible band"
        );
    }

    #[test]
    fn sessions_are_dominated_by_success() {
        let report = run(&small_config());
        assert!(report.sessions.total() > 100);
        let ok = report.sessions.fraction("-v[]+^");
        assert!(ok > 0.5, "success fraction {ok}");
    }

    #[test]
    fn traffic_is_download_dominated() {
        let report = run(&small_config());
        let ratio = report.traffic.asymmetry();
        assert!(ratio > 2.0, "asymmetry {ratio}");
    }

    #[test]
    fn diurnal_oscillation_is_visible() {
        let mut config = small_config();
        config.days = 2;
        let report = run(&config);
        // Hourly participating-device counts swing by a factor of a few
        // between night peak and day trough (paper: ~4x).
        let swing = report.participating_starts.peak_to_trough();
        assert!(
            swing.is_some_and(|s| s > 2.0),
            "participating swing {swing:?}"
        );
    }

    #[test]
    fn daytime_dropout_rate_exceeds_night() {
        let mut config = small_config();
        config.days = 2;
        let report = run(&config);
        let (day, night) = report.dropout_rate_by_daypart();
        assert!(
            day > night,
            "expected higher daytime drop-out rate: day {day:.4}, night {night:.4}"
        );
    }

    #[test]
    fn participation_times_are_capped() {
        let report = run(&small_config());
        let cap = small_config().round.device_cap_ms;
        for &t in &report.participation_aborted_ms {
            assert!(t <= cap);
        }
        assert!(!report.participation_completed_ms.is_empty());
    }

    #[test]
    fn fig9_payloads_are_measured_from_real_frames() {
        let (plan, checkpoint, update) = measured_payload_sizes(FIG9_MODEL, FIG9_CODEC);
        let model_bytes = FIG9_MODEL.num_params() * 4;
        // The checkpoint download carries every f32 parameter plus its
        // own versioned header; the plan is about model-sized (the graph
        // payload is physically in the frame).
        assert!(checkpoint >= model_bytes, "checkpoint {checkpoint} < {model_bytes}");
        let ratio = plan as f64 / model_bytes as f64;
        assert!((0.8..1.5).contains(&ratio), "plan/model ratio {ratio}");
        // The int8-quantized upload really compresses (~4× vs f32) but
        // still carries at least a byte per parameter.
        assert!(update < model_bytes / 2, "update {update} did not compress");
        assert!(update > FIG9_MODEL.num_params() / 2, "update {update} implausibly small");
        // Measured, deterministic: the same workload frames identically.
        assert_eq!(
            (plan, checkpoint, update),
            measured_payload_sizes(FIG9_MODEL, FIG9_CODEC)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&small_config());
        let b = run(&small_config());
        assert_eq!(a.committed_rounds(), b.committed_rounds());
        assert_eq!(a.checkins, b.checkins);
        assert_eq!(a.sessions.total(), b.sessions.total());
    }
}
