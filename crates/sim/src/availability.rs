//! Diurnal device availability (Sec. 9, Fig. 5, Appendix A).
//!
//! "Devices are more likely idle and charging at night, and hence more
//! likely to participate. We have observed a 4× difference between low
//! and high numbers of participating devices over a 24 hours period for a
//! US-centric population."
//!
//! Model: each device charges overnight (a window whose start and length
//! vary per device per day) and may get a short daytime charging bout.
//! Eligibility = inside a window. The model is deterministic per
//! `(seed, device, day)`, so the simulator can query eligibility at any
//! time and also enumerate window *edges* — a device whose window ends
//! mid-round drops out with an eligibility change, which is exactly the
//! paper's daytime-drop-out mechanism ("higher probability of the device
//! eligibility criteria changes due interaction with a device", Fig. 7).

use crate::{DAY_MS, HOUR_MS};
use fl_ml::rng;
use rand::RngExt;

/// One eligibility window in absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Window start (ms).
    pub start_ms: u64,
    /// Window end (ms).
    pub end_ms: u64,
}

impl Window {
    /// Whether `t` falls inside the window.
    pub fn contains(&self, t_ms: u64) -> bool {
        t_ms >= self.start_ms && t_ms < self.end_ms
    }
}

/// Parameters of the diurnal model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalConfig {
    /// Mean overnight plug-in hour (fractional, local time; 22.5 ≈ 22:30).
    pub night_start_hour: f64,
    /// Std-dev of the plug-in hour across devices/days.
    pub night_start_std: f64,
    /// Mean overnight charging duration in hours.
    pub night_duration_hours: f64,
    /// Std-dev of the duration.
    pub night_duration_std: f64,
    /// Probability of an additional short daytime charging bout.
    pub daytime_bout_probability: f64,
    /// Mean daytime bout duration in hours.
    pub daytime_bout_hours: f64,
    /// Timezone spread across the population in hours (devices get a
    /// fixed offset uniform in ±spread/2 — the paper's population is
    /// "US-centric", spanning several timezones).
    pub timezone_spread_hours: f64,
}

impl Default for DiurnalConfig {
    fn default() -> Self {
        DiurnalConfig {
            night_start_hour: 22.5,
            night_start_std: 1.5,
            night_duration_hours: 8.5,
            night_duration_std: 1.5,
            daytime_bout_probability: 0.5,
            daytime_bout_hours: 1.5,
            timezone_spread_hours: 5.0,
        }
    }
}

/// The fleet-wide availability model.
#[derive(Debug, Clone)]
pub struct DiurnalAvailability {
    config: DiurnalConfig,
    seed: u64,
}

impl DiurnalAvailability {
    /// Creates the model.
    pub fn new(config: DiurnalConfig, seed: u64) -> Self {
        DiurnalAvailability { config, seed }
    }

    /// A US-centric population with the default parameters.
    pub fn us_centric(seed: u64) -> Self {
        DiurnalAvailability::new(DiurnalConfig::default(), seed)
    }

    /// The eligibility windows of `device` on `day` (0-based).
    ///
    /// A night window starting late (e.g. 23:00 for 9 h) spills into the
    /// next day; callers interested in time `t` should check day
    /// `t/DAY` and day `t/DAY − 1`.
    pub fn windows(&self, device: u64, day: u64) -> Vec<Window> {
        let mut r = rng::seeded(rng::derive_seed(
            self.seed,
            device.wrapping_mul(100_003).wrapping_add(day),
        ));
        // Fixed per-device timezone offset (not per-day).
        let mut tz_rng = rng::seeded(rng::derive_seed(self.seed ^ 0x72, device));
        let tz_offset_h = (tz_rng.random::<f64>() - 0.5) * self.config.timezone_spread_hours;
        let mut out = Vec::with_capacity(2);
        // Overnight window.
        let start_h = (self.config.night_start_hour
            + tz_offset_h
            + rng::normal_with_std(&mut r, self.config.night_start_std))
        .clamp(15.0, 30.0);
        let dur_h = (self.config.night_duration_hours
            + rng::normal_with_std(&mut r, self.config.night_duration_std))
        .clamp(2.0, 14.0);
        let start = day * DAY_MS + (start_h * HOUR_MS as f64) as u64;
        out.push(Window {
            start_ms: start,
            end_ms: start + (dur_h * HOUR_MS as f64) as u64,
        });
        // Optional daytime bout (e.g. desk charging around midday).
        if r.random::<f64>() < self.config.daytime_bout_probability {
            let bout_start_h = 9.0 + tz_offset_h.max(-2.0) + r.random::<f64>() * 9.0; // ~09:00–18:00 local
            let bout_dur_h = (self.config.daytime_bout_hours
                + rng::normal_with_std(&mut r, 0.5))
            .clamp(0.2, 3.0);
            let bstart = day * DAY_MS + (bout_start_h * HOUR_MS as f64) as u64;
            out.push(Window {
                start_ms: bstart,
                end_ms: bstart + (bout_dur_h * HOUR_MS as f64) as u64,
            });
        }
        out
    }

    /// Whether `device` is eligible at absolute time `t_ms`.
    pub fn is_eligible(&self, device: u64, t_ms: u64) -> bool {
        self.current_window(device, t_ms).is_some()
    }

    /// The window containing `t_ms`, if any (used to predict the
    /// eligibility-change drop-out time of a selected device).
    pub fn current_window(&self, device: u64, t_ms: u64) -> Option<Window> {
        let day = t_ms / DAY_MS;
        for d in [day.saturating_sub(1), day] {
            for w in self.windows(device, d) {
                if w.contains(t_ms) {
                    return Some(w);
                }
            }
        }
        None
    }

    /// The next time ≥ `t_ms` at which the device becomes eligible
    /// (returns `t_ms` itself if already eligible). Searches up to two
    /// days ahead.
    pub fn next_eligible_at(&self, device: u64, t_ms: u64) -> Option<u64> {
        if self.is_eligible(device, t_ms) {
            return Some(t_ms);
        }
        let day = t_ms / DAY_MS;
        let mut best: Option<u64> = None;
        for d in day..=day + 2 {
            for w in self.windows(device, d) {
                if w.start_ms >= t_ms {
                    best = Some(best.map_or(w.start_ms, |b| b.min(w.start_ms)));
                }
            }
        }
        best
    }

    /// Fraction of a fleet of `n` devices eligible at `t_ms` (exact count).
    pub fn eligible_fraction(&self, n: u64, t_ms: u64) -> f64 {
        let count = (0..n).filter(|&d| self.is_eligible(d, t_ms)).count();
        count as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn night_availability_dominates_day() {
        let model = DiurnalAvailability::us_centric(7);
        let n = 2_000;
        // 03:00 on day 1 (inside most overnight windows started day 0).
        let night = model.eligible_fraction(n, DAY_MS + 3 * HOUR_MS);
        // 15:00 on day 1 (only daytime bouts).
        let day = model.eligible_fraction(n, DAY_MS + 15 * HOUR_MS);
        assert!(night > 0.45, "night fraction {night}");
        assert!(day < 0.25, "day fraction {day}");
        // The paper reports a ~4× swing for a US-centric population.
        let swing = night / day.max(1e-9);
        assert!((2.5..12.0).contains(&swing), "swing {swing}");
    }

    #[test]
    fn windows_are_deterministic() {
        let model = DiurnalAvailability::us_centric(9);
        assert_eq!(model.windows(5, 2), model.windows(5, 2));
        assert_ne!(model.windows(5, 2), model.windows(6, 2));
    }

    #[test]
    fn current_window_spans_midnight() {
        let model = DiurnalAvailability::us_centric(11);
        // Find a device eligible at 02:00 on day 1; its window must have
        // started on day 0 and contain the query time.
        let t = DAY_MS + 2 * HOUR_MS;
        let device = (0..500)
            .find(|&d| model.is_eligible(d, t))
            .expect("someone is charging at 2am");
        let w = model.current_window(device, t).unwrap();
        assert!(w.contains(t));
        assert!(w.start_ms < DAY_MS, "window started the previous day");
    }

    #[test]
    fn next_eligible_at_finds_the_upcoming_window() {
        let model = DiurnalAvailability::us_centric(13);
        // 17:30 (most devices ineligible): the next window must start
        // within ~12 hours for almost everyone.
        let t = DAY_MS + 17 * HOUR_MS + 30 * 60_000;
        for device in 0..50 {
            if model.is_eligible(device, t) {
                assert_eq!(model.next_eligible_at(device, t), Some(t));
                continue;
            }
            let next = model.next_eligible_at(device, t).expect("has a window");
            assert!(next > t);
            assert!(next - t < 20 * HOUR_MS, "device {device} waits too long");
            assert!(model.is_eligible(device, next));
        }
    }

    #[test]
    fn daytime_windows_are_short() {
        // Daytime eligibility comes from short bouts → devices selected
        // then are more likely to hit a window edge (daytime drop-outs).
        let model = DiurnalAvailability::us_centric(17);
        let t = DAY_MS + 13 * HOUR_MS;
        let mut remaining: Vec<u64> = Vec::new();
        for device in 0..3_000 {
            if let Some(w) = model.current_window(device, t) {
                remaining.push(w.end_ms - t);
            }
        }
        assert!(!remaining.is_empty());
        let mean_remaining_h =
            remaining.iter().sum::<u64>() as f64 / remaining.len() as f64 / HOUR_MS as f64;
        assert!(
            mean_remaining_h < 3.5,
            "daytime windows should be short, mean {mean_remaining_h}h"
        );
    }
}
