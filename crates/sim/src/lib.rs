//! `fl-sim` — the discrete-event fleet simulator.
//!
//! The paper's operational data (Sec. 9 and Appendix A) comes from a
//! production fleet of ~10M devices that this reproduction cannot have.
//! `fl-sim` replaces it with the closest synthetic equivalent: an
//! event-driven simulation of a device fleet with
//!
//! * [`availability`] — a diurnal eligibility model (devices are idle,
//!   charging, and on WiFi mostly at night; Fig. 5's "4× difference
//!   between low and high numbers of participating devices"),
//! * [`network`] — per-device latency/bandwidth/failure models,
//! * [`des`] — the virtual-clock event queue,
//! * [`chaos`] — seeded, replayable fault injection against the real
//!   server stack, auditing the Sec. 4.2/4.4 recovery guarantees,
//! * [`netchaos`] — network chaos at the wire boundary: seeded
//!   `FaultyTransport` scripts mangle device report frames in flight
//!   through the live sharded topology, auditing the at-most-once
//!   report accounting and the device reconnect/resume protocol,
//! * [`explore`] — seeded schedule exploration: the live actor tree
//!   under permuted mailbox delivery (via the `fl-actors`
//!   `ScheduleExplorer`) and chaos plans under permuted device timing,
//!   auditing the never-hang / exactly-one-commit / storage-write /
//!   obituary-exactly-once invariants across K legal interleavings,
//! * [`overload`] — flash-crowd / thundering-herd / diurnal-ramp stress
//!   scenarios auditing the Sec. 2.3 flow-control loop (admission
//!   shedding, closed-loop pace steering, device retry budgets),
//! * [`multi`] — multi-population (multi-tenant) scenarios: several FL
//!   populations sharing one fleet and one Selector layer, auditing
//!   cross-population fairness under asymmetric load (a flash crowd in
//!   one tenant must not starve another's accepts or commits) and the
//!   device-side single-active-session arbitration (Sec. 2.1/3),
//! * [`fleet`] — the fleet-dynamics scenario driving the real
//!   `fl-server` round state machines with tens of thousands of simulated
//!   devices over simulated days (regenerates Figs. 5–9 and Table 1),
//! * [`training`] — the convergence scenario running *real* on-device
//!   training (`fl-device` runtime over `fl-data` stores) through the real
//!   `fl-server` Coordinator (regenerates the Sec. 8 next-word-prediction
//!   experiment and clients-per-round sweeps).

pub mod availability;
pub mod chaos;
pub mod des;
pub mod explore;
pub mod fleet;
pub mod multi;
pub mod netchaos;
pub mod network;
pub mod overload;
pub mod training;

pub use availability::DiurnalAvailability;
pub use chaos::{run_chaos_with_schedule, ChaosConfig, ChaosReport, Fault, FaultPlan};
pub use explore::{explore_chaos, explore_live_round, explore_secagg_live_round, ExploreReport};
pub use fleet::{FleetConfig, FleetReport};
pub use multi::{run_multi_tenant, MultiTenantConfig, MultiTenantReport};
pub use netchaos::{run_wire_chaos, run_wire_chaos_secagg, WireChaosReport};
pub use overload::{OverloadConfig, OverloadReport, OverloadScenario};
pub use training::{TrainingRunConfig, TrainingRunReport};

/// Milliseconds per hour, used throughout the simulator.
pub const HOUR_MS: u64 = 3_600_000;
/// Milliseconds per day.
pub const DAY_MS: u64 = 24 * HOUR_MS;
