//! Convergence simulation: real federated training end-to-end.
//!
//! Unlike [`crate::fleet`] (protocol dynamics, synthetic payloads), this
//! scenario runs the *actual* stack per round: the `fl-server`
//! [`Coordinator`] serves plans and checkpoints, each selected client's
//! `fl-device` [`FlRuntime`] interprets the plan against its own example
//! store and trains the real `fl-ml` model, and updates flow back through
//! the codec into the streaming Master Aggregator (optionally under
//! Secure Aggregation). This is what regenerates the Sec. 8 next-word-
//! prediction result and the clients-per-round convergence sweep.

use fl_core::plan::{CodecSpec, FlPlan, ModelSpec};
use fl_core::population::{FlTask, TaskGroup, TaskSelectionStrategy};
use fl_core::round::RoundConfig;
use fl_core::{CoreError, DeviceId};
use fl_data::store::{InMemoryStore, StoreConfig};
use fl_device::runtime::{ExecutionOutcome, FlRuntime};
use fl_ml::metrics::top1_accuracy;
use fl_ml::rng;
use fl_ml::Example;
use fl_server::coordinator::{Coordinator, CoordinatorConfig};
use fl_server::storage::InMemoryCheckpointStore;
use rand::RngExt;

/// Configuration of a federated training run.
#[derive(Debug, Clone)]
pub struct TrainingRunConfig {
    /// The model to train.
    pub model: ModelSpec,
    /// Number of federated rounds.
    pub rounds: u64,
    /// Target clients per round (`K`).
    pub clients_per_round: usize,
    /// Over-selection factor (paper: 1.3).
    pub overselection: f64,
    /// Local epochs per client.
    pub local_epochs: usize,
    /// Local minibatch size.
    pub batch_size: usize,
    /// Local learning rate.
    pub learning_rate: f32,
    /// Update compression codec.
    pub codec: CodecSpec,
    /// Secure Aggregation group size `k` (`None` = plain).
    pub secagg_k: Option<usize>,
    /// Server-side DP-FedAvg mechanism (`None` = off).
    pub dp: Option<fl_core::privacy::DpConfig>,
    /// Probability a configured client drops out before reporting.
    pub dropout_probability: f64,
    /// Evaluate on the test set every this many rounds (0 = only at end).
    pub eval_every: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TrainingRunConfig {
    fn default() -> Self {
        TrainingRunConfig {
            model: ModelSpec::Logistic {
                dim: 16,
                classes: 4,
                seed: 1,
            },
            rounds: 30,
            clients_per_round: 10,
            overselection: 1.3,
            local_epochs: 1,
            batch_size: 16,
            learning_rate: 0.1,
            codec: CodecSpec::Identity,
            secagg_k: None,
            dp: None,
            dropout_probability: 0.08,
            eval_every: 5,
            seed: 99,
        }
    }
}

/// One evaluation point in the run history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPoint {
    /// Round after which the evaluation ran.
    pub round: u64,
    /// Top-1 accuracy (or recall, for next-token tasks) on the test set.
    pub accuracy: f64,
    /// Clients whose updates were incorporated that round.
    pub incorporated: usize,
}

/// The result of a federated training run.
#[derive(Debug, Clone)]
pub struct TrainingRunReport {
    /// Evaluation history.
    pub history: Vec<EvalPoint>,
    /// Final global parameters.
    pub final_params: Vec<f32>,
    /// Committed rounds.
    pub committed_rounds: u64,
    /// Abandoned rounds.
    pub abandoned_rounds: u64,
    /// Total server download/upload bytes.
    pub download_bytes: u64,
    /// Total upload bytes.
    pub upload_bytes: u64,
}

impl TrainingRunReport {
    /// Final accuracy (last evaluation point).
    pub fn final_accuracy(&self) -> f64 {
        self.history.last().map_or(0.0, |p| p.accuracy)
    }
}

/// Runs federated training over per-user datasets.
///
/// `users[i]` is user `i`'s on-device data; `test_set` is the held-out
/// global evaluation set.
///
/// # Errors
///
/// Propagates protocol/aggregation errors.
///
/// # Panics
///
/// Panics if `users` is empty or smaller than one round's selection
/// target.
pub fn run_federated(
    config: &TrainingRunConfig,
    users: &[Vec<Example>],
    test_set: &[Example],
) -> Result<TrainingRunReport, CoreError> {
    let target = (config.clients_per_round as f64 * config.overselection).ceil() as usize;
    assert!(!users.is_empty(), "need at least one user");
    assert!(
        users.len() >= target,
        "population of {} smaller than selection target {target}",
        users.len()
    );

    // Build each user's on-device example store once.
    let stores: Vec<InMemoryStore> = users
        .iter()
        .map(|data| InMemoryStore::with_examples(StoreConfig::default(), data.clone(), 0))
        .collect();

    // Deploy the task.
    let round_config = RoundConfig {
        goal_count: config.clients_per_round,
        overselection: config.overselection,
        min_goal_fraction: 0.6,
        selection_timeout_ms: 60_000,
        report_window_ms: 600_000,
        device_cap_ms: 600_000,
    };
    let mut task = FlTask::training("sim-train", "sim/pop").with_round(round_config);
    if let Some(k) = config.secagg_k {
        task = task.with_secagg(k);
    }
    if let Some(dp) = config.dp {
        task = task.with_dp(dp);
    }
    let plan = FlPlan::standard_training(
        config.model,
        config.local_epochs,
        config.batch_size,
        config.learning_rate,
        config.codec,
    );
    let initial = config.model.instantiate().params().to_vec();
    let mut coordinator = Coordinator::new(
        CoordinatorConfig::new("sim/pop", config.seed),
        InMemoryCheckpointStore::new(),
    );
    coordinator.deploy(
        TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
        vec![plan],
        initial,
    )?;

    let runtime = FlRuntime::new(fl_core::plan::CURRENT_RUNTIME_VERSION);
    let mut driver_rng = rng::seeded(config.seed);
    let mut report = TrainingRunReport {
        history: Vec::new(),
        final_params: Vec::new(),
        committed_rounds: 0,
        abandoned_rounds: 0,
        download_bytes: 0,
        upload_bytes: 0,
    };

    let mut now_ms: u64 = 0;
    for round_idx in 1..=config.rounds {
        let mut round = coordinator.begin_round(now_ms)?;
        // Selection: sample `target` distinct users.
        let selected = rng::reservoir_sample(&mut driver_rng, users.len(), target);
        for &u in &selected {
            round.on_checkin(DeviceId(u as u64), now_ms);
        }
        // All participants execute the plan; drop-outs vanish.
        let participants = round.state.participants();
        now_ms += 1_000;
        for d in participants {
            let user = d.0 as usize;
            if driver_rng.random::<f64>() < config.dropout_probability {
                round.on_dropout(d, now_ms);
                continue;
            }
            let outcome = runtime.execute(
                &round.plan.device,
                &round.checkpoint,
                &stores[user],
                None,
            )?;
            match outcome {
                ExecutionOutcome::Completed {
                    update_bytes,
                    weight,
                    loss,
                    accuracy,
                    ..
                } => {
                    if weight == 0 {
                        round.on_dropout(d, now_ms);
                        continue;
                    }
                    let bytes = update_bytes.unwrap_or_default();
                    round.on_report(
                        d,
                        now_ms,
                        &bytes,
                        weight,
                        if loss.is_nan() { 0.0 } else { loss },
                        if accuracy.is_nan() { 0.0 } else { accuracy },
                    )?;
                }
                ExecutionOutcome::Interrupted { .. } => {
                    round.on_dropout(d, now_ms);
                }
            }
            now_ms += 10;
        }
        // Close the reporting window.
        now_ms += round_config.report_window_ms;
        round.on_tick(now_ms);
        round.record_participation_metrics();
        let outcome = coordinator.complete_round(round)?;
        let incorporated = match outcome {
            fl_core::RoundOutcome::Committed { incorporated, .. } => {
                report.committed_rounds += 1;
                incorporated
            }
            _ => {
                report.abandoned_rounds += 1;
                0
            }
        };

        let is_eval_round = config.eval_every > 0 && round_idx % config.eval_every == 0;
        if is_eval_round || round_idx == config.rounds {
            let params = coordinator.global_params("sim-train")?;
            let mut model = config.model.instantiate();
            model.set_params(&params)?;
            let accuracy = if test_set.is_empty() {
                0.0
            } else {
                top1_accuracy(model.as_ref(), test_set)?
            };
            report.history.push(EvalPoint {
                round: round_idx,
                accuracy,
                incorporated,
            });
        }
    }

    report.final_params = coordinator.global_params("sim-train")?;
    report.download_bytes = coordinator.traffic().download_bytes();
    report.upload_bytes = coordinator.traffic().upload_bytes();
    Ok(report)
}

/// Centralized SGD baseline over pooled data — the "server-trained" model
/// of Sec. 8 that FL is compared against.
///
/// # Errors
///
/// Propagates model errors.
pub fn run_centralized(
    model_spec: ModelSpec,
    train: &[Example],
    test: &[Example],
    epochs: usize,
    batch_size: usize,
    learning_rate: f32,
    seed: u64,
) -> Result<f64, CoreError> {
    use fl_ml::optim::{Optimizer, Sgd};
    let mut model = model_spec.instantiate();
    let mut opt = Sgd::new(learning_rate);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut shuffle_rng = rng::seeded(seed);
    for _ in 0..epochs {
        // Fresh shuffle each epoch.
        for i in (1..order.len()).rev() {
            let j = shuffle_rng.random_range(0..=i);
            order.swap(i, j);
        }
        let shuffled: Vec<Example> = order.iter().map(|&i| train[i].clone()).collect();
        for chunk in shuffled.chunks(batch_size.max(1)) {
            let (_, grad) = model.loss_and_grad(chunk)?;
            opt.step(model.params_mut(), &grad);
        }
    }
    Ok(top1_accuracy(model.as_ref(), test)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_data::synth::classification::{generate, ClassificationConfig};

    fn dataset() -> fl_data::synth::classification::FederatedClassification {
        generate(&ClassificationConfig {
            users: 40,
            examples_per_user: 40,
            separation: 3.0,
            noise: 0.8,
            ..Default::default()
        })
    }

    #[test]
    fn federated_training_converges_on_separable_data() {
        let data = dataset();
        let config = TrainingRunConfig {
            rounds: 25,
            clients_per_round: 8,
            learning_rate: 0.2,
            local_epochs: 2,
            ..Default::default()
        };
        let report = run_federated(&config, &data.users, &data.test_set).unwrap();
        assert!(report.committed_rounds >= 20);
        let final_acc = report.final_accuracy();
        assert!(final_acc > 0.85, "final accuracy {final_acc}");
        // Accuracy does not degrade over the run (it may already be near
        // the ceiling at the first evaluation).
        let first = report.history.first().unwrap().accuracy;
        assert!(
            final_acc >= first - 0.02,
            "accuracy degraded: {first} -> {final_acc}"
        );
    }

    #[test]
    fn federated_matches_centralized_shape() {
        let data = dataset();
        let config = TrainingRunConfig {
            rounds: 30,
            clients_per_round: 10,
            learning_rate: 0.2,
            local_epochs: 2,
            ..Default::default()
        };
        let fed = run_federated(&config, &data.users, &data.test_set)
            .unwrap()
            .final_accuracy();
        let central = run_centralized(
            config.model,
            &data.centralized(),
            &data.test_set,
            3,
            16,
            0.2,
            7,
        )
        .unwrap();
        assert!(
            (fed - central).abs() < 0.1,
            "federated {fed} vs centralized {central}"
        );
    }

    #[test]
    fn secagg_run_matches_plain_run_closely() {
        let data = dataset();
        let base = TrainingRunConfig {
            rounds: 10,
            clients_per_round: 8,
            learning_rate: 0.2,
            dropout_probability: 0.0,
            ..Default::default()
        };
        let plain = run_federated(&base, &data.users, &data.test_set).unwrap();
        let secure = run_federated(
            &TrainingRunConfig {
                secagg_k: Some(4),
                ..base
            },
            &data.users,
            &data.test_set,
        )
        .unwrap();
        // Same selection stream (same seed) → near-identical trajectories
        // up to fixed-point quantization.
        assert_eq!(plain.committed_rounds, secure.committed_rounds);
        let diff = (plain.final_accuracy() - secure.final_accuracy()).abs();
        assert!(diff < 0.05, "accuracy diverged by {diff}");
    }

    #[test]
    fn compression_still_converges() {
        let data = dataset();
        let config = TrainingRunConfig {
            rounds: 25,
            clients_per_round: 8,
            learning_rate: 0.2,
            local_epochs: 2,
            codec: CodecSpec::Quantize { block: 64 },
            ..Default::default()
        };
        let report = run_federated(&config, &data.users, &data.test_set).unwrap();
        assert!(report.final_accuracy() > 0.8);
        // Compressed uploads shrink upload traffic relative to identity.
        let id_report = run_federated(
            &TrainingRunConfig {
                codec: CodecSpec::Identity,
                ..config
            },
            &data.users,
            &data.test_set,
        )
        .unwrap();
        assert!(report.upload_bytes < id_report.upload_bytes * 2 / 5);
    }

    #[test]
    fn dp_with_moderate_noise_still_converges() {
        let data = dataset();
        let config = TrainingRunConfig {
            rounds: 25,
            clients_per_round: 10,
            learning_rate: 0.2,
            local_epochs: 2,
            dp: Some(fl_core::privacy::DpConfig::new(50.0, 0.002, 13)),
            ..Default::default()
        };
        let report = run_federated(&config, &data.users, &data.test_set).unwrap();
        assert!(
            report.final_accuracy() > 0.75,
            "DP run accuracy {}",
            report.final_accuracy()
        );
    }

    #[test]
    fn heavy_dp_noise_degrades_accuracy() {
        let data = dataset();
        let base = TrainingRunConfig {
            rounds: 15,
            clients_per_round: 10,
            learning_rate: 0.2,
            local_epochs: 2,
            ..Default::default()
        };
        let clean = run_federated(&base, &data.users, &data.test_set)
            .unwrap()
            .final_accuracy();
        let noisy = run_federated(
            &TrainingRunConfig {
                dp: Some(fl_core::privacy::DpConfig::new(1.0, 5.0, 13)),
                ..base
            },
            &data.users,
            &data.test_set,
        )
        .unwrap()
        .final_accuracy();
        assert!(
            noisy < clean - 0.05,
            "heavy noise must cost accuracy: clean {clean}, noisy {noisy}"
        );
    }

    #[test]
    fn dropouts_reduce_incorporated_but_not_convergence() {
        let data = dataset();
        let config = TrainingRunConfig {
            rounds: 20,
            clients_per_round: 8,
            dropout_probability: 0.25,
            learning_rate: 0.2,
            local_epochs: 2,
            ..Default::default()
        };
        let report = run_federated(&config, &data.users, &data.test_set).unwrap();
        // Over-selection absorbs the drop-outs.
        assert!(report.committed_rounds >= 15);
        assert!(report.final_accuracy() > 0.8);
    }
}
