//! Seeded schedule exploration of the live actor topology (Sec. 4.2,
//! 4.4).
//!
//! The chaos harness explores *fault* schedules on a virtual clock; this
//! module explores *delivery* schedules on the real threaded runtime. It
//! installs a [`ScheduleExplorer`] — the `fl-actors` fault-injector that
//! answers `Reorder` for a seeded subset of mailbox deliveries — and
//! drives the full live round from `fl-server` (Selector actor →
//! Coordinator actor → ephemeral Master Aggregator subtree → shared
//! checkpoint store) under the permuted schedule, auditing the standing
//! invariants:
//!
//! * **never hang** — every wait in the scenario is deadline-bounded, and
//!   a missed deadline is a reported violation, not a stuck test;
//! * **exactly one commit** — one round begins and exactly one commit
//!   reaches storage, whatever order the mailboxes drained in;
//! * **storage audit** — `write_count == 1 + committed` (the deployment
//!   write plus one per committed round; per-device updates are never
//!   persisted, Sec. 4.2);
//! * **obituaries exactly once** — every independent `deaths()`
//!   subscriber sees each actor's obituary exactly once (the invariant
//!   the Sec. 4.4 "respawn happens exactly once" recovery loop hinges
//!   on).
//!
//! All of these are schedule-invariant by design, so
//! [`ExploreReport::render`] is byte-identical across replays of one
//! schedule seed — a failing seed is a self-contained repro, same
//! discipline as `ChaosReport`.

use crate::chaos::{run_chaos_with_schedule, ChaosConfig, ChaosReport, FaultPlan};
use crossbeam::channel::unbounded;
use fl_actors::{audit_exactly_once, ActorSystem, DeathReason, LockingService, ScheduleExplorer};
use fl_core::plan::{CodecSpec, FlPlan, ModelSpec};
use fl_core::population::{FlTask, TaskGroup, TaskSelectionStrategy};
use fl_core::round::RoundConfig;
use fl_core::DeviceId;
use fl_server::coordinator::CoordinatorConfig;
use fl_server::live::{coordinator_lease_name, CoordMsg, CoordinatorActor, DeviceConn, SelectorMsg};
use fl_server::wire::WireMessage;
use fl_server::pace::PaceSteering;
use fl_server::shedding::GlobalAdmissionConfig;
use fl_server::storage::{CheckpointStore, InMemoryCheckpointStore, SharedCheckpointStore};
use fl_server::topology::{spawn_topology, SelectorSpec, TopologyBlueprint};
use std::sync::Arc;
use std::time::Duration;

/// The task name the explored round trains.
const TASK_NAME: &str = "t";
/// The population the explored coordinator owns.
const POPULATION: &str = "explore/pop";
/// Devices participating in the explored round (equals the round goal).
const DEVICES: u64 = 4;
/// Obituaries the scenario must produce — each exactly once, in every
/// subscriber view: the tree's two long-lived actors plus the round's
/// ephemeral Master Aggregator subtree (one shard for 4 devices).
const EXPECTED_OBITUARIES: &[&str] = &[
    "coordinator",
    "selector-0",
    "coordinator/master-r1",
    "coordinator/master-r1/agg-0",
];
/// Bound on completion polls (~20 ms apart): the never-hang deadline.
const MAX_POLLS: u32 = 500;
/// Bound on any single channel wait.
const WAIT: Duration = Duration::from_secs(10);

/// Outcome of one explored schedule. Every field is schedule-invariant
/// (no reorder counts, no tick counts), so [`ExploreReport::render`] is
/// byte-identical across replays of one seed.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Scenario tag (`"live-round"`).
    pub scenario: &'static str,
    /// The explorer seed this schedule was generated from.
    pub schedule_seed: u64,
    /// Rounds committed (must be exactly 1).
    pub committed: u64,
    /// Checkpoint writes observed (must equal `1 + committed`).
    pub write_count: u64,
    /// Obituaries from one subscriber view, sorted by actor name, with
    /// the death-reason kind (`normal` / `panicked`).
    pub obituaries: Vec<(String, String)>,
    /// Invariant violations; empty on a clean run.
    pub violations: Vec<String>,
}

impl ExploreReport {
    /// Whether every invariant held under this schedule.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Canonical text form — byte-identical across replays of one seed.
    pub fn render(&self) -> String {
        let mut out = format!(
            "scenario={} schedule_seed={}\ncommitted={} write_count={}\n",
            self.scenario, self.schedule_seed, self.committed, self.write_count
        );
        for (name, reason) in &self.obituaries {
            out.push_str(&format!("obituary {name} reason={reason}\n"));
        }
        out.push_str(&format!("violations={}\n", self.violations.len()));
        for v in &self.violations {
            out.push_str("violation: ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// What one device client thread observed.
enum DeviceOutcome {
    Accepted,
    Failed(String),
}

/// Drives one full live round — check-in, configuration, report,
/// aggregation, commit, shutdown — with every mailbox in the tree
/// subject to seeded delivery reordering, and audits the standing
/// invariants. See the module docs for the list.
pub fn explore_live_round(schedule_seed: u64) -> ExploreReport {
    explore_round("live-round", schedule_seed, None)
}

/// [`explore_live_round`] with Secure Aggregation enabled (Sec. 6 over
/// the Sec. 4 tree): devices report fixed-point field vectors, the
/// round's single shard runs the four-round protocol at finalize, and a
/// scripted share-stage dropout forces mask reconstruction — all under
/// the same seeded mailbox reordering, holding the same invariants.
pub fn explore_secagg_live_round(schedule_seed: u64) -> ExploreReport {
    explore_round("secagg-live-round", schedule_seed, Some(2))
}

fn explore_round(
    scenario: &'static str,
    schedule_seed: u64,
    secagg_k: Option<usize>,
) -> ExploreReport {
    let mut report = ExploreReport {
        scenario,
        schedule_seed,
        committed: 0,
        write_count: 0,
        obituaries: Vec::new(),
        violations: Vec::new(),
    };

    let system = ActorSystem::new();
    system.install_fault_injector(Arc::new(ScheduleExplorer::new(schedule_seed)));

    let spec = ModelSpec::Logistic {
        dim: 4,
        classes: 2,
        seed: 0,
    };
    let dim = spec.num_params();
    let round = RoundConfig {
        goal_count: DEVICES as usize,
        overselection: 1.0,
        min_goal_fraction: 1.0,
        selection_timeout_ms: 5_000,
        report_window_ms: 10_000,
        device_cap_ms: 10_000,
    };
    let mut task = FlTask::training(TASK_NAME, POPULATION).with_round(round);
    if let Some(k) = secagg_k {
        task = task.with_secagg(k);
    }
    let plan = FlPlan::standard_training(spec, 1, 8, 0.1, CodecSpec::Identity);
    let group = TaskGroup::new(vec![task], TaskSelectionStrategy::Single);

    // An external shared store + a manually acquired lease: the same
    // wiring a respawned incarnation uses, and the only way the harness
    // can audit write_count after the coordinator is gone.
    let store = SharedCheckpointStore::new(InMemoryCheckpointStore::new());
    let locks = LockingService::new();
    let config = CoordinatorConfig::new(POPULATION, 7);
    let lease_name = coordinator_lease_name(&config.population);
    let Some(lease) = locks.acquire(lease_name.clone(), lease_name.clone()) else {
        report.violations.push("could not acquire coordinator lease".into());
        return report;
    };
    let coordinator = CoordinatorActor::with_store(
        config,
        group,
        vec![plan],
        vec![0.0; dim],
        locks.clone(),
        lease,
        store.clone(),
    );

    // One selector, with a shared admission budget and overload telemetry
    // attached so the exploration also exercises those lock sites.
    let blueprint = TopologyBlueprint::new(vec![SelectorSpec::new(
        PaceSteering::new(1_000, 10),
        100,
        1,
        10,
    )])
    .with_global_admission(GlobalAdmissionConfig {
        window_ms: 60_000,
        max_admits_per_window: 100,
    })
    .with_telemetry(Default::default());
    let topology = spawn_topology(&system, coordinator, &blueprint);
    let (selector_refs, coord_ref) = (topology.selectors, topology.coordinator);

    // One client thread per device: check in, wait for configuration,
    // report. Every wait is bounded — a timeout is a violation.
    let handles: Vec<_> = (0..DEVICES)
        .map(|i| {
            let sel = selector_refs[0].clone();
            let coord = coord_ref.clone();
            std::thread::spawn(move || -> DeviceOutcome {
                let conn = DeviceConn::connect(DeviceId(i), POPULATION, sel, coord);
                if conn.check_in().is_err() {
                    return DeviceOutcome::Failed(format!("device {i}: selector gone"));
                }
                loop {
                    match conn.recv(WAIT) {
                        Ok(WireMessage::PlanAndCheckpoint {
                            plan, checkpoint, ..
                        }) => {
                            let dim = plan.server.expected_dim;
                            if checkpoint.len() != dim {
                                return DeviceOutcome::Failed(format!(
                                    "device {i}: checkpoint dim {} != plan dim {dim}",
                                    checkpoint.len()
                                ));
                            }
                            let update = vec![0.25f32; dim];
                            let round = checkpoint.round;
                            let sent = if secagg_k.is_some() {
                                match fl_ml::fixedpoint::FixedPointEncoder::default_for_updates()
                                    .encode(&update)
                                {
                                    Ok(field) => conn.report_secagg(round, 1, field, 4, 0.5, 0.8),
                                    Err(e) => {
                                        return DeviceOutcome::Failed(format!(
                                            "device {i}: fixed-point encode failed: {e}"
                                        ))
                                    }
                                }
                            } else {
                                let bytes = CodecSpec::Identity.build().encode(&update);
                                conn.report(round, 1, bytes, 4, 0.5, 0.8)
                            };
                            if sent.is_err() {
                                return DeviceOutcome::Failed(format!(
                                    "device {i}: coordinator gone"
                                ));
                            }
                        }
                        Ok(WireMessage::ReportAck { accepted: true, .. }) => {
                            return DeviceOutcome::Accepted
                        }
                        Ok(other) => {
                            return DeviceOutcome::Failed(format!(
                                "device {i}: unexpected reply {other:?}"
                            ))
                        }
                        Err(_) => {
                            return DeviceOutcome::Failed(format!(
                                "device {i}: hung waiting for a reply"
                            ))
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        match h.join() {
            Ok(DeviceOutcome::Accepted) => {}
            Ok(DeviceOutcome::Failed(why)) => report.violations.push(why),
            Err(_) => report.violations.push("device thread panicked".into()),
        }
    }

    // SecAgg: one device vanishes *after* its masked contribution is
    // staged — the expensive recovery path (Shamir mask reconstruction
    // from the survivors' shares) must also hold under every schedule.
    if secagg_k.is_some() {
        let _ = coord_ref.send(CoordMsg::DeviceDropped {
            device: DeviceId(DEVICES - 1),
            stage: fl_server::aggregator::DropStage::Share,
        });
    }

    // Poll for completion off the timer wheel, never with a raw sleep;
    // a bounded number of polls is the never-hang deadline.
    let wheel = fl_actors::timer::TimerWheel::new();
    let mut completed = false;
    for _ in 0..MAX_POLLS {
        let (tx, rx) = unbounded();
        if coord_ref.send(CoordMsg::TryCompleteRound { reply: tx }).is_err() {
            report.violations.push("coordinator died before completing".into());
            break;
        }
        match rx.recv_timeout(WAIT) {
            Ok(Some(outcome)) => {
                if !outcome.is_committed() {
                    report
                        .violations
                        .push(format!("round finished uncommitted: {outcome:?}"));
                }
                completed = true;
                break;
            }
            Ok(None) => {}
            Err(_) => {
                report.violations.push("TryCompleteRound reply hung".into());
                break;
            }
        }
        let _ = coord_ref.send(CoordMsg::Tick);
        let (poll_tx, poll_rx) = unbounded::<()>();
        wheel.schedule(Duration::from_millis(20), move || {
            let _ = poll_tx.send(());
        });
        let _ = poll_rx.recv_timeout(WAIT);
    }
    wheel.shutdown();
    if !completed && report.violations.is_empty() {
        report
            .violations
            .push(format!("round hung past {MAX_POLLS} completion polls"));
    }

    for s in &selector_refs {
        let _ = s.send(SelectorMsg::Shutdown);
    }
    let _ = coord_ref.send(CoordMsg::Shutdown);
    system.join();

    // Storage audit (Sec. 4.2): one deployment write plus exactly one
    // commit; per-device updates never touched the store.
    // The committed-round count is the latest checkpoint's round id:
    // deployment writes r0, each committed round advances it by one.
    report.committed = store.with(|s| {
        s.latest(TASK_NAME).map(|ck| ck.round.0).unwrap_or(0)
    });
    report.write_count = store.write_count();
    if report.committed != 1 {
        report
            .violations
            .push(format!("committed {} rounds, want exactly 1", report.committed));
    }
    if report.write_count != 1 + report.committed {
        report.violations.push(format!(
            "write_count {} != 1 + committed {}",
            report.write_count, report.committed
        ));
    }
    // Clean shutdown must have released population ownership.
    if locks.lookup(&lease_name).is_some() {
        report
            .violations
            .push("coordinator lease still held after clean shutdown".into());
    }

    // Obituaries exactly once, in every independent subscriber view
    // (each `deaths()` receiver replays the full log).
    let views: Vec<Vec<_>> = (0..2)
        .map(|_| system.deaths().try_iter().collect())
        .collect();
    report
        .violations
        .extend(audit_exactly_once(&views, EXPECTED_OBITUARIES));
    let mut obituaries: Vec<(String, String)> = views[0]
        .iter()
        .map(|o| {
            let reason = match &o.reason {
                DeathReason::Normal => "normal".to_string(),
                DeathReason::Panicked(_) => "panicked".to_string(),
            };
            (o.name.clone(), reason)
        })
        .collect();
    obituaries.sort();
    report.obituaries = obituaries;
    report
}

/// Explores one chaos fault plan under an alternative delivery schedule:
/// a thin, discoverable alias for
/// [`crate::chaos::run_chaos_with_schedule`] so both exploration axes
/// (threaded mailbox order here, virtual-clock timing there) live behind
/// one module.
pub fn explore_chaos(plan_seed: u64, schedule_seed: u64, config: &ChaosConfig) -> ChaosReport {
    let plan = FaultPlan::generate(plan_seed, config.horizon_ms);
    run_chaos_with_schedule(&plan, config, schedule_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explored_live_round_holds_invariants() {
        let report = explore_live_round(3);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.committed, 1);
        assert_eq!(report.write_count, 2);
        assert_eq!(report.obituaries.len(), EXPECTED_OBITUARIES.len());
    }

    #[test]
    fn unperturbed_schedule_is_clean_too() {
        // Seed or no seed, the explorer must never *cause* a violation:
        // rate 0 reorders nothing and the scenario still commits.
        let report = explore_live_round(0);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn report_is_byte_identical_per_seed() {
        assert_eq!(explore_live_round(5).render(), explore_live_round(5).render());
    }

    #[test]
    fn explored_secagg_round_reconstructs_masks_and_commits_once() {
        let report = explore_secagg_live_round(3);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.committed, 1);
        assert_eq!(report.write_count, 2);
        assert_eq!(report.obituaries.len(), EXPECTED_OBITUARIES.len());
    }
}
