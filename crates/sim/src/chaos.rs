//! Deterministic fault injection across the server stack (Sec. 4.2, 4.4).
//!
//! "The FL server must be able to recover from these failures … in all
//! [failure] cases the system will continue to make progress" (Sec. 4.4).
//! This module turns that claim into an executable, *replayable* check: a
//! [`FaultPlan`] derived from a single seed schedules actor crashes,
//! storage write failures, lease losses, and device drop-out bursts on the
//! DES virtual clock, and [`run_chaos`] drives the real
//! [`Coordinator`] / [`FaultyCheckpointStore`] / [`LockingService`] stack
//! through the Selection → Configuration → Reporting loop while auditing
//! the paper's recovery guarantees:
//!
//! * an Aggregator loss costs only that shard's devices — the round still
//!   completes when enough others report (Sec. 4.2);
//! * a Master Aggregator loss fails the round, nothing is persisted, and
//!   the Coordinator restarts the round from the last committed
//!   checkpoint (Sec. 4.2: "no information for a round is written to
//!   persistent storage until it is fully aggregated");
//! * a Coordinator loss triggers *exactly one* respawn via the locking
//!   service (Sec. 4.2: respawn "will happen exactly once"), and the
//!   respawned incarnation resumes the committed model without an extra
//!   checkpoint write;
//! * a storage write failure loses that round's result but leaves the
//!   previous checkpoint authoritative;
//! * exactly `1 + committed_rounds` checkpoint writes ever happen —
//!   per-device updates are never persisted.
//!
//! Every injected fault and observed recovery is appended to a
//! [`FaultLog`]; [`ChaosReport::render`] is byte-identical across replays
//! of the same seed, so a failing sweep seed is a self-contained,
//! reproducible bug report.

use crate::des::EventQueue;
use fl_actors::{Lease, LockingService};
use fl_analytics::FaultLog;
use fl_core::plan::{CodecSpec, ModelSpec};
use fl_core::population::{TaskGroup, TaskSelectionStrategy};
use fl_core::round::{RoundConfig, RoundOutcome};
use fl_core::{CoreError, DeviceId, FlPlan, FlTask, PopulationName};
use fl_ml::rng;
use fl_server::aggregator::DropStage;
use fl_server::coordinator::{ActiveRound, Coordinator, CoordinatorConfig};
use fl_server::pace::PaceSteering;
use fl_server::pipeline::SelectionPool;
use fl_server::round::{CheckinResponse, ReportResponse};
use fl_server::selector::{CheckinDecision, Selector};
use fl_server::storage::{CheckpointStore, FaultyCheckpointStore, InMemoryCheckpointStore};
use fl_server::topology::{DeploymentSpec, SelectorSpec, TopologyBlueprint};
use fl_server::wire::{ChannelTransport, Transport, WireMessage, WireStats};
use rand::RngExt;
use std::collections::BTreeMap;

/// The task name every chaos run trains.
const TASK_NAME: &str = "chaos-train";
/// The population every chaos run owns.
const POPULATION: &str = "chaos/pop";

/// One scheduled fault. Timed variants carry a virtual-clock instant;
/// [`Fault::StorageWriteFailure`] is keyed to a 1-based commit attempt
/// instead (see [`FaultyCheckpointStore`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// An Aggregator shard dies: every participant routed to it (device
    /// id modulo the shard count) drops out of the in-flight round.
    AggregatorCrash {
        /// When the shard dies.
        at_ms: u64,
        /// Which shard (taken modulo [`ChaosConfig::shards`]).
        shard: u64,
    },
    /// A Selector dies: devices routed through it (device id modulo the
    /// selector count) go offline for a few check-in periods, and any of
    /// them already participating drop out.
    SelectorCrash {
        /// When the selector dies.
        at_ms: u64,
        /// Which selector (taken modulo [`ChaosConfig::selectors`]).
        selector: u64,
    },
    /// The Master Aggregator dies: the in-flight round is lost before
    /// aggregation completes, so nothing may reach storage and the
    /// Coordinator must restart the round from the committed checkpoint.
    MasterCrash {
        /// When the master dies.
        at_ms: u64,
    },
    /// The Coordinator dies mid-run: its lease must be evicted, exactly
    /// one of several racing watchers must respawn it, and the new
    /// incarnation must resume the committed model without writing.
    CoordinatorCrash {
        /// When the coordinator dies.
        at_ms: u64,
    },
    /// The locking service evicts the coordinator's lease out from under
    /// it (e.g. a network partition followed by lock expiry); the
    /// coordinator must re-register.
    LeaseLoss {
        /// When the lease disappears.
        at_ms: u64,
    },
    /// A burst of device drop-outs hits the in-flight round.
    DropoutBurst {
        /// When the burst hits.
        at_ms: u64,
        /// How many participants drop, in thousandths of the current
        /// participant count (at least one).
        per_mille: u64,
    },
    /// The Nth checkpoint commit attempt (1-based, successes and failures
    /// both count) fails without side effects.
    StorageWriteFailure {
        /// Which commit attempt fails.
        attempt: u64,
    },
}

impl Fault {
    /// The virtual-clock instant of a timed fault; `None` for
    /// [`Fault::StorageWriteFailure`], which is attempt-keyed.
    pub fn at_ms(&self) -> Option<u64> {
        match self {
            Fault::AggregatorCrash { at_ms, .. }
            | Fault::SelectorCrash { at_ms, .. }
            | Fault::MasterCrash { at_ms }
            | Fault::CoordinatorCrash { at_ms }
            | Fault::LeaseLoss { at_ms }
            | Fault::DropoutBurst { at_ms, .. } => Some(*at_ms),
            Fault::StorageWriteFailure { .. } => None,
        }
    }

    /// Machine-readable kind tag used in the fault log.
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::AggregatorCrash { .. } => "aggregator-crash",
            Fault::SelectorCrash { .. } => "selector-crash",
            Fault::MasterCrash { .. } => "master-crash",
            Fault::CoordinatorCrash { .. } => "coordinator-crash",
            Fault::LeaseLoss { .. } => "lease-loss",
            Fault::DropoutBurst { .. } => "dropout-burst",
            Fault::StorageWriteFailure { .. } => "storage-write-failure",
        }
    }
}

/// A seeded, fully deterministic schedule of faults. The same seed always
/// generates the same plan, and the same plan always produces the same
/// [`ChaosReport`] — replay a failing seed to reproduce its interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan (and the harness RNG streams) derive from.
    pub seed: u64,
    /// The scheduled faults, timed ones sorted by instant.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Generates a plan of 3–8 timed faults (plus up to two storage write
    /// failures) inside `[horizon_ms/10, horizon_ms·3/4]`, leaving the
    /// tail of the horizon for recovery to be observed.
    pub fn generate(seed: u64, horizon_ms: u64) -> Self {
        let mut r = rng::seeded_stream(seed, 0xFA);
        let lo = horizon_ms / 10;
        let hi = (horizon_ms / 4) * 3;
        let n = 3 + r.random_range(0u64..6);
        let mut faults = Vec::new();
        for _ in 0..n {
            let at_ms = r.random_range(lo..hi.max(lo + 1));
            let fault = match r.random_range(0u64..6) {
                0 => Fault::AggregatorCrash {
                    at_ms,
                    shard: r.random_range(0u64..8),
                },
                1 => Fault::SelectorCrash {
                    at_ms,
                    selector: r.random_range(0u64..8),
                },
                2 => Fault::MasterCrash { at_ms },
                3 => Fault::CoordinatorCrash { at_ms },
                4 => Fault::LeaseLoss { at_ms },
                _ => Fault::DropoutBurst {
                    at_ms,
                    per_mille: 100 + r.random_range(0u64..400),
                },
            };
            faults.push(fault);
        }
        faults.sort_by_key(|f| f.at_ms());
        if r.random_bool(0.7) {
            // Commit attempt 1 is the initial deployment write; failing
            // attempts ≥ 2 exercises round loss, not deployment retry.
            faults.push(Fault::StorageWriteFailure {
                attempt: 2 + r.random_range(0u64..5),
            });
        }
        FaultPlan { seed, faults }
    }

    /// The 1-based commit attempts scripted to fail.
    pub fn storage_failures(&self) -> Vec<u64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::StorageWriteFailure { attempt } => Some(*attempt),
                _ => None,
            })
            .collect()
    }
}

/// Shape of a chaos run: fleet size, horizon, round parameters, and the
/// fault-domain fan-out (shards, selectors, respawn racers).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Simulated fleet size.
    pub devices: u64,
    /// Virtual-clock horizon of the run (ms).
    pub horizon_ms: u64,
    /// Round parameters (kept small so many rounds fit in the horizon).
    pub round: RoundConfig,
    /// How often an idle device re-checks in (ms).
    pub checkin_period_ms: u64,
    /// Server clock-tick period (ms).
    pub tick_ms: u64,
    /// Minimum per-device training/report delay (ms).
    pub report_delay_min_ms: u64,
    /// Maximum per-device training/report delay (ms).
    pub report_delay_max_ms: u64,
    /// Aggregator shard count (fault domain of [`Fault::AggregatorCrash`]).
    pub shards: u64,
    /// Selector count (fault domain of [`Fault::SelectorCrash`]).
    pub selectors: u64,
    /// How many watchers race to respawn a crashed Coordinator; exactly
    /// one must win.
    pub respawn_racers: u64,
    /// When set, the run trains under Secure Aggregation with this group
    /// threshold `k` (Sec. 6): devices report fixed-point *field vectors*
    /// over [`WireMessage::SecAggReport`] frames, dropouts are tagged with
    /// the protocol stage they hit (advertise vs. share), and a shard
    /// whose surviving group falls below the protocol threshold aborts
    /// without poisoning the commit.
    pub secagg_k: Option<usize>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            devices: 24,
            horizon_ms: 240_000,
            round: RoundConfig {
                goal_count: 4,
                overselection: 1.5,
                min_goal_fraction: 0.5,
                selection_timeout_ms: 10_000,
                report_window_ms: 20_000,
                device_cap_ms: 15_000,
            },
            checkin_period_ms: 2_000,
            tick_ms: 1_000,
            report_delay_min_ms: 1_000,
            report_delay_max_ms: 6_000,
            shards: 3,
            selectors: 2,
            respawn_racers: 4,
            secagg_k: None,
        }
    }
}

/// Outcome of one chaos run: progress counters, the recovery audit, and
/// the deterministic fault log.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The fault-plan seed.
    pub seed: u64,
    /// Rounds committed to storage.
    pub committed: u64,
    /// Rounds abandoned by the protocol itself (timeouts, drop-outs).
    pub abandoned: u64,
    /// Rounds whose aggregate was lost to an injected storage failure.
    pub lost_to_storage: u64,
    /// Rounds lost to a Master Aggregator crash and restarted.
    pub master_restarts: u64,
    /// Coordinator respawns performed (one per coordinator crash).
    pub respawns: u64,
    /// Lease re-acquisitions after an injected lease loss.
    pub lease_reacquisitions: u64,
    /// Duplicate check-ins answered idempotently.
    pub idempotent_checkins: u64,
    /// Final checkpoint write count (must equal `1 + committed`).
    pub final_write_count: u64,
    /// SecAgg shards that aborted below threshold while their round still
    /// committed from the surviving shards (0 on non-SecAgg runs).
    pub secagg_shard_aborts: u64,
    /// Rounds lost entirely because *every* SecAgg shard fell below
    /// threshold; nothing reaches storage and the round restarts.
    pub secagg_round_aborts: u64,
    /// Bytes-on-wire counters from the device end of the harness's
    /// in-memory transport: every check-in, configuration download, update
    /// report, and ack crossed it as a framed [`WireMessage`].
    pub wire: WireStats,
    /// Recovery-guarantee violations; empty on a clean run.
    pub violations: Vec<String>,
    /// The replayable fault/recovery log.
    pub log: FaultLog,
}

impl ChaosReport {
    /// Whether every recovery guarantee held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Canonical text form — byte-identical across replays of one seed.
    pub fn render(&self) -> String {
        let mut out = format!(
            "seed={}\ncommitted={} abandoned={} lost_to_storage={} master_restarts={}\n\
             respawns={} lease_reacquisitions={} idempotent_checkins={}\n\
             write_count={} secagg_shard_aborts={} secagg_round_aborts={}\n\
             wire up_frames={} up_bytes={} down_frames={} down_bytes={}\n\
             violations={}\n",
            self.seed,
            self.committed,
            self.abandoned,
            self.lost_to_storage,
            self.master_restarts,
            self.respawns,
            self.lease_reacquisitions,
            self.idempotent_checkins,
            self.final_write_count,
            self.secagg_shard_aborts,
            self.secagg_round_aborts,
            self.wire.frames_sent,
            self.wire.bytes_sent,
            self.wire.frames_received,
            self.wire.bytes_received,
            self.violations.len(),
        );
        for v in &self.violations {
            out.push_str("violation: ");
            out.push_str(v);
            out.push('\n');
        }
        out.push_str("--- fault log ---\n");
        out.push_str(&self.log.render());
        out
    }
}

/// The fixed seed set swept by `scripts/check.sh` and the tier-1 chaos
/// tests.
pub fn default_seeds() -> Vec<u64> {
    vec![11, 23, 47, 61, 83, 97, 131, 151]
}

/// The fixed seed set for SecAgg chaos sweeps (`scripts/check.sh`
/// `secagg-live` step and the tier-1 chaos tests).
pub fn default_secagg_seeds() -> Vec<u64> {
    vec![13, 29, 53, 71]
}

/// The default chaos topology with Secure Aggregation enabled at group
/// threshold `k`.
pub fn secagg_config(k: usize) -> ChaosConfig {
    ChaosConfig {
        secagg_k: Some(k),
        ..ChaosConfig::default()
    }
}

/// Runs [`run_chaos`] over a set of fault-plan seeds with one shared
/// configuration.
pub fn sweep(seeds: &[u64], config: &ChaosConfig) -> Vec<ChaosReport> {
    seeds
        .iter()
        .map(|&seed| run_chaos(&FaultPlan::generate(seed, config.horizon_ms), config))
        .collect()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    BeginRound,
    Checkin { device: u64 },
    Report { device: u64 },
    Tick,
    Fault(usize),
}

/// Everything the event handlers share.
struct Harness<'a> {
    config: &'a ChaosConfig,
    plan: &'a FaultPlan,
    queue: EventQueue<Event>,
    /// What the coordinator deploys — shared with the live topology's
    /// blueprint types so every incarnation redeploys the identical thing.
    deployment: DeploymentSpec,
    /// The Selector layer (device id modulo the selector count), built
    /// from the same [`TopologyBlueprint`] the live topology uses.
    selectors: Vec<Selector>,
    coordinator: Option<Coordinator<FaultyCheckpointStore<InMemoryCheckpointStore>>>,
    active: Option<ActiveRound>,
    active_since: u64,
    pool: SelectionPool,
    locks: LockingService<String>,
    lease: Option<Lease>,
    lease_name: String,
    offline_until: BTreeMap<u64, u64>,
    rng: rand::rngs::StdRng,
    report: ChaosReport,
    dim: usize,
    /// The fleet's in-memory wire: the device side of a
    /// [`ChannelTransport`] pair. Every check-in and update report is
    /// encoded here as a framed [`WireMessage`] and decoded on the server
    /// side before it touches a state machine — the DES exercises the same
    /// codec path as the live topology and the TCP front door.
    device_wire: ChannelTransport,
    /// The server side of the pair.
    server_wire: ChannelTransport,
}

/// Mixes a schedule seed into the harness timing stream (one splitmix64
/// round). Seed 0 is the identity: `run_chaos` replays exactly the
/// canonical schedule it always has.
fn schedule_mix(schedule_seed: u64) -> u64 {
    if schedule_seed == 0 {
        return 0;
    }
    let mut z = schedule_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Drives one seeded fault plan against the real Coordinator stack and
/// audits the paper's recovery guarantees. See the module docs for the
/// invariants checked. Equivalent to [`run_chaos_with_schedule`] with
/// schedule seed 0 (the canonical schedule).
pub fn run_chaos(plan: &FaultPlan, config: &ChaosConfig) -> ChaosReport {
    run_chaos_with_schedule(plan, config, 0)
}

/// [`run_chaos`] under an alternative *schedule*: `schedule_seed`
/// perturbs only the harness timing RNG (check-in jitter, per-device
/// report delays) — a legal permutation of device timing — while the
/// fault plan, topology, and every protocol state machine stay
/// identical. Running one plan under K schedule seeds checks the
/// recovery guarantees across K distinct interleavings of the same
/// fault scenario; each (plan seed, schedule seed) pair renders
/// byte-identically on replay.
pub fn run_chaos_with_schedule(
    plan: &FaultPlan,
    config: &ChaosConfig,
    schedule_seed: u64,
) -> ChaosReport {
    let spec = ModelSpec::Logistic {
        dim: 4,
        classes: 2,
        seed: 7,
    };
    let dim = spec.num_params();
    let store = FaultyCheckpointStore::new(InMemoryCheckpointStore::new(), plan.storage_failures());
    let mut task = FlTask::training(TASK_NAME, POPULATION).with_round(config.round);
    if let Some(k) = config.secagg_k {
        task = task.with_secagg(k);
    }
    let deployment = DeploymentSpec {
        config: CoordinatorConfig::new(POPULATION, plan.seed),
        group: TaskGroup::new(vec![task], TaskSelectionStrategy::Single),
        plans: vec![FlPlan::standard_training(spec, 1, 8, 0.1, CodecSpec::Identity)],
        initial_params: vec![0.0f32; dim],
    };
    let blueprint = TopologyBlueprint::new(
        (0..config.selectors)
            .map(|i| {
                SelectorSpec::new(
                    PaceSteering::new(
                        config.checkin_period_ms,
                        config.round.selection_target() as u64,
                    ),
                    config.devices,
                    plan.seed ^ (0x5E1 + i),
                    config.devices as usize,
                )
            })
            .collect(),
    );
    let coordinator = deployment.new_coordinator(store);
    let (device_wire, server_wire) = ChannelTransport::pair();
    let mut h = Harness {
        config,
        plan,
        queue: EventQueue::new(),
        selectors: blueprint.build_selectors(None),
        deployment,
        coordinator: Some(coordinator),
        active: None,
        active_since: 0,
        pool: SelectionPool::new(2 * config.checkin_period_ms),
        locks: LockingService::new(),
        lease: None,
        lease_name: format!("coordinator/{POPULATION}"),
        offline_until: BTreeMap::new(),
        rng: rng::seeded_stream(plan.seed ^ schedule_mix(schedule_seed), 0xC4A05),
        report: ChaosReport {
            seed: plan.seed,
            committed: 0,
            abandoned: 0,
            lost_to_storage: 0,
            master_restarts: 0,
            respawns: 0,
            lease_reacquisitions: 0,
            idempotent_checkins: 0,
            final_write_count: 0,
            secagg_shard_aborts: 0,
            secagg_round_aborts: 0,
            wire: WireStats::default(),
            violations: Vec::new(),
            log: FaultLog::new(),
        },
        dim,
        device_wire,
        server_wire,
    };

    if !h.deploy_current(0) {
        h.report
            .violations
            .push("initial deployment never succeeded".into());
        return h.report;
    }
    h.lease = h.locks.acquire(&h.lease_name, "coordinator".to_string());

    // Seed the schedule: the first round, the server clock, one staggered
    // check-in stream per device, and every timed fault.
    h.queue.schedule_at(0, Event::BeginRound);
    h.queue.schedule_at(config.tick_ms, Event::Tick);
    for device in 0..config.devices {
        let jitter = h.rng.random_range(0..config.checkin_period_ms);
        h.queue.schedule_at(jitter, Event::Checkin { device });
    }
    for (idx, fault) in plan.faults.iter().enumerate() {
        if let Some(at) = fault.at_ms() {
            h.queue.schedule_at(at, Event::Fault(idx));
        }
    }

    while let Some((now, event)) = h.queue.next_before(config.horizon_ms) {
        match event {
            Event::BeginRound => h.on_begin_round(now),
            Event::Checkin { device } => h.on_checkin(now, device),
            Event::Report { device } => h.on_report(now, device),
            Event::Tick => h.on_tick(now),
            Event::Fault(idx) => h.on_fault(now, idx),
        }
    }
    h.drain_after_horizon();
    h.finish()
}

impl Harness<'_> {
    fn round_deadline_ms(&self) -> u64 {
        self.config.round.selection_timeout_ms
            + self.config.round.report_window_ms
            + 4 * self.config.tick_ms
    }

    /// Deploys the shared [`DeploymentSpec`] on the current coordinator,
    /// retrying past scripted storage failures. Returns `false` if
    /// deployment never lands (only possible if a plan fails every
    /// attempt).
    fn deploy_current(&mut self, now_ms: u64) -> bool {
        for _ in 0..8 {
            let Some(c) = self.coordinator.as_mut() else {
                return false;
            };
            match self.deployment.deploy_on(c) {
                Ok(()) => return true,
                Err(CoreError::StorageFailure(why)) => {
                    self.report
                        .log
                        .record(now_ms, "inject.storage-write-failure", why);
                    self.report
                        .log
                        .record(now_ms, "recover.redeploy", "retrying initial commit");
                }
                Err(e) => {
                    self.report
                        .violations
                        .push(format!("deployment failed: {e}"));
                    return false;
                }
            }
        }
        false
    }

    fn latest_round(&self) -> Option<u64> {
        self.coordinator
            .as_ref()
            .and_then(|c| c.store().latest(TASK_NAME).ok())
            .map(|ck| ck.round.0)
    }

    fn write_count(&self) -> u64 {
        self.coordinator
            .as_ref()
            .map(|c| c.store().write_count())
            .unwrap_or(0)
    }

    fn on_begin_round(&mut self, now: u64) {
        if self.active.is_some() || self.coordinator.is_none() {
            return;
        }
        // Pipelining (Sec. 4.3): devices that checked in while the
        // previous round was past Selection were parked in the pool;
        // replay the *fresh* ones into the new round immediately. The
        // stale-aware count decides how many we bother draining.
        let target = self.config.round.selection_target();
        let fresh = self.pool.fresh_len(now);
        let drained = self.pool.drain_fresh(target.min(fresh), now);
        let begun = match self.coordinator.as_mut() {
            Some(c) => c.begin_round(now),
            None => return,
        };
        match begun {
            Ok(mut round) => {
                self.report.log.record(
                    now,
                    "round.begin",
                    format!("r={} pool_fresh={}", round.state.round.0, fresh),
                );
                self.active_since = now;
                for d in drained {
                    if round.on_checkin(d, now) == CheckinResponse::Selected {
                        self.schedule_report(now, d.0);
                    }
                }
                self.active = Some(round);
            }
            Err(e) => self
                .report
                .violations
                .push(format!("begin_round failed: {e}")),
        }
    }

    fn schedule_report(&mut self, now: u64, device: u64) {
        let delay = self.config.report_delay_min_ms
            + self
                .rng
                .random_range(0..self.config.report_delay_max_ms - self.config.report_delay_min_ms);
        self.queue.schedule_at(now + delay, Event::Report { device });
    }

    /// Sends `msg` from the device side of the in-memory wire and decodes
    /// it on the server side — the harness's device↔Selector exchanges go
    /// through the real framed codec, not a function call. Returns `None`
    /// (with a violation) if the frame fails to round-trip.
    fn wire_uplink(&mut self, now: u64, msg: &WireMessage) -> Option<WireMessage> {
        if self.device_wire.send(msg).is_err() {
            self.report
                .violations
                .push(format!("t={now}: wire uplink send failed"));
            return None;
        }
        match self.server_wire.try_recv() {
            Ok(Some(decoded)) => Some(decoded),
            _ => {
                self.report
                    .violations
                    .push(format!("t={now}: frame lost on the uplink"));
                None
            }
        }
    }

    /// Drains (and counts) every reply frame the server pushed to the
    /// fleet's device side.
    fn drain_downlink(&mut self) {
        while let Ok(Some(_)) = self.device_wire.try_recv() {}
    }

    fn on_checkin(&mut self, now: u64, device: u64) {
        // Periodic re-check-in, with seeded jitter to avoid lockstep.
        let next = now
            + self.config.checkin_period_ms
            + self.rng.random_range(0..self.config.checkin_period_ms / 4);
        self.queue.schedule_at(next, Event::Checkin { device });
        if self.offline_until.get(&device).is_some_and(|&t| t > now) {
            return;
        }
        // The check-in crosses the wire as a framed request; the server
        // side acts only on what it decoded.
        let Some(WireMessage::CheckinRequest { device: wired, .. }) = self.wire_uplink(
            now,
            &WireMessage::CheckinRequest {
                device: DeviceId(device),
                population: PopulationName::new(POPULATION),
            },
        ) else {
            return;
        };
        // Every check-in enters through its Selector (device id modulo
        // the selector count), same routing as the live topology; the
        // sim hands the device straight to the round, so the held slot
        // is released immediately after the admission decision.
        let selector = &mut self.selectors[(wired.0 % self.config.selectors) as usize];
        match selector.on_checkin(wired, now, 1.0) {
            CheckinDecision::Accept => selector.on_disconnect(wired),
            CheckinDecision::Reject { retry_at_ms } => {
                let _ = self.server_wire.send(&WireMessage::ComeBackLater {
                    retry_at_ms,
                    population: PopulationName::new(POPULATION),
                });
                self.drain_downlink();
                self.pool.add(wired, now);
                return;
            }
        }
        match self.active.as_mut() {
            Some(round) => match round.on_checkin(wired, now) {
                CheckinResponse::Selected => {
                    // The Configuration download crosses the wire too, so
                    // the byte counters cover the dominant direction.
                    let _ = self.server_wire.send(&WireMessage::PlanAndCheckpoint {
                        plan: Box::new(round.plan.clone()),
                        checkpoint: Box::new(round.checkpoint.clone()),
                        population: PopulationName::new(POPULATION),
                    });
                    self.schedule_report(now, wired.0);
                }
                CheckinResponse::AlreadySelected => {
                    // The duplicate was answered idempotently — the slot
                    // survives a retried check-in (Sec. 4.2 bugfix).
                    self.report.idempotent_checkins += 1;
                }
                CheckinResponse::NotSelecting => self.pool.add(wired, now),
            },
            None => self.pool.add(wired, now),
        }
        self.drain_downlink();
    }

    fn on_report(&mut self, now: u64, device: u64) {
        if self.active.is_none() {
            return; // The round this report belonged to is gone.
        }
        if self.offline_until.get(&device).is_some_and(|&t| t > now) {
            if let Some(round) = self.active.as_mut() {
                round.on_dropout(DeviceId(device), now);
            }
            return;
        }
        let update = vec![0.1 + (device % 5) as f32 * 0.01; self.dim];
        let weight = 1 + device % 7;
        let loss = 0.9 - (device % 10) as f64 * 0.02;
        let accuracy = 0.5 + (device % 10) as f64 * 0.03;
        // The DES devices upload first attempts only (retry scheduling is
        // the live harness's concern); the key still rides the frame.
        let round_key = match self.active.as_ref() {
            Some(round) => round.state.round,
            None => return,
        };
        if self.config.secagg_k.is_some() {
            // SecAgg rounds upload the fixed-point *field vector* — 8
            // bytes per coordinate, the Sec. 6 bandwidth premium — over
            // the same framed wire as cleartext reports.
            let field = match fl_ml::fixedpoint::FixedPointEncoder::default_for_updates()
                .encode(&update)
            {
                Ok(field) => field,
                Err(e) => {
                    self.report
                        .violations
                        .push(format!("t={now}: fixed-point encode failed: {e}"));
                    return;
                }
            };
            let report_msg = WireMessage::SecAggReport {
                device: DeviceId(device),
                round: round_key,
                attempt: 1,
                field_vector: field,
                weight,
                loss,
                accuracy,
                population: PopulationName::new(POPULATION),
            };
            let Some(WireMessage::SecAggReport {
                device: wired,
                round: wired_round,
                attempt: wired_attempt,
                field_vector,
                weight,
                loss,
                accuracy,
                ..
            }) = self.wire_uplink(now, &report_msg)
            else {
                return;
            };
            let Some(round) = self.active.as_mut() else {
                return;
            };
            match round.on_secagg_report(wired, now, &field_vector, weight, loss, accuracy) {
                Ok(response) => {
                    let accepted = matches!(response, ReportResponse::Accepted);
                    let _ = self.server_wire.send(&WireMessage::ReportAck {
                        accepted,
                        round: wired_round,
                        attempt: wired_attempt,
                        population: PopulationName::new(POPULATION),
                    });
                    self.drain_downlink();
                }
                Err(e) => self
                    .report
                    .violations
                    .push(format!("secagg report aggregation failed: {e}")),
            }
            return;
        }
        let report_msg = WireMessage::UpdateReport {
            device: DeviceId(device),
            round: round_key,
            attempt: 1,
            update_bytes: CodecSpec::Identity.build().encode(&update),
            weight,
            loss,
            accuracy,
            population: PopulationName::new(POPULATION),
        };
        let Some(WireMessage::UpdateReport {
            device: wired,
            round: wired_round,
            attempt: wired_attempt,
            update_bytes,
            weight,
            loss,
            accuracy,
            ..
        }) = self.wire_uplink(now, &report_msg)
        else {
            return;
        };
        let Some(round) = self.active.as_mut() else {
            return;
        };
        match round.on_report(wired, now, &update_bytes, weight, loss, accuracy) {
            Ok(response) => {
                let accepted = matches!(response, ReportResponse::Accepted);
                let _ = self.server_wire.send(&WireMessage::ReportAck {
                    accepted,
                    round: wired_round,
                    attempt: wired_attempt,
                    population: PopulationName::new(POPULATION),
                });
                self.drain_downlink();
            }
            Err(e) => self
                .report
                .violations
                .push(format!("report aggregation failed: {e}")),
        }
    }

    fn on_tick(&mut self, now: u64) {
        self.queue.schedule_at(now + self.config.tick_ms, Event::Tick);
        // A coordinator without a lease re-registers (recovery from
        // Fault::LeaseLoss).
        if self.lease.is_none() && self.coordinator.is_some() {
            if let Some(lease) = self.locks.acquire(&self.lease_name, "coordinator".to_string()) {
                self.report.log.record(
                    now,
                    "recover.lease-reacquired",
                    format!("epoch={}", lease.epoch),
                );
                self.lease = Some(lease);
                self.report.lease_reacquisitions += 1;
            } else {
                self.report
                    .violations
                    .push(format!("t={now}: lease unrecoverable (foreign owner)"));
            }
        }
        if let Some(mut round) = self.active.take() {
            round.on_tick(now);
            if round.state.outcome().is_some() {
                self.complete(now, round);
                self.queue.schedule_at(now, Event::BeginRound);
            } else if now.saturating_sub(self.active_since) > self.round_deadline_ms() {
                // "Never hang": the state machine must reach a terminal
                // phase within its own timeouts.
                self.report.violations.push(format!(
                    "t={now}: round r={} hung past its deadline",
                    round.state.round.0
                ));
                self.queue.schedule_at(now, Event::BeginRound);
            } else {
                self.active = Some(round);
            }
        }
    }

    fn complete(&mut self, now: u64, mut round: ActiveRound) {
        round.record_participation_metrics();
        let pre_round = self.latest_round();
        let pre_writes = self.write_count();
        let Some(c) = self.coordinator.as_mut() else {
            return;
        };
        match c.complete_round(round) {
            Ok(RoundOutcome::Committed { .. }) => {
                self.report.committed += 1;
                self.report.log.record(
                    now,
                    "round.committed",
                    format!("checkpoint r={:?}", self.latest_round()),
                );
                // One write per committed round, checkpoint id +1.
                if self.write_count() != pre_writes + 1 {
                    self.report
                        .violations
                        .push(format!("t={now}: committed round wrote != 1 checkpoint"));
                }
                if self.latest_round() != pre_round.map(|r| r + 1) {
                    self.report
                        .violations
                        .push(format!("t={now}: checkpoint id did not advance by 1"));
                }
            }
            Ok(_) => {
                self.report.abandoned += 1;
                self.report
                    .log
                    .record(now, "round.abandoned", "protocol timeout/drop-out");
                if self.write_count() != pre_writes || self.latest_round() != pre_round {
                    self.report
                        .violations
                        .push(format!("t={now}: abandoned round touched storage"));
                }
            }
            Err(CoreError::MalformedCheckpoint(why)) if why.contains("below threshold") => {
                // Every SecAgg shard fell below its protocol threshold:
                // the round is lost whole — like a Master crash, nothing
                // reaches storage and the next round restarts from the
                // committed checkpoint.
                self.report.secagg_round_aborts += 1;
                self.report.log.record(now, "secagg.round-abort", why);
                self.report.log.record(
                    now,
                    "recover.round-restart",
                    format!("from checkpoint r={pre_round:?}"),
                );
                if self.write_count() != pre_writes || self.latest_round() != pre_round {
                    self.report
                        .violations
                        .push(format!("t={now}: aborted secagg round touched storage"));
                }
            }
            Err(CoreError::StorageFailure(why)) => {
                self.report.lost_to_storage += 1;
                self.report.log.record(now, "inject.storage-write-failure", why);
                self.report.log.record(
                    now,
                    "recover.round-lost",
                    format!("last checkpoint r={:?} stays authoritative", pre_round),
                );
                if self.write_count() != pre_writes || self.latest_round() != pre_round {
                    self.report
                        .violations
                        .push(format!("t={now}: failed commit left side effects"));
                }
            }
            Err(e) => self
                .report
                .violations
                .push(format!("t={now}: complete_round failed: {e}")),
        }
    }

    fn on_fault(&mut self, now: u64, idx: usize) {
        let Some(fault) = self.plan.faults.get(idx).cloned() else {
            return;
        };
        match fault {
            Fault::AggregatorCrash { shard, .. } => {
                let shard = shard % self.config.shards;
                let victims = self.participants_where(|d| d % self.config.shards == shard);
                self.report.log.record(
                    now,
                    "inject.aggregator-crash",
                    format!("shard={shard} victims={}", victims.len()),
                );
                if let Some(round) = self.active.as_mut() {
                    for d in victims {
                        round.on_dropout(DeviceId(d), now);
                    }
                    // The round itself must survive: only this shard's
                    // devices are lost (Sec. 4.2). Completion is audited
                    // by the normal tick path.
                    self.report.log.record(
                        now,
                        "recover.round-continues",
                        format!("r={}", round.state.round.0),
                    );
                }
            }
            Fault::SelectorCrash { selector, .. } => {
                let selector = selector % self.config.selectors;
                let until = now + 3 * self.config.checkin_period_ms;
                for d in 0..self.config.devices {
                    if d % self.config.selectors == selector {
                        self.offline_until.insert(d, until);
                    }
                }
                let victims = self.participants_where(|d| d % self.config.selectors == selector);
                self.report.log.record(
                    now,
                    "inject.selector-crash",
                    format!("selector={selector} victims={}", victims.len()),
                );
                let secagg = self.config.secagg_k.is_some();
                if let Some(round) = self.active.as_mut() {
                    for d in victims {
                        if secagg {
                            // A dead Selector takes its devices out before
                            // they share anything: cheap advertise-stage
                            // exclusion, no mask recovery.
                            round.on_dropout_staged(DeviceId(d), now, DropStage::Advertise);
                        } else {
                            round.on_dropout(DeviceId(d), now);
                        }
                    }
                }
                self.report.log.record(
                    now,
                    "recover.devices-rerouted",
                    format!("offline until t={until}"),
                );
            }
            Fault::MasterCrash { .. } => {
                let pre_round = self.latest_round();
                let pre_writes = self.write_count();
                if let Some(round) = self.active.take() {
                    self.report.master_restarts += 1;
                    self.report.log.record(
                        now,
                        "inject.master-crash",
                        format!("in-flight r={} lost", round.state.round.0),
                    );
                    drop(round);
                    // Nothing from the unfinished round may have been
                    // persisted (Sec. 4.2).
                    if self.write_count() != pre_writes || self.latest_round() != pre_round {
                        self.report
                            .violations
                            .push(format!("t={now}: master crash leaked partial state"));
                    }
                    self.report.log.record(
                        now,
                        "recover.round-restart",
                        format!("from checkpoint r={:?}", pre_round),
                    );
                    self.queue.schedule_at(now, Event::BeginRound);
                } else {
                    self.report
                        .log
                        .record(now, "inject.master-crash", "no round in flight");
                }
            }
            Fault::CoordinatorCrash { .. } => self.crash_coordinator(now),
            Fault::LeaseLoss { .. } => {
                self.locks.evict(&self.lease_name);
                self.lease = None;
                self.report
                    .log
                    .record(now, "inject.lease-loss", "lock evicted by service");
            }
            Fault::DropoutBurst { per_mille, .. } => {
                let participants = self.participants_where(|_| true);
                let k = if participants.is_empty() {
                    0
                } else {
                    ((participants.len() as u64 * per_mille) / 1000).max(1) as usize
                };
                self.report.log.record(
                    now,
                    "inject.dropout-burst",
                    format!("per_mille={per_mille} dropped={k}"),
                );
                let secagg = self.config.secagg_k.is_some();
                if let Some(round) = self.active.as_mut() {
                    for (i, d) in participants.into_iter().take(k).enumerate() {
                        if secagg {
                            // Alternate the SecAgg stage the burst hits so
                            // one burst exercises both recovery paths:
                            // advertise-stage exclusion and share-stage
                            // mask reconstruction.
                            let stage = if i % 2 == 0 {
                                DropStage::Advertise
                            } else {
                                DropStage::Share
                            };
                            round.on_dropout_staged(DeviceId(d), now, stage);
                        } else {
                            round.on_dropout(DeviceId(d), now);
                        }
                    }
                }
            }
            Fault::StorageWriteFailure { .. } => {
                // Attempt-keyed; applied inside FaultyCheckpointStore.
            }
        }
    }

    /// Participants of the in-flight round matching a predicate, in
    /// deterministic (sorted) order.
    fn participants_where(&self, pred: impl Fn(u64) -> bool) -> Vec<u64> {
        self.active
            .as_ref()
            .map(|r| {
                r.state
                    .participants()
                    .into_iter()
                    .map(|d| d.0)
                    .filter(|&d| pred(d))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Kills the Coordinator mid-run: the in-flight round dies with it,
    /// the stale lease is evicted with an epoch fence, several watchers
    /// race to respawn, and the winner's incarnation must resume the
    /// committed model without an extra checkpoint write.
    fn crash_coordinator(&mut self, now: u64) {
        let Some(dead) = self.coordinator.take() else {
            return;
        };
        let lost_round = self.active.take().map(|r| r.state.round.0);
        let pre_params = dead.global_params(TASK_NAME).ok();
        let pre_writes = dead.store().write_count();
        // The dead incarnation's abort tally would reset with it; bank it.
        self.report.secagg_shard_aborts += dead.secagg_shard_aborts();
        let store = dead.into_store();
        self.report.log.record(
            now,
            "inject.coordinator-crash",
            format!("in-flight={lost_round:?}"),
        );
        // The dead incarnation never released its lease; each racing
        // watcher attempts an *atomic fenced takeover* of the epoch it
        // saw die (see `LockingService::replace_stale` — an evict-then-
        // acquire pair has a TOCTOU hole). If the lease was already gone
        // (an injected lease loss preceded the crash) the racers fall
        // back to plain acquisition of the free name.
        let stale_epoch = self.lease.take().map(|l| l.epoch);
        let mut winners = 0u64;
        let mut won = None;
        for _ in 0..self.config.respawn_racers {
            let attempt = match stale_epoch {
                Some(epoch) => {
                    self.locks
                        .replace_stale(&self.lease_name, epoch, "coordinator".to_string())
                }
                None => self.locks.acquire(&self.lease_name, "coordinator".to_string()),
            };
            if let Some(lease) = attempt {
                winners += 1;
                won = Some(lease);
            }
        }
        if winners != 1 {
            self.report.violations.push(format!(
                "t={now}: coordinator respawned {winners} times, expected exactly 1"
            ));
        }
        self.report.respawns += 1;
        self.lease = won;
        self.coordinator = Some(self.deployment.new_coordinator(store));
        if !self.deploy_current(now) {
            self.report
                .violations
                .push(format!("t={now}: respawned coordinator failed to deploy"));
            return;
        }
        // Resume, don't clobber: same write count, same committed model.
        if self.write_count() != pre_writes {
            self.report
                .violations
                .push(format!("t={now}: respawn wrote an extra checkpoint"));
        }
        if self
            .coordinator
            .as_ref()
            .and_then(|c| c.global_params(TASK_NAME).ok())
            != pre_params
        {
            self.report
                .violations
                .push(format!("t={now}: respawn clobbered the committed model"));
        }
        self.report.log.record(
            now,
            "recover.respawn",
            format!(
                "epoch={:?} resumed checkpoint r={:?}",
                self.lease.as_ref().map(|l| l.epoch),
                self.latest_round()
            ),
        );
        self.queue.schedule_at(now, Event::BeginRound);
    }

    /// Lets an in-flight round run out past the horizon: it must reach a
    /// terminal phase within its own timeouts ("never hang").
    fn drain_after_horizon(&mut self) {
        let mut now = self.config.horizon_ms;
        let deadline = self.active_since + self.round_deadline_ms();
        while let Some(mut round) = self.active.take() {
            now += self.config.tick_ms;
            round.on_tick(now);
            if round.state.outcome().is_some() {
                self.complete(now, round);
                break;
            }
            if now > deadline {
                self.report.violations.push(format!(
                    "t={now}: round r={} never reached a terminal phase",
                    round.state.round.0
                ));
                break;
            }
            self.active = Some(round);
        }
    }

    fn finish(mut self) -> ChaosReport {
        self.report.final_write_count = self.write_count();
        self.report.secagg_shard_aborts += self
            .coordinator
            .as_ref()
            .map(|c| c.secagg_shard_aborts())
            .unwrap_or(0);
        self.report.wire = self.device_wire.stats();
        // The paper's storage audit: one write at deployment plus one per
        // committed round; per-device updates are never persisted.
        if self.report.final_write_count != 1 + self.report.committed {
            self.report.violations.push(format!(
                "write_count {} != 1 + committed {}",
                self.report.final_write_count, self.report.committed
            ));
        }
        let crashes = self
            .plan
            .faults
            .iter()
            .filter(|f| matches!(f, Fault::CoordinatorCrash { .. }))
            .count() as u64;
        if self.report.respawns != crashes {
            self.report.violations.push(format!(
                "respawns {} != coordinator crashes {}",
                self.report.respawns, crashes
            ));
        }
        // "In all cases the system will continue to make progress"
        // (Sec. 4.4): something terminal must have happened.
        let progress = self.report.committed
            + self.report.abandoned
            + self.report.lost_to_storage
            + self.report.master_restarts
            + self.report.secagg_round_aborts;
        if progress == 0 {
            self.report
                .violations
                .push("no terminal round progress over the whole horizon".into());
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_seed_deterministic() {
        let a = FaultPlan::generate(42, 240_000);
        let b = FaultPlan::generate(42, 240_000);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 240_000);
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn timed_faults_leave_recovery_headroom() {
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(seed, 240_000);
            assert!(!plan.faults.is_empty());
            for f in &plan.faults {
                if let Some(at) = f.at_ms() {
                    assert!(at < 180_000, "fault at {at} too close to horizon");
                }
            }
            for attempt in plan.storage_failures() {
                assert!(attempt >= 2, "attempt 1 is the deployment write");
            }
        }
    }

    #[test]
    fn fault_free_run_just_trains() {
        let plan = FaultPlan {
            seed: 5,
            faults: vec![],
        };
        let report = run_chaos(&plan, &ChaosConfig::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.committed >= 3, "report: {}", report.render());
        assert_eq!(report.final_write_count, 1 + report.committed);
        assert_eq!(report.respawns, 0);
    }

    #[test]
    fn secagg_fault_free_run_commits_and_pays_the_wire_premium() {
        let plan = FaultPlan {
            seed: 5,
            faults: vec![],
        };
        let plain = run_chaos(&plan, &ChaosConfig::default());
        let secagg = run_chaos(&plan, &secagg_config(2));
        assert!(secagg.is_clean(), "violations: {:?}", secagg.violations);
        assert!(secagg.committed >= 3, "report: {}", secagg.render());
        assert_eq!(secagg.final_write_count, 1 + secagg.committed);
        assert_eq!(secagg.secagg_shard_aborts, 0);
        assert_eq!(secagg.secagg_round_aborts, 0);
        // Field vectors are 8 bytes per coordinate vs. 4 for f32 updates:
        // the SecAgg premium must show in the measured uplink bytes.
        assert!(
            secagg.wire.bytes_sent > plain.wire.bytes_sent,
            "secagg uplink {} <= plain uplink {}",
            secagg.wire.bytes_sent,
            plain.wire.bytes_sent
        );
    }

    #[test]
    fn secagg_heavy_dropout_burst_aborts_cleanly() {
        // A 90% burst mid-reporting strands SecAgg groups below their
        // protocol thresholds; the run must stay clean — aborted shards
        // (or whole rounds) never poison storage and progress continues.
        let plan = FaultPlan {
            seed: 9,
            faults: vec![
                Fault::DropoutBurst {
                    at_ms: 14_000,
                    per_mille: 900,
                },
                Fault::DropoutBurst {
                    at_ms: 44_000,
                    per_mille: 900,
                },
            ],
        };
        let report = run_chaos(&plan, &secagg_config(2));
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.final_write_count, 1 + report.committed);
        assert!(
            report.secagg_shard_aborts + report.secagg_round_aborts >= 1,
            "bursts never stranded a group below threshold: {}",
            report.render()
        );
        assert!(report.committed >= 1, "report: {}", report.render());
    }

    #[test]
    fn secagg_sweep_replays_byte_identically() {
        let config = secagg_config(2);
        for seed in default_secagg_seeds() {
            let plan = FaultPlan::generate(seed, config.horizon_ms);
            let a = run_chaos(&plan, &config);
            let b = run_chaos(&plan, &config);
            assert!(a.is_clean(), "seed {seed}: {:?}", a.violations);
            assert_eq!(a.render(), b.render(), "seed {seed} replay diverged");
        }
    }

    #[test]
    fn schedule_seed_zero_is_the_canonical_schedule() {
        let config = ChaosConfig::default();
        let plan = FaultPlan::generate(23, config.horizon_ms);
        assert_eq!(
            run_chaos(&plan, &config).render(),
            run_chaos_with_schedule(&plan, &config, 0).render()
        );
    }

    #[test]
    fn schedule_permutations_stay_clean_and_replay_byte_identically() {
        let config = ChaosConfig::default();
        let plan = FaultPlan::generate(11, config.horizon_ms);
        for schedule in [1u64, 5, 9] {
            let a = run_chaos_with_schedule(&plan, &config, schedule);
            let b = run_chaos_with_schedule(&plan, &config, schedule);
            assert!(a.is_clean(), "schedule {schedule}: {:?}", a.violations);
            assert_eq!(
                a.render(),
                b.render(),
                "schedule {schedule} replay diverged"
            );
        }
    }

    #[test]
    fn replay_is_byte_identical() {
        let config = ChaosConfig::default();
        let run = |seed: u64| {
            let plan = FaultPlan::generate(seed, config.horizon_ms);
            run_chaos(&plan, &config).render()
        };
        for seed in [11, 23, 47] {
            assert_eq!(run(seed), run(seed), "seed {seed} replay diverged");
        }
    }
}
